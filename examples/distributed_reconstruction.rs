//! Distributed reconstruction on a 2D rank grid — the paper's Figure 7
//! experiment at laptop scale.
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin distributed_reconstruction -- \
//!     --size 64 --np 64 --rows 4 --cols 4 [--trace trace.json] [--analyze] \
//!     [--live metrics.jsonl] [--live-period-ms 100] [--stall-ms 30000] \
//!     [--flight-dump flight.json] [--throttle-bp-ms 0] \
//!     [--record trajectory.jsonl]
//! ```
//!
//! Launches `rows x cols` ranks (threads), each running the three-thread
//! iFDK pipeline: load + filter its share of projections, AllGather
//! within its column, back-project its row's symmetric slab pair, reduce
//! across the row and store the finished slices to the (in-memory) PFS.
//! Verifies the result against a single-node reconstruction.
//!
//! With `--trace <path>` the run captures every span and writes a Chrome
//! trace-event timeline (open it at <https://ui.perfetto.dev> or in
//! `chrome://tracing`): one process per rank, one lane per pipeline
//! thread. A model-vs-measured table (paper Eqs. 8-19) is printed either
//! way.
//!
//! With `--analyze` (implies trace capture) the run is followed by the
//! offline pipeline analysis: critical path through the
//! filter→AllGather→back-projection dependency graph, per-lane
//! busy/stall/idle utilization, ring-stall attribution and the Eq.-19
//! overlap-efficiency figure.
//!
//! With `--live <path>` the run streams one metrics frame per sampling
//! period (`--live-period-ms`) to the file as JSONL — progress/ETA,
//! per-stage quantiles, ring occupancy/stalls — for
//! `ifdk-bench --bin monitor` to tail and gate. The stall watchdog
//! (`--stall-ms`, 0 disables) trips on any ring side blocked past the
//! deadline and snapshots the flight recorder; `--flight-dump <path>`
//! writes the end-of-run flight window as a Chrome trace.
//! `--throttle-bp-ms` injects a per-batch delay into every
//! back-projection thread and `--ring-capacity` shrinks the circular
//! buffers — together a fault injector for demonstrating back-pressure
//! and a watchdog trip (see EXPERIMENTS.md).
//!
//! With `--record <path>` the run's outcome — end-to-end seconds, GUPS,
//! communication traffic, NRMSE vs single-node, overlap efficiency
//! (when `--analyze`), watchdog trips (when live) — is appended as one
//! `ifdk-run/v1` record to the `ct-perfdb` trajectory store, keyed by
//! kernel (`IFDK_KERNEL`), grid shape and problem size, so `perfscope`
//! can trend distributed runs alongside the bench sweeps.

use ct_core::forward::project_all_analytic;
use ct_core::metrics::nrmse;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::CbctGeometry;
use ct_perfmodel::{KernelModel, MachineConfig};
use ct_pfs::PfsStore;
use ifdk::distributed::{download_volume, upload_projections};
use ifdk::{
    model_divergence, reconstruct, reconstruct_distributed, DistConfig, LiveConfig, RankGrid,
    ReconOptions,
};
use ifdk_examples::{arg_flag, arg_str, arg_usize, ascii_slice, print_table};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 64);
    let np = arg_usize(&args, "np", 64);
    let rows = arg_usize(&args, "rows", 4);
    let cols = arg_usize(&args, "cols", 4);
    let trace_path = arg_str(&args, "trace");
    let analyze = arg_flag(&args, "analyze");
    let live_path = arg_str(&args, "live");
    let live_period_ms = arg_usize(&args, "live-period-ms", 100);
    let stall_ms = arg_usize(&args, "stall-ms", 30_000);
    let flight_dump = arg_str(&args, "flight-dump");
    let throttle_bp_ms = arg_usize(&args, "throttle-bp-ms", 0);
    let ring_capacity = arg_usize(&args, "ring-capacity", 0);
    let record_path = arg_str(&args, "record");

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let grid = RankGrid::new(rows, cols).expect("valid grid");
    println!(
        "distributed iFDK: {} ranks as {rows} rows x {cols} cols (paper Fig. 3/7 layout)",
        grid.n_ranks()
    );

    // "Scan": projections land on the parallel file system.
    let phantom = Phantom::shepp_logan(0.45 * n as f64);
    let stack = project_all_analytic(&geo, &phantom);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).expect("upload");

    // Distributed reconstruction. Summary-mode observability is on by
    // default; --trace or --analyze upgrades to full span capture.
    let mut cfg = DistConfig::new(geo.clone(), grid);
    if trace_path.is_some() || analyze {
        cfg.obs = ct_obs::Recorder::trace();
    }
    if live_path.is_some() || flight_dump.is_some() {
        let mut live = LiveConfig {
            period: Duration::from_millis(live_period_ms as u64),
            stall_deadline: (stall_ms > 0).then(|| Duration::from_millis(stall_ms as u64)),
            jsonl_path: live_path.as_ref().map(PathBuf::from),
            ..LiveConfig::default()
        };
        // Feed the paper's analytic model in so progress/ETA weights
        // stages by predicted time and frames carry live divergence.
        live.machine = Some(MachineConfig::abci());
        live.kernel = Some(KernelModel::v100_proposed());
        cfg.live = Some(live);
    }
    if throttle_bp_ms > 0 {
        cfg.bp_throttle = Some(Duration::from_millis(throttle_bp_ms as u64));
    }
    if ring_capacity > 0 {
        cfg.ring_capacity = ring_capacity;
    }
    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, &input, &output).expect("distributed run");

    // Verify against the single-node pipeline.
    let single = reconstruct(&geo, &stack, &ReconOptions::default()).expect("single-node");
    let vol = download_volume(&output, geo.volume).expect("download");
    let err = nrmse(single.data(), vol.data()).expect("same shape");

    println!("\nper-stage busy time (max over ranks):");
    let mut rows_out = Vec::new();
    for stage in [
        "load",
        "filter",
        "allgather",
        "backprojection",
        "reduce",
        "store",
    ] {
        rows_out.push(vec![
            stage.to_string(),
            format!("{:.3} s", report.max_stage_secs(stage)),
        ]);
    }
    print_table(&["stage", "max over ranks"], &rows_out);

    println!(
        "\nend-to-end   : {:.3} s ({:.2} GUPS)",
        report.runtime_secs, report.gups
    );
    println!(
        "comm traffic : {} messages, {:.1} MiB",
        report.comm_messages,
        report.comm_bytes as f64 / (1 << 20) as f64
    );
    println!("PFS          : {} slices stored", output.list().len());
    println!("vs single    : NRMSE {err:.2e} (paper bar: < 1e-5)");

    // Model vs. measured: the paper's analytic per-stage predictions
    // (Eqs. 8-19, ABCI constants) against what this run observed.
    let div = model_divergence(
        &cfg,
        &report,
        &MachineConfig::abci(),
        &KernelModel::v100_proposed(),
    )
    .expect("model input is valid");
    println!("\nmodel (ABCI constants) vs. measured (this machine):");
    print!("{div}");

    let analysis = analyze.then(|| {
        report
            .pipeline_analysis()
            .expect("trace-mode capture analyzes")
    });
    if let Some(a) = &analysis {
        println!("\ncritical-path & overlap analysis (offline, from the capture):");
        print!("{a}");
    }

    if let Some(live) = &report.live {
        println!("\nlive telemetry:");
        println!("  frames sampled : {}", live.snapshots);
        if let Some(err) = &live.write_error {
            println!("  stream error   : {err}");
        } else if let Some(path) = &live_path {
            println!("  metrics stream : {path} (monitor: ifdk-bench --bin monitor)");
        }
        if let Some(last) = &live.last {
            if let Some(p) = &last.progress {
                println!("  final progress : {:.1}%", p.frac * 100.0);
            }
        }
        if live.trips.is_empty() {
            println!("  watchdog       : no trips");
        } else {
            for trip in &live.trips {
                println!(
                    "  watchdog TRIP  : ring {} {:?} blocked {:.1} ms (frame #{})",
                    trip.ring,
                    trip.kind,
                    trip.wait_ns as f64 / 1e6,
                    trip.seq
                );
            }
        }
        if let Some(path) = &flight_dump {
            let dump = live.flight_dump.as_ref().or(live.trip_dump.as_ref());
            if let Some(dump) = dump {
                let json = ct_obs::chrome::to_chrome_json(dump);
                std::fs::write(path, &json).expect("writing flight dump");
                println!(
                    "  flight dump    : {} spans -> {path} (open in Perfetto)",
                    dump.events.len()
                );
            }
        }
    }

    if let Some(path) = &trace_path {
        let json = ct_obs::chrome::to_chrome_json(&report.trace);
        let check = ct_obs::chrome::validate(&json).expect("exporter emits a valid trace");
        std::fs::write(path, &json).expect("writing trace file");
        println!(
            "\ntrace        : {} spans across {} ranks -> {path} (open in Perfetto)",
            check.span_events,
            check.ranks.len()
        );
    }

    if let Some(db) = &record_path {
        let mut r = ct_perfdb::RunRecord::new(
            "distributed",
            ct_obs::clock::unix_millis(),
            ct_perfdb::MachineInfo::detect(),
        );
        r.config.kernel = ct_bp::lanes::KernelImpl::from_env().name().to_string();
        r.config.threads = grid.n_ranks() as u64;
        r.config.grid_rows = rows as u64;
        r.config.grid_cols = cols as u64;
        r.config.problem = format!("{n}^3 x {np}p");
        r.set_metric("runtime_secs", report.runtime_secs)
            .set_metric("gups", report.gups)
            .set_metric("comm_messages", report.comm_messages as f64)
            .set_metric("comm_bytes", report.comm_bytes as f64)
            .set_metric("nrmse_vs_single", err);
        if let Some(a) = &analysis {
            r.set_metric("overlap_efficiency", a.overlap_efficiency);
        }
        if let Some(live) = &report.live {
            r.set_metric("watchdog_trips", live.trips.len() as f64);
        }
        ct_perfdb::PerfDb::append(std::path::Path::new(db), &[r]).expect("append perf trajectory");
        println!("\nrecorded run -> {db} (query: ifdk-bench --bin perfscope)");
    }

    println!("\ncentral slice of the distributed reconstruction:");
    print!("{}", ascii_slice(&vol, n / 2, 64));

    assert!(err < 1e-5, "distributed result diverged from single-node");
    println!("OK: distributed == single-node at the paper's tolerance");
}
