//! Capacity planning with the iFDK performance model — "how many GPUs for
//! instant 4K/8K?", plus the paper's Section 6.2 platform discussion
//! (AWS p3 cluster, Nvidia DGX-2) reproduced with the same model.
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin capacity_planning
//! ```

use ct_perfmodel::des::Overheads;
use ct_perfmodel::{plan_grid, simulate_pipeline, MachineConfig, ModelBreakdown, ModelInput};
use ifdk_examples::print_table;

fn sweep(label: &str, make: impl Fn(usize) -> ModelInput, gpus: &[usize]) {
    println!("\n{label}");
    let ov = Overheads::default();
    let mut rows = Vec::new();
    for &g in gpus {
        let input = make(g);
        if input.validate().is_err() {
            continue;
        }
        let model = ModelBreakdown::evaluate(&input);
        let sim = simulate_pipeline(&input, &ov);
        rows.push(vec![
            g.to_string(),
            format!("{}x{}", input.r, input.c),
            format!("{:.1}", model.t_compute),
            format!("{:.1}", sim.t_compute),
            format!("{:.1}", model.t_runtime),
            format!("{:.1}", sim.t_runtime),
            format!("{:.0}", sim.gups),
        ]);
    }
    print_table(
        &[
            "GPUs",
            "R x C",
            "model Tc",
            "sim Tc",
            "model total",
            "sim total",
            "sim GUPS",
        ],
        &rows,
    );
}

fn main() {
    println!("iFDK capacity planning (paper performance model, Eqs. 8-19)");

    sweep(
        "4K problem (2048^2 x 4096 -> 4096^3) on ABCI:",
        ModelInput::paper_4k,
        &[32, 64, 128, 256, 512, 1024, 2048],
    );
    sweep(
        "8K problem (2048^2 x 4096 -> 8192^3) on ABCI:",
        ModelInput::paper_8k,
        &[256, 512, 1024, 2048],
    );

    // Section 6.2.1: the 4K problem on an AWS-class cluster.
    sweep(
        "4K problem on an AWS p3-class cluster (10 Gb/s network):",
        |g| {
            let mut i = ModelInput::paper_4k(g);
            i.machine = MachineConfig::aws_p3();
            i
        },
        &[256, 512, 1024],
    );

    // Section 6.2.2: a 2K problem on one DGX-2 (16 GPUs, all on-node).
    sweep(
        "2K problem (2048^2 x 2048 -> 2048^3) on one DGX-2:",
        |g| ModelInput {
            nu: 2048,
            nv: 2048,
            np: 2048,
            nx: 2048,
            ny: 2048,
            nz: 2048,
            r: 4,
            c: g / 4,
            machine: MachineConfig::dgx2(),
            kernel: ct_perfmodel::KernelModel::v100_proposed(),
        },
        &[16],
    );

    // Planner demo (Section 4.1.5): what grid would iFDK pick?
    println!("\nplanner (Section 4.1.5) on ABCI:");
    let m = MachineConfig::abci();
    let mut rows = Vec::new();
    for (label, nx, gpus) in [
        ("2048^3", 2048usize, 64usize),
        ("4096^3", 4096, 128),
        ("8192^3", 8192, 2048),
    ] {
        match plan_grid(2048, 2048, nx, nx, nx, gpus, &m) {
            Ok(p) => rows.push(vec![
                label.to_string(),
                gpus.to_string(),
                format!("R={} C={}", p.r, p.c),
                format!("{:.1} GiB", p.sub_volume_bytes as f64 / (1u64 << 30) as f64),
            ]),
            Err(e) => rows.push(vec![label.to_string(), gpus.to_string(), e, "-".into()]),
        }
    }
    print_table(&["volume", "GPUs", "plan", "sub-volume"], &rows);

    println!("\nAWS cost estimate (Section 6.2.1): 256 p3.8xlarge at $12.24/h");
    let input = {
        let mut i = ModelInput::paper_4k(1024);
        i.machine = MachineConfig::aws_p3();
        i
    };
    let sim = simulate_pipeline(&input, &Overheads::default());
    let hours = sim.t_runtime / 3600.0;
    let cost = 256.0 * 12.24 * hours;
    println!(
        "  one 4K reconstruction: {:.0} s of 256 instances -> ~${:.2} (paper: < $100)",
        sim.t_runtime, cost
    );
}
