//! Ramp-window study under photon noise — making the paper's Section
//! 2.2.2 remark ("the shape of the Framp filter deeply affects the final
//! image quality, yet it has no effect on the compute intensity")
//! quantitative.
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin noisy_windows -- --size 32 --i0 50
//! ```
//!
//! Reconstructs the same noisy scan with all five ramp windows and
//! reports reconstruction error (soft windows win at low dose) and
//! filtering time (identical across windows).

use ct_core::forward::project_all_analytic;
use ct_core::metrics::nrmse;
use ct_core::noise::NoiseModel;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::volume::VolumeLayout;
use ct_core::CbctGeometry;
use ct_filter::{FilterConfig, RampKind};
use ct_obs::clock;
use ifdk::{reconstruct, ReconOptions};
use ifdk_examples::{arg_usize, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 32);
    let np = arg_usize(&args, "np", 96);
    let i0 = arg_usize(&args, "i0", 50) as f64;

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let phantom = Phantom::shepp_logan(0.45 * n as f64);
    let mut clean = project_all_analytic(&geo, &phantom);
    // Rescale to a realistic attenuation regime (peak line integral ~ 4,
    // i.e. ~2 % transmission): the synthetic phantom's "densities" are in
    // arbitrary units, while Poisson statistics care about absolute
    // optical depth.
    let peak = clean
        .iter()
        .flat_map(|img| img.data().iter().copied())
        .fold(0.0f32, f32::max);
    let atten = 4.0 / peak;
    for img in clean.iter_mut() {
        for p in img.data_mut() {
            *p *= atten;
        }
    }
    let noisy = NoiseModel { i0, seed: 2024 }.apply(&clean);
    let mut truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
        geo.voxel_position(i, j, k)
    });
    truth.scale(atten);

    println!("ramp windows at I0 = {i0} photons/pixel ({np} views, {n}^3):\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for ramp in RampKind::ALL {
        let opts = ReconOptions {
            filter: FilterConfig {
                ramp,
                kernel_half_width: None,
            },
            ..ReconOptions::default()
        };
        let t = clock::now();
        let noisy_rec = reconstruct(&geo, &noisy, &opts).unwrap();
        let secs = t.elapsed().as_secs_f64();
        let clean_rec = reconstruct(&geo, &clean, &opts).unwrap();
        let e_noisy = nrmse(truth.data(), noisy_rec.data()).unwrap();
        let e_clean = nrmse(truth.data(), clean_rec.data()).unwrap();
        rows.push(vec![
            ramp.name().to_string(),
            format!("{e_clean:.4}"),
            format!("{e_noisy:.4}"),
            format!("{secs:.2}s"),
        ]);
        results.push((ramp, e_noisy));
    }
    print_table(
        &["window", "NRMSE (clean)", "NRMSE (noisy)", "recon time"],
        &rows,
    );

    let ramlak = results
        .iter()
        .find(|(r, _)| *r == RampKind::RamLak)
        .unwrap()
        .1;
    let best_soft = results
        .iter()
        .filter(|(r, _)| matches!(r, RampKind::Hann | RampKind::Hamming | RampKind::Cosine))
        .map(|&(_, e)| e)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nat this dose, the best soft window improves on Ram-Lak by {:.1}% \
         (compute cost identical, as the paper states)",
        (1.0 - best_soft / ramlak) * 100.0
    );
}
