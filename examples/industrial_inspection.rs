//! Industrial defect inspection — the micro-CT use case of the paper's
//! Section 6.1 (casting inspection, non-destructive testing).
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin industrial_inspection -- --size 48 --defects 6
//! ```
//!
//! Scans a synthetic casting containing hidden pores, reconstructs it
//! with the full FDK pipeline, then runs a simple density-threshold
//! detector over the volume and checks every seeded defect was found.

use ct_core::forward::project_all_analytic;
use ct_core::math::Vec3;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::CbctGeometry;
use ct_obs::clock;
use ifdk::{reconstruct, ReconOptions};
use ifdk_examples::{arg_usize, ascii_slice, print_table};

/// A connected low-density blob found in the reconstruction.
struct Detection {
    center: Vec3,
    voxels: usize,
}

/// Threshold + 6-connected flood fill over the interior of the casting.
fn detect_pores(
    vol: &ct_core::volume::Volume,
    geo: &CbctGeometry,
    scale: f64,
    threshold: f32,
) -> Vec<Detection> {
    let dims = vol.dims();
    let mut visited = vec![false; dims.len()];
    let idx = |i: usize, j: usize, k: usize| (k * dims.ny + j) * dims.nx + i;
    let mut out = Vec::new();
    // Only inspect well inside the part (avoid the silhouette edge): the
    // casting body is an ellipsoid of semi-axes 0.8 * scale, so keep to
    // voxels whose world position is safely interior.
    let margin = dims.nx / 16;
    // Interior test against the known body ellipsoid (semi-axes 0.8/0.8/
    // 0.7 * scale), shrunk slightly to dodge the blurred silhouette.
    let inside_body = |p: Vec3| -> bool {
        let qx = p.x / (0.8 * scale);
        let qy = p.y / (0.8 * scale);
        let qz = p.z / (0.7 * scale);
        qx * qx + qy * qy + qz * qz < 0.95 * 0.95
    };
    for k in margin..dims.nz - margin {
        for j in margin..dims.ny - margin {
            for i in margin..dims.nx - margin {
                if visited[idx(i, j, k)] || vol.get(i, j, k) > threshold {
                    continue;
                }
                // Pores are *inside* the material.
                if !inside_body(geo.voxel_position(i, j, k)) {
                    continue;
                }
                // Flood fill the blob.
                let mut stack = vec![(i, j, k)];
                let mut members = Vec::new();
                while let Some((x, y, z)) = stack.pop() {
                    if visited[idx(x, y, z)] || vol.get(x, y, z) > threshold {
                        continue;
                    }
                    visited[idx(x, y, z)] = true;
                    members.push((x, y, z));
                    if x > 0 {
                        stack.push((x - 1, y, z));
                    }
                    if y > 0 {
                        stack.push((x, y - 1, z));
                    }
                    if z > 0 {
                        stack.push((x, y, z - 1));
                    }
                    if x + 1 < dims.nx {
                        stack.push((x + 1, y, z));
                    }
                    if y + 1 < dims.ny {
                        stack.push((x, y + 1, z));
                    }
                    if z + 1 < dims.nz {
                        stack.push((x, y, z + 1));
                    }
                }
                if members.len() < 3 {
                    continue; // noise
                }
                let mut c = Vec3::ZERO;
                for &(x, y, z) in &members {
                    c = c + geo.voxel_position(x, y, z);
                }
                out.push(Detection {
                    center: c * (1.0 / members.len() as f64),
                    voxels: members.len(),
                });
            }
        }
    }
    out
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 48);
    let np = arg_usize(&args, "np", 96);
    let n_defects = arg_usize(&args, "defects", 6);

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let scale = 0.5 * n as f64;
    let phantom = Phantom::casting_with_defects(scale, n_defects);

    println!("industrial inspection: casting with {n_defects} seeded pores");
    let t = clock::now();
    let projections = project_all_analytic(&geo, &phantom);
    let volume =
        reconstruct(&geo, &projections, &ReconOptions::default()).expect("reconstruction succeeds");
    println!("  scan + reconstruct: {:.2?}", t.elapsed());

    let detections = detect_pores(&volume, &geo, scale, 0.55);

    // Match detections against the seeded defects.
    let seeded: Vec<Vec3> = phantom.ellipsoids[1..].iter().map(|e| e.center).collect();
    let mut rows = Vec::new();
    let mut found = 0;
    for (di, seed) in seeded.iter().enumerate() {
        let best = detections
            .iter()
            .map(|d| (d, (d.center - *seed).norm()))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((d, dist)) if dist < 0.15 * scale => {
                found += 1;
                rows.push(vec![
                    format!("pore {di}"),
                    format!("({:.1}, {:.1}, {:.1})", seed.x, seed.y, seed.z),
                    format!("{:.2}", dist),
                    format!("{}", d.voxels),
                    "FOUND".into(),
                ]);
            }
            _ => rows.push(vec![
                format!("pore {di}"),
                format!("({:.1}, {:.1}, {:.1})", seed.x, seed.y, seed.z),
                "-".into(),
                "-".into(),
                "MISSED".into(),
            ]),
        }
    }
    print_table(
        &["defect", "seeded at (mm)", "loc err", "voxels", "status"],
        &rows,
    );
    println!(
        "\ndetected {found}/{} seeded pores ({} raw detections)",
        seeded.len(),
        detections.len()
    );
    println!("\nslice through the part (z = {}):", n / 2);
    print!("{}", ascii_slice(&volume, n / 2, 64));
    if found < seeded.len() {
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
