//! 4D-CT: a time-resolved sequence of reconstructions — the paper's
//! Section 6.2 pointer ("it can provide benefits for real-time CT
//! systems, e.g. 4D-CT").
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin realtime_4dct -- --size 32 --frames 6
//! ```
//!
//! A pore drifts through a casting over `--frames` time steps; every
//! frame is scanned and reconstructed with the *pipelined* single-rank
//! iFDK path (filter thread overlapping the back-projection thread), and
//! the defect is tracked across the reconstructed frames.

use ct_core::forward::project_all_analytic;
use ct_core::math::Vec3;
use ct_core::phantom::{Ellipsoid, Phantom};
use ct_core::problem::{Dims2, Dims3};
use ct_core::CbctGeometry;
use ct_obs::clock;
use ifdk::{reconstruct_pipelined, ReconOptions};
use ifdk_examples::{arg_usize, print_table};

/// Phantom at time-fraction `t` in [0, 1]: a block with one moving pore.
fn frame_phantom(scale: f64, t: f64) -> (Phantom, Vec3) {
    let ang = t * std::f64::consts::TAU;
    let center = Vec3::new(
        0.45 * scale * ang.cos(),
        0.45 * scale * ang.sin(),
        (t - 0.5) * 0.5 * scale,
    );
    let phantom = Phantom {
        ellipsoids: vec![
            Ellipsoid {
                density: 1.0,
                a: 0.8 * scale,
                b: 0.8 * scale,
                c: 0.75 * scale,
                center: Vec3::ZERO,
                phi: 0.0,
            },
            Ellipsoid {
                density: -0.9,
                a: 0.07 * scale,
                b: 0.07 * scale,
                c: 0.07 * scale,
                center,
                phi: 0.0,
            },
        ],
    };
    (phantom, center)
}

/// Locate the darkest voxel *inside the block* (the pore): outside the
/// casting the density is ~0, so the search is restricted to the known
/// body ellipsoid.
fn find_pore(vol: &ct_core::volume::Volume, geo: &CbctGeometry, scale: f64) -> Vec3 {
    let d = vol.dims();
    let mut best = (f32::INFINITY, Vec3::ZERO);
    for k in 0..d.nz {
        for j in 0..d.ny {
            for i in 0..d.nx {
                let p = geo.voxel_position(i, j, k);
                let qx = p.x / (0.8 * scale);
                let qy = p.y / (0.8 * scale);
                let qz = p.z / (0.75 * scale);
                if qx * qx + qy * qy + qz * qz > 0.8 * 0.8 {
                    continue;
                }
                let v = vol.get(i, j, k);
                if v < best.0 {
                    best = (v, p);
                }
            }
        }
    }
    best.1
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 32);
    let np = arg_usize(&args, "np", 64);
    let frames = arg_usize(&args, "frames", 6);

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let scale = 0.5 * n as f64;
    println!("4D-CT: {frames} frames of {np} views -> {n}^3 each (pipelined path)\n");

    let mut rows = Vec::new();
    let mut max_err = 0.0f64;
    for f in 0..frames {
        let t = f as f64 / frames as f64;
        let (phantom, true_pos) = frame_phantom(scale, t);
        let stack = project_all_analytic(&geo, &phantom);
        let t0 = clock::now();
        let vol = reconstruct_pipelined(&geo, &stack, &ReconOptions::default()).unwrap();
        let latency = t0.elapsed().as_secs_f64();
        let found = find_pore(&vol, &geo, scale);
        let err = (found - true_pos).norm();
        max_err = max_err.max(err);
        rows.push(vec![
            format!("{f}"),
            format!(
                "({:+.1}, {:+.1}, {:+.1})",
                true_pos.x, true_pos.y, true_pos.z
            ),
            format!("({:+.1}, {:+.1}, {:+.1})", found.x, found.y, found.z),
            format!("{err:.2}"),
            format!("{latency:.2}s"),
        ]);
    }
    print_table(
        &[
            "frame",
            "true pore (mm)",
            "tracked (mm)",
            "error",
            "latency",
        ],
        &rows,
    );
    println!("\nmax tracking error: {max_err:.2} mm (voxel pitch = 1 mm)");
    assert!(max_err < 3.0, "pore tracking drifted: {max_err} mm");
    println!("OK: the moving defect is tracked across all frames");
}
