//! Low-dose / sparse-view reconstruction with iterative solvers — the
//! paper's Section 6.2 motivation ("the proposed back-projection
//! algorithm and CUDA implementation can be applied in a number of
//! iterative solvers (i.e. ART, MLEM, MBIR), which are popular
//! methodologies in medical imaging for low dose image reconstruction").
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin iterative_lowdose -- --size 24 --np 12
//! ```
//!
//! With very few projections, plain FDK shows streak artefacts; SART on
//! the same operators (the proposed back-projection kernel doing the
//! heavy lifting every iteration) recovers a cleaner volume.

use ct_core::forward::project_all_analytic;
use ct_core::metrics::nrmse;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::volume::VolumeLayout;
use ct_core::CbctGeometry;
use ct_iter::{sart, sirt, IterConfig, Operators};
use ct_obs::clock;
use ct_par::Pool;
use ifdk::{reconstruct, ReconOptions};
use ifdk_examples::{arg_usize, ascii_slice, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 24);
    let np = arg_usize(&args, "np", 12);
    let iterations = arg_usize(&args, "iterations", 8);

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let phantom = Phantom::shepp_logan(0.45 * n as f64);
    let stack = project_all_analytic(&geo, &phantom);
    let truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
        geo.voxel_position(i, j, k)
    });
    println!("sparse-view study: {np} projections of a {n}^3 Shepp-Logan\n");

    // FDK baseline.
    let t = clock::now();
    let fdk = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let fdk_time = t.elapsed().as_secs_f64();
    let fdk_err = nrmse(truth.data(), fdk.data()).unwrap();

    // Iterative solvers on the same operators.
    let ops = Operators::new(geo.clone(), Pool::auto(), 0.5).unwrap();
    let cfg = IterConfig {
        iterations,
        subsets: np.min(6),
        ..IterConfig::default()
    };
    let t = clock::now();
    let (sart_vol, sart_rep) = sart(&ops, &stack, &cfg).unwrap();
    let sart_time = t.elapsed().as_secs_f64();
    let sart_err = nrmse(truth.data(), sart_vol.data()).unwrap();

    let t = clock::now();
    let (sirt_vol, _) = sirt(&ops, &stack, &cfg).unwrap();
    let sirt_time = t.elapsed().as_secs_f64();
    let sirt_err = nrmse(truth.data(), sirt_vol.data()).unwrap();

    print_table(
        &["method", "NRMSE vs phantom", "time"],
        &[
            vec![
                "FDK".into(),
                format!("{fdk_err:.4}"),
                format!("{fdk_time:.2}s"),
            ],
            vec![
                format!("SART x{iterations}"),
                format!("{sart_err:.4}"),
                format!("{sart_time:.2}s"),
            ],
            vec![
                format!("SIRT x{iterations}"),
                format!("{sirt_err:.4}"),
                format!("{sirt_time:.2}s"),
            ],
        ],
    );
    println!(
        "\nSART residual per iteration: {}",
        sart_rep
            .residuals
            .iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    println!("\nFDK slice:");
    print!("{}", ascii_slice(&fdk, n / 2, 48));
    println!("SART slice:");
    print!("{}", ascii_slice(&sart_vol, n / 2, 48));

    assert!(
        sart_err < fdk_err,
        "SART ({sart_err}) should beat FDK ({fdk_err}) at {np} views"
    );
    println!("OK: iterative reconstruction beats FDK in the sparse-view regime");
}
