//! Shared helpers for the iFDK-rs examples: terminal rendering of slices
//! and small argument parsing without external dependencies.

#![forbid(unsafe_code)]

use ct_core::volume::Volume;

/// Render the XY slice at height `k` as ASCII art (darker character =
/// denser voxel), downsampled to at most `max_cols` columns.
pub fn ascii_slice(vol: &Volume, k: usize, max_cols: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let dims = vol.dims();
    let step = (dims.nx / max_cols.max(1)).max(1);
    // Character cells are ~2x taller than wide; sample rows twice as
    // sparsely so the aspect ratio survives.
    let vstep = step * 2;
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for j in (0..dims.ny).step_by(step) {
        for i in (0..dims.nx).step_by(step) {
            let v = vol.get(i, j, k);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let range = (hi - lo).max(1e-12);
    let mut out = String::new();
    for j in (0..dims.ny).step_by(vstep) {
        for i in (0..dims.nx).step_by(step) {
            let v = vol.get(i, j, k);
            let t = ((v - lo) / range).clamp(0.0, 1.0);
            let idx = (t * (SHADES.len() - 1) as f32).round() as usize;
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Parse `--key value` style arguments with a default.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    args.windows(2)
        .find(|w| w[0] == format!("--{key}"))
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Parse a `--key value` string argument (`None` when absent).
pub fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == format!("--{key}"))
        .map(|w| w[1].clone())
}

/// True when the bare flag `--key` is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == &format!("--{key}"))
}

/// Simple column-aligned table printer.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::problem::Dims3;
    use ct_core::volume::VolumeLayout;

    #[test]
    fn ascii_slice_shapes_output() {
        let mut v = Volume::zeros(Dims3::cube(16), VolumeLayout::IMajor);
        v.set(8, 8, 8, 1.0);
        let art = ascii_slice(&v, 8, 16);
        assert!(art.contains('@'));
        assert!(art.lines().count() >= 4);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--size", "32", "--np", "64"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "size", 8), 32);
        assert_eq!(arg_usize(&args, "np", 8), 64);
        assert_eq!(arg_usize(&args, "missing", 7), 7);
        assert_eq!(arg_str(&args, "size").as_deref(), Some("32"));
        assert_eq!(arg_str(&args, "missing"), None);
        assert!(arg_flag(&args, "size"));
        assert!(!arg_flag(&args, "analyze"));
    }
}
