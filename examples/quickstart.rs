//! Quickstart: scan a Shepp-Logan head phantom and reconstruct it.
//!
//! ```text
//! cargo run --release -p ifdk-examples --bin quickstart -- --size 64 --np 128
//! ```
//!
//! Generates `Np` exact cone-beam projections of the classic 3D
//! Shepp-Logan phantom, runs the full FDK pipeline (cosine weighting +
//! ramp filtering on the CPU pool, proposed back-projection kernel), and
//! reports reconstruction quality plus throughput in the paper's GUPS
//! metric.

use ct_core::forward::project_all_analytic;
use ct_core::metrics::{gups, nrmse, psnr};
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_core::CbctGeometry;
use ct_obs::clock;
use ifdk::{reconstruct, ReconOptions};
use ifdk_examples::{arg_usize, ascii_slice};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 64);
    let np = arg_usize(&args, "np", 128);

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let problem = ReconProblem::new(geo.detector, np, geo.volume).expect("valid dims");
    println!("iFDK-rs quickstart");
    println!(
        "  problem : {} (alpha = {:.3})",
        problem.label(),
        problem.alpha()
    );

    let phantom = Phantom::shepp_logan(0.45 * n as f64);
    let t = clock::now();
    let projections = project_all_analytic(&geo, &phantom);
    println!(
        "  forward : {} exact projections in {:.2?}",
        np,
        t.elapsed()
    );

    let t = clock::now();
    let volume =
        reconstruct(&geo, &projections, &ReconOptions::default()).expect("reconstruction succeeds");
    let secs = t.elapsed().as_secs_f64();
    println!(
        "  recon   : {:.2} s  ({:.2} GUPS on this machine)",
        secs,
        gups(problem.updates(), secs)
    );

    let truth = phantom.voxelize(
        geo.volume,
        ct_core::volume::VolumeLayout::IMajor,
        |i, j, k| geo.voxel_position(i, j, k),
    );
    let e = nrmse(truth.data(), volume.data()).expect("same shape");
    let p = psnr(truth.data(), volume.data()).expect("same shape");
    println!(
        "  quality : NRMSE {:.4}, PSNR {:.1} dB vs analytic phantom",
        e, p
    );

    println!("\ncentral slice (z = {}):", n / 2);
    print!("{}", ascii_slice(&volume, n / 2, 64));
}
