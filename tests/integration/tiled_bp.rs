//! Property-style checks of the tiled, thread-parallel back-projection
//! driver: on random geometries the tiled kernel must be bit-identical
//! across pool widths and must agree with the serial standard kernel
//! (Algorithm 2) at tight tolerance.
//!
//! Uses `rand` with a fixed seed rather than proptest so every run
//! exercises the same (still randomly shaped) cases deterministically.

use ct_bp::tiled::{backproject_tiled, TileConfig};
use ct_bp::{backproject_standard, WARP_BATCH};
use ct_core::geometry::CbctGeometry;
use ct_core::metrics::nrmse;
use ct_core::problem::{Dims2, Dims3};
use ct_core::projection::{ProjectionImage, ProjectionStack};
use ct_par::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pick(rng: &mut StdRng, choices: &[usize]) -> usize {
    choices[rng.gen::<u64>() as usize % choices.len()]
}

/// A random-but-valid problem: even-depth volume, detector sized to
/// cover it, random pixel content.
fn random_case(rng: &mut StdRng) -> (CbctGeometry, ProjectionStack) {
    let nx = pick(rng, &[10, 14, 16, 22]);
    let ny = pick(rng, &[10, 14, 16, 22]);
    let nz = pick(rng, &[8, 12, 16, 20]);
    let np = pick(rng, &[7, 16, 33, 40]);
    let side = 2 * nx.max(ny).max(nz);
    let geo = CbctGeometry::standard(Dims2::new(side, side), np, Dims3::new(nx, ny, nz));
    geo.validate().expect("generated geometry is valid");
    let mut stack = ProjectionStack::new(geo.detector);
    for _ in 0..np {
        let mut img = ProjectionImage::zeros(geo.detector);
        for p in img.data_mut() {
            *p = (rng.gen::<u64>() % 2048) as f32 / 1024.0 - 1.0;
        }
        stack.push(img).unwrap();
    }
    (geo, stack)
}

#[test]
fn tiled_bp_is_thread_invariant_and_matches_standard() {
    let mut rng = StdRng::seed_from_u64(0x1FDC);
    for case in 0..5 {
        let (geo, stack) = random_case(&mut rng);
        let mats = geo.projection_matrices();
        let dims = geo.volume;
        let label = format!(
            "case {case}: {}x{}x{} volume, {} projections",
            dims.nx,
            dims.ny,
            dims.nz,
            stack.len()
        );

        // Random explicit tile shape (clamped by the driver) alongside
        // the auto heuristic.
        let cfg = if rng.gen::<u64>() % 2 == 0 {
            TileConfig::AUTO
        } else {
            TileConfig {
                i_block: 1 + (rng.gen::<u64>() as usize % dims.nx),
                slab_pairs: 1 + (rng.gen::<u64>() as usize % (dims.nz / 2)),
            }
        };

        let serial = backproject_tiled(&Pool::new(1), &mats, &stack, dims, cfg);
        for threads in [2usize, 4] {
            let par = backproject_tiled(&Pool::new(threads), &mats, &stack, dims, cfg);
            assert_eq!(
                par.data(),
                serial.data(),
                "{label}: {threads}-thread tiled BP must be bit-identical to 1-thread ({cfg:?})"
            );
        }

        let reference = backproject_standard(&Pool::new(1), &mats, &stack, dims);
        let tiled = serial.into_layout(ct_core::volume::VolumeLayout::IMajor);
        let e = nrmse(reference.data(), tiled.data()).unwrap();
        assert!(e < 1e-5, "{label}: nrmse vs standard {e} ({cfg:?})");
    }
}

#[test]
fn tiled_bp_handles_degenerate_tile_shapes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let (geo, stack) = random_case(&mut rng);
    let mats = geo.projection_matrices();
    let dims = geo.volume;
    let reference = backproject_tiled(&Pool::new(1), &mats, &stack, dims, TileConfig::AUTO);
    // One-column tiles, one big tile, and a deliberately oversized config.
    for cfg in [
        TileConfig {
            i_block: 1,
            slab_pairs: dims.nz / 2,
        },
        TileConfig {
            i_block: dims.nx,
            slab_pairs: 1,
        },
        TileConfig {
            i_block: 100 * dims.nx,
            slab_pairs: 100 * dims.nz,
        },
    ] {
        let v = backproject_tiled(&Pool::new(3), &mats, &stack, dims, cfg);
        assert_eq!(v.data(), reference.data(), "{cfg:?}");
    }
    // Batch granularity doesn't change the tiled result materially either.
    let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
    let full = ct_bp::tiled::backproject_tiled_with(
        &Pool::new(2),
        &mats,
        &transposed,
        geo.detector.nv,
        dims,
        WARP_BATCH,
        TileConfig::AUTO,
    );
    let small_batch = ct_bp::tiled::backproject_tiled_with(
        &Pool::new(2),
        &mats,
        &transposed,
        geo.detector.nv,
        dims,
        5,
        TileConfig::AUTO,
    );
    let e = nrmse(full.data(), small_batch.data()).unwrap();
    assert!(e < 1e-6, "batch granularity changed the result: {e}");
}
