//! Cross-substrate integration: the pieces below the framework working
//! together (I/O round trips through reconstruction, iterative solvers on
//! framework outputs, streaming previews, export formats).

use ct_core::forward::project_all_analytic;
use ct_core::io::{read_raw_volume, write_mhd_volume, write_pgm};
use ct_core::metrics::nrmse;
use ct_core::noise::NoiseModel;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::stats::{fwhm, profile_x, summarize, Histogram};
use ct_core::CbctGeometry;
use ifdk::{reconstruct, ReconOptions, StreamingReconstructor};

fn scene(n: usize, np: usize) -> (CbctGeometry, ct_core::projection::ProjectionStack, Phantom) {
    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let phantom = Phantom::uniform_sphere(0.3 * n as f64);
    let stack = project_all_analytic(&geo, &phantom);
    (geo, stack, phantom)
}

#[test]
fn reconstruction_exports_and_reimports_losslessly() {
    let (geo, stack, _) = scene(12, 24);
    let vol = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("ifdk_export_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // MHD + raw round trip is bit-exact.
    let stem = dir.join("recon");
    write_mhd_volume(&stem, &vol, geo.voxel_pitch).unwrap();
    let back = read_raw_volume(&stem.with_extension("raw"), geo.volume).unwrap();
    assert_eq!(back.data(), vol.data());

    // PGM slice export produces a plausible image file.
    let slice = vol.slice_xy(geo.volume.nz / 2).unwrap();
    let pgm = dir.join("slice.pgm");
    write_pgm(&pgm, &slice, geo.volume.nx, None).unwrap();
    let bytes = std::fs::read(&pgm).unwrap();
    assert!(bytes.starts_with(b"P5\n"));
    assert_eq!(
        bytes.len(),
        slice.len() + format!("P5\n{} {}\n255\n", geo.volume.nx, geo.volume.ny).len()
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn volume_statistics_identify_the_sphere() {
    let (geo, stack, _) = scene(16, 48);
    let vol = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let n = geo.volume.nx;

    // Histogram: background near 0 dominates, sphere near 1 present.
    let h = Histogram::new(vol.data(), -0.25, 1.25, 30).unwrap();
    assert!((h.bin_center(h.mode_bin())).abs() < 0.15, "background mode");
    let near_one: u64 = (0..30)
        .filter(|&b| (h.bin_center(b) - 1.0).abs() < 0.2)
        .map(|b| h.counts[b])
        .sum();
    assert!(near_one > 50, "sphere voxels visible in histogram");

    // Profile through the centre has a plateau whose FWHM matches the
    // sphere diameter (2 * 0.3 * n voxels) within a voxel or two.
    let p = profile_x(&vol, n / 2, n / 2).unwrap();
    let width = fwhm(&p).expect("clear peak");
    let expect = 2.0 * 0.3 * n as f64;
    assert!(
        (width - expect).abs() < 2.5,
        "FWHM {width} vs sphere diameter {expect}"
    );

    let s = summarize(vol.data()).unwrap();
    assert!(s.max > 0.8 && s.min < 0.2);
}

#[test]
fn noisy_scan_still_reconstructs() {
    let (geo, stack, _) = scene(12, 36);
    // Scale to a sane optical depth before applying photon noise.
    let mut scaled = stack.clone();
    let peak = scaled
        .iter()
        .flat_map(|i| i.data().iter().copied())
        .fold(0.0f32, f32::max);
    let atten = 3.0 / peak;
    for img in scaled.iter_mut() {
        img.data_mut().iter_mut().for_each(|p| *p *= atten);
    }
    let noisy = NoiseModel {
        i0: 5000.0,
        seed: 99,
    }
    .apply(&scaled);
    let clean_rec = reconstruct(&geo, &scaled, &ReconOptions::default()).unwrap();
    let noisy_rec = reconstruct(&geo, &noisy, &ReconOptions::default()).unwrap();
    // Noise perturbs but does not destroy the reconstruction.
    let e = nrmse(clean_rec.data(), noisy_rec.data()).unwrap();
    assert!(e > 0.0 && e < 0.2, "noise-induced NRMSE {e}");
}

#[test]
fn streaming_preview_mid_scan_shows_partial_data() {
    let (geo, stack, _) = scene(12, 32);
    let mut s = StreamingReconstructor::new(
        geo.clone(),
        Default::default(),
        Default::default(),
        ct_par::Pool::new(2),
        true,
    )
    .unwrap();
    for img in stack.iter().take(16) {
        s.feed(img).unwrap();
    }
    let half = s.preview().unwrap();
    // Half the projections -> roughly half the accumulated density.
    let c = geo.volume.nx / 2;
    let mid = half.get(c, c, c);
    assert!(mid > 0.2 && mid < 0.9, "halfway density {mid}");
    for img in stack.iter().skip(16) {
        s.feed(img).unwrap();
    }
    let done = s.finish().unwrap();
    let full = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    assert!(nrmse(full.data(), done.data()).unwrap() < 1e-5);
}

#[test]
fn iterative_solver_consumes_framework_outputs() {
    // ct-iter operators built from the same geometry reconstruct data
    // produced by the core pipeline's forward model.
    let (geo, stack, phantom) = scene(10, 20);
    let ops = ct_iter::Operators::new(geo.clone(), ct_par::Pool::new(2), 0.5).unwrap();
    let cfg = ct_iter::IterConfig {
        iterations: 4,
        subsets: 5,
        ..Default::default()
    };
    let (vol, report) = ct_iter::sart(&ops, &stack, &cfg).unwrap();
    assert_eq!(report.residuals.len(), 4);
    let truth = phantom.voxelize(
        geo.volume,
        ct_core::volume::VolumeLayout::IMajor,
        |i, j, k| geo.voxel_position(i, j, k),
    );
    let e = nrmse(truth.data(), vol.data()).unwrap();
    assert!(e < 0.4, "SART NRMSE {e}");
}
