//! Short-scan (Parker-weighted) reconstruction across every pipeline
//! variant — the trajectory extension layered on the paper's full-circle
//! framework.

use ct_core::forward::project_all_analytic;
use ct_core::metrics::nrmse;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::CbctGeometry;
use ct_pfs::PfsStore;
use ifdk::distributed::{download_volume, upload_projections};
use ifdk::{
    reconstruct, reconstruct_distributed, reconstruct_pipelined, DistConfig, RankGrid,
    ReconOptions, StreamingReconstructor,
};

fn short_scene(n: usize, np: usize) -> (CbctGeometry, ct_core::projection::ProjectionStack) {
    let geo = CbctGeometry::standard_short_scan(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let stack = project_all_analytic(&geo, &Phantom::shepp_logan(0.45 * n as f64));
    (geo, stack)
}

#[test]
fn short_scan_geometry_properties() {
    let (geo, _) = short_scene(16, 48);
    assert!(!geo.is_full_scan());
    let min = std::f64::consts::PI + 2.0 * geo.fan_half_angle();
    assert!((geo.angular_range - min).abs() < 1e-12);
    // The fan angle of the outermost column equals the half fan angle.
    let edge = geo.fan_angle_of_column(geo.detector.nu as f64 - 1.0);
    assert!((edge - geo.fan_half_angle()).abs() < 1e-12);
    // Columns mirror around the centre.
    let left = geo.fan_angle_of_column(0.0);
    assert!((left + geo.fan_half_angle()).abs() < 1e-12);
}

#[test]
fn short_scan_matches_full_scan_reconstruction() {
    // Same phantom, same voxel grid: the short scan must reproduce the
    // full scan's volume up to the (small) difference in angular sampling.
    let n = 20;
    let np = 96;
    let phantom = Phantom::shepp_logan(0.45 * n as f64);

    let full_geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let full_stack = project_all_analytic(&full_geo, &phantom);
    let full = reconstruct(&full_geo, &full_stack, &ReconOptions::default()).unwrap();

    let (short_geo, short_stack) = short_scene(n, np);
    let short = reconstruct(&short_geo, &short_stack, &ReconOptions::default()).unwrap();

    let e = nrmse(full.data(), short.data()).unwrap();
    assert!(e < 0.08, "short vs full scan NRMSE {e}");
}

#[test]
fn short_scan_pipelined_and_streaming_match_batch() {
    let (geo, stack) = short_scene(16, 40);
    let opts = ReconOptions::default();
    let batch = reconstruct(&geo, &stack, &opts).unwrap();

    let piped = reconstruct_pipelined(&geo, &stack, &opts).unwrap();
    assert!(nrmse(batch.data(), piped.data()).unwrap() < 1e-5);

    let mut s = StreamingReconstructor::new(
        geo.clone(),
        Default::default(),
        Default::default(),
        ct_par::Pool::new(2),
        true,
    )
    .unwrap();
    for img in stack.iter() {
        s.feed(img).unwrap();
    }
    let streamed = s.finish().unwrap();
    assert!(nrmse(batch.data(), streamed.data()).unwrap() < 1e-5);
}

#[test]
fn short_scan_distributed_matches_single_node() {
    let (geo, stack) = short_scene(16, 32);
    let single = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
    let output = PfsStore::memory();
    reconstruct_distributed(&cfg, &input, &output).unwrap();
    let vol = download_volume(&output, geo.volume).unwrap();
    let e = nrmse(single.data(), vol.data()).unwrap();
    assert!(e < 1e-5, "distributed short scan NRMSE {e}");
}

#[test]
fn too_short_a_scan_is_rejected() {
    let mut geo = CbctGeometry::standard(Dims2::new(32, 32), 16, Dims3::cube(16));
    geo.angular_range = std::f64::consts::PI; // below pi + 2*delta
    assert!(geo.validate().is_err());
    let stack = ct_core::projection::ProjectionStack::zeros(geo.detector, 16);
    assert!(reconstruct(&geo, &stack, &ReconOptions::default()).is_err());
}
