//! Property tests for the lane-array back-projection kernel
//! (`ct_bp::lanes`): the per-column weight precomputation must agree
//! with scalar bilinear sampling for arbitrary coordinates including
//! the border clamps, and projection-batch blocking must be a pure
//! scheduling choice — block size 1 bitwise-equal to the unblocked
//! driver, and every other blocking shape bitwise-equal to that.

use ct_bp::lanes::{backproject_lanes_with, LaneMode, LaneSampler, LanesBlocking};
use ct_bp::warp::{backproject_warp_with, Sampler, WARP_BATCH};
use ct_core::geometry::CbctGeometry;
use ct_core::interp::{interp2, AxisWeight};
use ct_core::problem::{Dims2, Dims3};
use ct_core::projection::{ProjectionImage, ProjectionStack};
use ct_par::Pool;
use proptest::prelude::*;

/// Deterministic pseudo-random pixel fill (splitmix-style) so proptest
/// only has to shrink a seed, not a pixel vector.
fn filled_image(dims: Dims2, seed: u64) -> ProjectionImage {
    let mut img = ProjectionImage::zeros(dims);
    let mut state = seed | 1;
    for v in 0..dims.nv {
        for u in 0..dims.nu {
            state = state
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x2545_f491_4f6c_dd1d);
            // Signed values in [-8, 8) with quarter-step granularity.
            let q = (state >> 40) as i64 % 64 - 32;
            img.set(u, v, q as f32 * 0.25);
        }
    }
    img
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// The composition the lane kernel uses: `u` and `v` weights resolved
/// once via [`AxisWeight`], rows fetched with the zero border, blended
/// in [`interp2`]'s association.
fn axis_weight_sample(img: &[f32], w: usize, h: usize, u: f32, v: f32) -> f32 {
    let uw = AxisWeight::resolve(u);
    let vw = AxisWeight::resolve(v);
    let t = |y: isize| -> f32 {
        match usize::try_from(y).ok().filter(|&y| y < h) {
            Some(y) => uw.blend_bordered(&img[y * w..(y + 1) * w]),
            None => uw.blend(0.0, 0.0),
        }
    };
    vw.blend(t(vw.i), t(vw.i + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Precomputed per-axis weights compose to exactly Algorithm 3:
    /// bit-identical to `interp2` for any coordinate, in or out of
    /// range.
    #[test]
    fn axis_weight_composition_is_bit_identical_to_interp2(
        w in 2usize..10,
        h in 2usize..10,
        seed in any::<u64>(),
        u in -3.0f32..12.0,
        v in -3.0f32..12.0,
    ) {
        let img = filled_image(Dims2::new(w, h), seed);
        let got = axis_weight_sample(img.data(), w, h, u, v);
        let want = interp2(img.data(), w, h, u, v);
        prop_assert_eq!(got.to_bits(), want.to_bits(), "({u}, {v})");
    }

    /// The lane-array column sweep agrees bitwise with the naive
    /// per-element `w * sample(u, v)` loop — the scalar bilinear oracle
    /// — for arbitrary `u`, arbitrary `v` series (crossing in and out
    /// of the detector), and lengths that exercise both the 8-wide
    /// chunks and the scalar tail.
    #[test]
    fn lane_column_is_bit_identical_to_scalar_sample_loop(
        nu in 3usize..12,
        nv in 3usize..12,
        seed in any::<u64>(),
        u in -2.0f32..14.0,
        v0 in -2.0f32..14.0,
        dv in -1.5f32..1.5,
        len in 1usize..40,
    ) {
        let q = filled_image(Dims2::new(nu, nv), seed).transposed();
        let lane = LaneSampler::new(&q, LaneMode::Strict);
        let vs: Vec<f32> = (0..len).map(|k| v0 + k as f32 * dv).collect();
        let weight = 0.37f32;
        let mut got = vec![0.0f32; len];
        lane.accumulate_column(u, &vs, weight, &mut got);
        let mut want = vec![0.0f32; len];
        for (o, &v) in want.iter_mut().zip(&vs) {
            *o += weight * q.sample(u, v);
        }
        prop_assert_eq!(bits(&got), bits(&want), "u = {u}, len = {len}");
    }
}

/// The border clamps proptest's uniform floats almost never hit:
/// exact lattice points, the last interior column, both signed zeros,
/// and coordinates exactly on / just past each edge.
#[test]
fn lane_column_matches_scalar_on_edge_clamps() {
    let dims = Dims2::new(7, 9);
    let q = filled_image(dims, 0xC0FFEE).transposed();
    let lane = LaneSampler::new(&q, LaneMode::Strict);
    let edge = |n: usize| {
        vec![
            -1.5f32,
            -1.0,
            -0.5,
            -0.0,
            0.0,
            0.5,
            1.0,
            (n - 2) as f32,
            (n - 1) as f32 - 0.5,
            (n - 1) as f32,
            n as f32,
            n as f32 + 0.5,
        ]
    };
    for &u in &edge(dims.nu) {
        let vs = edge(dims.nv);
        let mut got = vec![0.0f32; vs.len()];
        lane.accumulate_column(u, &vs, 1.25, &mut got);
        let mut want = vec![0.0f32; vs.len()];
        for (o, &v) in want.iter_mut().zip(&vs) {
            *o += 1.25 * q.sample(u, v);
        }
        assert_eq!(bits(&got), bits(&want), "u = {u}");
    }
}

fn synthetic_case(n: usize, np: usize, seed: u64) -> (CbctGeometry, ProjectionStack) {
    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let mut stack = ProjectionStack::new(geo.detector);
    for s in 0..np {
        stack
            .push(filled_image(geo.detector, seed ^ (s as u64) << 17))
            .expect("matching dims");
    }
    (geo, stack)
}

proptest! {
    // Full back-projections per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Projection-batch blocking is pure scheduling: block size 1 (with
    /// a full-width column tile) reproduces the unblocked warp driver
    /// bitwise, and any other blocking shape reproduces *that* bitwise,
    /// at any thread count.
    #[test]
    fn blocking_block_size_one_equals_unblocked_bitwise(
        n2 in 4usize..8,
        np in 4usize..40,
        seed in any::<u64>(),
        block_batches in 1usize..5,
        j_tile in 1usize..20,
        threads in 1usize..4,
    ) {
        let n = 2 * n2;
        let (geo, stack) = synthetic_case(n, np, seed);
        let mats = geo.projection_matrices();
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let samplers: Vec<LaneSampler> = transposed
            .iter()
            .map(|q| LaneSampler::new(q, LaneMode::Strict))
            .collect();
        let nv = geo.detector.nv;
        let pool = Pool::new(threads);

        let unblocked =
            backproject_warp_with(&pool, &mats, &samplers, nv, geo.volume, WARP_BATCH);
        let block1 = backproject_lanes_with(
            &pool,
            &mats,
            &samplers,
            nv,
            geo.volume,
            WARP_BATCH,
            LanesBlocking { block_batches: 1, j_tile: geo.volume.ny },
        );
        prop_assert_eq!(bits(block1.data()), bits(unblocked.data()), "block size 1");
        let blocked = backproject_lanes_with(
            &pool,
            &mats,
            &samplers,
            nv,
            geo.volume,
            WARP_BATCH,
            LanesBlocking { block_batches, j_tile },
        );
        prop_assert_eq!(
            bits(blocked.data()),
            bits(unblocked.data()),
            "block_batches = {block_batches}, j_tile = {j_tile}"
        );
    }
}
