//! Cross-crate round-trip guarantees for the `ifdk-run/v1` record
//! schema (ISSUE 8, satellite 4): exact serialize→parse identity,
//! tolerance of unknown fields written by future producers, and loud
//! rejection of records from a different schema version.

use ct_perfdb::{Filter, MachineInfo, PerfDb, RunConfig, RunRecord, SCHEMA};

/// A fully-populated record exercising every serialized field.
fn full_record() -> RunRecord {
    let machine = MachineInfo {
        cpu_model: "Integration Test CPU @ 3.00GHz".into(),
        cpu_flags: vec!["avx2".into(), "fma".into(), "sse4_2".into()],
        logical_cpus: 16,
    };
    let mut r = RunRecord::new("gups", 1_754_000_000_123, machine);
    r.config = RunConfig {
        kernel: "lanes-fma".into(),
        layout: "transposed".into(),
        threads: 8,
        grid_rows: 4,
        grid_cols: 2,
        tile: "32x32x8".into(),
        problem: "256^3 x 512p".into(),
    };
    r.set_metric("gups_median", 1.875)
        .set_metric("gups_mad", 0.015625)
        .set_metric("overlap_efficiency", 0.9375)
        .set_metric("stage.backprojection.p99_secs", 0.002);
    r
}

#[test]
fn round_trip_is_exact() {
    let r = full_record();
    let json = r.to_json();
    let back = RunRecord::from_json(&json).expect("own output parses");
    assert_eq!(back, r, "from_json(to_json(r)) must equal r exactly");
    // Serialization itself is deterministic: a second trip is
    // byte-identical, so trajectory diffs never churn.
    assert_eq!(back.to_json(), json);
}

#[test]
fn minimal_record_round_trips_too() {
    // Defaults everywhere: empty machine, empty config, no metrics.
    let r = RunRecord::new("monitor", 0, MachineInfo::default());
    let back = RunRecord::from_json(&r.to_json()).expect("minimal record parses");
    assert_eq!(back, r);
}

#[test]
fn unknown_fields_from_future_producers_are_tolerated() {
    let r = full_record();
    // Simulate a v1.x writer that added fields this reader has never
    // heard of, at both the top level and inside nested objects.
    let json = r
        .to_json()
        .replacen(
            "\"source\"",
            "\"ci_run_url\":\"https://example.invalid/runs/9\",\"source\"",
            1,
        )
        .replacen(
            "\"cpu_model\"",
            "\"cpu_microcode\":\"0xd000363\",\"cpu_model\"",
            1,
        )
        .replacen("\"kernel\"", "\"compiler\":\"rustc 1.99\",\"kernel\"", 1);
    let back = RunRecord::from_json(&json).expect("unknown fields must not break parsing");
    assert_eq!(back, r, "unknown fields are ignored, known ones intact");
}

#[test]
fn wrong_schema_is_rejected_with_a_clear_error() {
    let json = full_record().to_json().replace(SCHEMA, "ifdk-run/v2");
    let err = RunRecord::from_json(&json).expect_err("newer schema must be rejected");
    assert!(
        err.contains("ifdk-run/v2") && err.contains(SCHEMA),
        "error names both the found and the supported schema: {err}"
    );

    let err = RunRecord::from_json("{\"source\":\"gups\",\"t_unix_ms\":1}")
        .expect_err("schema-less record must be rejected");
    assert!(
        err.contains("schema"),
        "error mentions the missing field: {err}"
    );
}

#[test]
fn store_round_trips_through_jsonl() {
    let records = vec![
        full_record(),
        RunRecord::new("tracereport", 1_754_000_000_456, MachineInfo::default()),
    ];
    let dir = std::env::temp_dir().join("ifdk-int-perfdb");
    let path = dir.join("trajectory.jsonl");
    let _ = std::fs::remove_file(&path);
    PerfDb::append(&path, &records).expect("append creates parent dirs and file");
    // Appending twice must extend, never truncate.
    PerfDb::append(&path, &records[..1]).expect("second append");
    let db = PerfDb::load(&path).expect("store loads");
    assert_eq!(db.records.len(), 3);
    assert_eq!(db.records[0], records[0]);
    assert_eq!(db.records[1], records[1]);
    assert_eq!(db.records[2], records[0]);

    let hits = db.select(&Filter {
        source: Some("gups".into()),
        kernel: Some("lanes-fma".into()),
        ..Filter::default()
    });
    assert_eq!(hits.len(), 2, "filter matches both gups records");
    let _ = std::fs::remove_file(&path);
}
