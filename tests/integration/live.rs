//! Live-telemetry integration: the sampler, flight recorder and stall
//! watchdog riding a real distributed reconstruction.
//!
//! Two scenarios: a clean run (full progress, zero trips, a flight dump
//! the offline analysis accepts unchanged) and a fault-injected run
//! (throttled back-projection behind a tiny ring) that must trip the
//! watchdog with push-side ring attribution.

use ct_obs::live::{MetricsSnapshot, StallKind, SNAPSHOT_VERSION};
use ct_obs::PipelineAnalysis;
use ct_pfs::PfsStore;
use ifdk::distributed::upload_projections;
use ifdk::{reconstruct_distributed, DistConfig, LiveConfig, RankGrid};
use ifdk_integration_tests::scene;
use std::time::Duration;

#[test]
fn clean_live_run_streams_frames_and_its_flight_dump_analyzes() {
    let (geo, _, stack) = scene(8, 16);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();

    let jsonl = std::env::temp_dir().join("ifdk-live-clean.jsonl");
    let mut cfg = DistConfig::new(geo, RankGrid::new(2, 2).unwrap());
    cfg.obs = ct_obs::Recorder::trace();
    cfg.live = Some(LiveConfig {
        period: Duration::from_millis(5),
        jsonl_path: Some(jsonl.clone()),
        ..LiveConfig::default()
    });

    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, &input, &output).unwrap();
    let live = report.live.expect("live config produces an outcome");

    // A clean run: frames flowed, nothing tripped, the stream wrote.
    assert!(live.snapshots >= 1, "at least the final frame");
    assert!(live.trips.is_empty(), "unexpected trips: {:?}", live.trips);
    assert!(live.trip_dump.is_none());
    assert_eq!(live.write_error, None);

    // The final frame says "done": full progress, all rings drained.
    let last = live.last.expect("final frame always emitted");
    assert_eq!(last.watchdog_trips, 0);
    let progress = last.progress.as_ref().expect("stages were planned");
    assert!(
        (progress.frac - 1.0).abs() < 1e-9,
        "final progress {}",
        progress.frac
    );
    assert_eq!(progress.eta_ns, 0);
    assert_eq!(last.rings.len(), 8, "2 rings x 4 ranks");
    assert!(last.rings.iter().all(|r| r.state.len == 0));

    // The JSONL stream parses back frame-for-frame, in order.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let frames: Vec<MetricsSnapshot> = text
        .lines()
        .map(|l| MetricsSnapshot::from_json(l).expect("frame parses"))
        .collect();
    assert_eq!(frames.len() as u64, live.snapshots);
    assert!(frames.iter().all(|f| f.version == SNAPSHOT_VERSION));
    assert!(
        frames.windows(2).all(|w| w[0].seq < w[1].seq),
        "seq strictly increases"
    );
    assert_eq!(frames.last(), Some(&last));
    let _ = std::fs::remove_file(&jsonl);

    // The acceptance bar: the flight-recorder dump from the live run
    // feeds the offline analysis unchanged — lane decomposition and a
    // critical path come out of a dump, not just a full trace.
    let dump = live.flight_dump.expect("flight recorder was attached");
    assert!(!dump.events.is_empty());
    let a = PipelineAnalysis::from_trace(&dump).expect("dump analyzes");
    assert!(a.wall_ns > 0);
    assert!(!a.critical_path.is_empty());
    assert!(a.max_stage_ns <= a.critical_path_ns);
    assert!(a.critical_path_ns <= a.wall_ns);
    let roles: Vec<&str> = a.lanes.iter().map(|l| l.role.as_str()).collect();
    for role in ["filter", "main", "backprojection"] {
        assert!(roles.contains(&role), "missing {role} in {roles:?}");
    }
}

#[test]
fn injected_stall_trips_the_watchdog_with_ring_attribution() {
    let (geo, _, stack) = scene(8, 32);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();

    // Fault injection: a 40 ms-per-batch back-projection behind a
    // 2-slot ring. The main thread must block pushing far past the
    // 10 ms deadline.
    let mut cfg = DistConfig::new(geo, RankGrid::new(1, 2).unwrap());
    cfg.obs = ct_obs::Recorder::trace();
    cfg.batch = 4;
    cfg.ring_capacity = 2;
    cfg.bp_throttle = Some(Duration::from_millis(40));
    cfg.live = Some(LiveConfig {
        period: Duration::from_millis(2),
        stall_deadline: Some(Duration::from_millis(10)),
        ..LiveConfig::default()
    });

    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, &input, &output).unwrap();
    let live = report.live.expect("live outcome");

    // The watchdog tripped. The throttled consumer blocks its producer
    // directly (a push stall on a bp ring); back-pressure may also
    // propagate upstream and trip the gather ring first, so look for
    // the bp-ring trip anywhere in the list.
    assert!(!live.trips.is_empty(), "watchdog never tripped");
    let trip = live
        .trips
        .iter()
        .find(|t| t.ring.contains("ring.bp"))
        .unwrap_or_else(|| panic!("no bp-ring trip in {:?}", live.trips));
    assert_eq!(trip.kind, StallKind::Push, "{trip:?}");
    assert!(trip.wait_ns >= 10_000_000, "{trip:?}");
    let last = live.last.expect("final frame");
    assert_eq!(last.watchdog_trips, live.trips.len() as u64);

    // The trip snapshotted the flight recorder, and that dump analyzes.
    let dump = live.trip_dump.expect("trip captures a flight dump");
    let a = PipelineAnalysis::from_trace(&dump).expect("trip dump analyzes");
    assert!(a.wall_ns > 0);

    // The trip is also on the permanent record: a `watchdog.trip` span
    // in the run's normal trace, on the sampler's (rank 0, Other) lane.
    assert!(
        report
            .trace
            .events
            .iter()
            .any(|e| e.name == "watchdog.trip"),
        "no watchdog.trip event in the trace"
    );
}
