//! Cross-crate property-based tests (proptest): the geometric theorems,
//! transform invariants and collective semantics hold for *arbitrary*
//! valid inputs, not just the fixtures.

use ct_core::geometry::{theorems, CbctGeometry};
use ct_core::interp::interp2;
use ct_core::problem::{Dims2, Dims3};
use ct_core::projection::ProjectionImage;
use ct_fft::{dft_naive, fft_any, ifft_any, Complex};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CbctGeometry> {
    (4usize..32, 4usize..32, 2usize..24, 1usize..40).prop_map(|(nu2, nv2, n2, np)| {
        CbctGeometry::standard(
            Dims2::new(2 * nu2, 2 * nv2),
            np,
            Dims3::new(2 * n2, 2 * n2, 2 * n2),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem1_symmetry_everywhere(
        geo in arb_geometry(),
        pi_frac in 0.0f64..1.0,
        i_frac in 0.0f64..1.0,
        j_frac in 0.0f64..1.0,
        k_frac in 0.0f64..1.0,
    ) {
        let pi = ((pi_frac * geo.num_projections as f64) as usize).min(geo.num_projections - 1);
        let p = geo.projection_matrix(pi);
        let i = ((i_frac * geo.volume.nx as f64) as usize).min(geo.volume.nx - 1);
        let j = ((j_frac * geo.volume.ny as f64) as usize).min(geo.volume.ny - 1);
        let k = ((k_frac * geo.volume.nz as f64) as usize).min(geo.volume.nz - 1);
        let (du, dv) = theorems::theorem1_residual(&geo, &p, i, j, k);
        prop_assert!(du < 1e-7, "u symmetry residual {du}");
        prop_assert!(dv < 1e-7, "v symmetry residual {dv}");
    }

    #[test]
    fn theorems_2_and_3_every_column(
        geo in arb_geometry(),
        pi_frac in 0.0f64..1.0,
        i_frac in 0.0f64..1.0,
        j_frac in 0.0f64..1.0,
    ) {
        let pi = ((pi_frac * geo.num_projections as f64) as usize).min(geo.num_projections - 1);
        let p = geo.projection_matrix(pi);
        let i = ((i_frac * geo.volume.nx as f64) as usize).min(geo.volume.nx - 1);
        let j = ((j_frac * geo.volume.ny as f64) as usize).min(geo.volume.ny - 1);
        prop_assert!(theorems::theorem2_residual(&geo, &p, i, j) < 1e-7);
        prop_assert!(theorems::theorem3_residual(&geo, &p, i, j) < 1e-7);
    }

    #[test]
    fn fft_round_trip_any_length(xs in prop::collection::vec(-100.0f64..100.0, 1..260)) {
        let input: Vec<Complex> = xs.iter().map(|&x| Complex::from_real(x)).collect();
        let back = ifft_any(&fft_any(&input));
        for (a, b) in input.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!(b.im.abs() < 1e-6);
        }
    }

    #[test]
    fn fft_matches_naive_dft_small(xs in prop::collection::vec(-10.0f64..10.0, 1..40)) {
        let input: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, -x * 0.5)).collect();
        let fast = fft_any(&input);
        let slow = dft_naive(&input);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_parseval(xs in prop::collection::vec(-10.0f64..10.0, 1..128)) {
        let input: Vec<Complex> = xs.iter().map(|&x| Complex::from_real(x)).collect();
        let spec = fft_any(&input);
        let e_time: f64 = input.iter().map(|c| c.norm_sq()).sum();
        let e_freq: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / input.len() as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-6 * e_time.max(1.0));
    }

    #[test]
    fn transpose_round_trip_any_shape(
        nu in 1usize..50,
        nv in 1usize..50,
        seed in any::<u32>(),
    ) {
        let mut img = ProjectionImage::zeros(Dims2::new(nu, nv));
        let mut state = seed as u64 | 1;
        for v in 0..nv {
            for u in 0..nu {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                img.set(u, v, (state >> 33) as f32 / 1e6);
            }
        }
        let back = img.transposed().untransposed();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn interp2_within_convex_hull(
        u in -1.0f32..10.0,
        v in -1.0f32..10.0,
        pixels in prop::collection::vec(0.0f32..100.0, 64..=64),
    ) {
        let val = interp2(&pixels, 8, 8, u, v);
        // With non-negative pixels and a zero border, any sample is
        // within [0, max].
        let hi = pixels.iter().fold(0.0f32, |m, &x| m.max(x));
        prop_assert!(val >= -1e-4 && val <= hi + 1e-4, "{val} not in [0, {hi}]");
    }

    #[test]
    fn allgather_equals_concatenation(
        p in 1usize..7,
        blocklen in 1usize..9,
        seed in any::<u32>(),
    ) {
        let blocks: Vec<Vec<f32>> = (0..p)
            .map(|r| {
                (0..blocklen)
                    .map(|i| ((seed as usize + r * 31 + i * 7) % 1000) as f32)
                    .collect()
            })
            .collect();
        let expect: Vec<f32> = blocks.iter().flatten().copied().collect();
        let blocks_ref = &blocks;
        let out = ct_comm::Universe::run(p, move |c| {
            c.all_gather(&blocks_ref[c.rank()])
        })
        .unwrap();
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn reduce_equals_serial_sum(
        p in 1usize..7,
        len in 1usize..16,
        seed in any::<u32>(),
    ) {
        let data: Vec<Vec<f32>> = (0..p)
            .map(|r| (0..len).map(|i| ((seed as usize + r * 13 + i) % 97) as f32).collect())
            .collect();
        let mut expect = vec![0.0f32; len];
        for d in &data {
            for (e, x) in expect.iter_mut().zip(d.iter()) {
                *e += x;
            }
        }
        let data_ref = &data;
        let out = ct_comm::Universe::run(p, move |c| {
            c.reduce_sum_f32(0, &data_ref[c.rank()])
        })
        .unwrap();
        // Integer-valued f32 sums are exact regardless of tree order.
        prop_assert_eq!(out[0].as_deref(), Some(&expect[..]));
    }

    #[test]
    fn gups_metric_scaling(updates in 1u128..1_000_000_000, secs in 0.001f64..1000.0) {
        let g = ct_core::metrics::gups(updates, secs);
        let g2 = ct_core::metrics::gups(updates, secs * 2.0);
        prop_assert!(g > 0.0);
        prop_assert!((g / g2 - 2.0).abs() < 1e-9);
    }
}
