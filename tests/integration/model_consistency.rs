//! Consistency tests between the performance model, the pipeline
//! simulator and the real (laptop-scale) distributed runs — plus checks
//! that the model reproduces the paper's published evaluation numbers
//! (the regeneration targets of Figures 5-6 and Table 5).

use ct_perfmodel::des::{simulate_pipeline, Overheads};
use ct_perfmodel::{plan_grid, MachineConfig, ModelBreakdown, ModelInput};
use ct_pfs::PfsStore;
use ifdk::distributed::upload_projections;
use ifdk::{reconstruct_distributed, DistConfig, RankGrid};
use ifdk_integration_tests::scene;

#[test]
fn paper_table5_4k_breakdown_within_tolerance() {
    // Table 5, 4K rows (measured): (gpus, T_AllGather, T_bp, T_compute).
    let rows = [
        (32usize, 31.4, 54.8, 70.2),
        (64, 20.7, 27.5, 35.6),
        (128, 15.2, 14.0, 18.9),
        (256, 7.4, 7.0, 10.2),
    ];
    let ov = Overheads::default();
    for (gpus, t_ag, t_bp, t_compute) in rows {
        let input = ModelInput::paper_4k(gpus);
        let model = ModelBreakdown::evaluate(&input);
        let sim = simulate_pipeline(&input, &ov);
        // Model's T_bp tracks the published *theoretical* value.
        assert!(
            (model.t_bp - t_bp).abs() < 0.25 * t_bp,
            "{gpus} GPUs: model T_bp {} vs paper {t_bp}",
            model.t_bp
        );
        // Simulated compute tracks the published *measured* value.
        assert!(
            (sim.t_compute - t_compute).abs() < 0.25 * t_compute,
            "{gpus} GPUs: sim {} vs paper {t_compute}",
            sim.t_compute
        );
        // AllGather magnitude is in range (paper measured values wobble).
        assert!(
            sim.t_allgather > 0.3 * t_ag && sim.t_allgather < 2.0 * t_ag,
            "{gpus} GPUs: sim AllGather {} vs paper {t_ag}",
            sim.t_allgather
        );
    }
}

#[test]
fn paper_table5_8k_breakdown_within_tolerance() {
    let rows = [
        (256usize, 83.0, 101.3),
        (512, 41.5, 53.1),
        (1024, 20.8, 29.7),
        (2048, 10.4, 17.2),
    ];
    let ov = Overheads::default();
    for (gpus, t_bp, t_compute) in rows {
        let input = ModelInput::paper_8k(gpus);
        let model = ModelBreakdown::evaluate(&input);
        let sim = simulate_pipeline(&input, &ov);
        assert!(
            (model.t_bp - t_bp).abs() < 0.15 * t_bp,
            "{gpus}: model {} vs {t_bp}",
            model.t_bp
        );
        assert!(
            (sim.t_compute - t_compute).abs() < 0.3 * t_compute,
            "{gpus}: sim {} vs {t_compute}",
            sim.t_compute
        );
    }
}

#[test]
fn headline_claims_hold_in_simulation() {
    // "we solve the 4K and 8K problems within 30 seconds and 2 minutes,
    // respectively (including I/O)" — at 2,048 GPUs.
    let ov = Overheads::default();
    let sim4k = simulate_pipeline(&ModelInput::paper_4k(2048), &ov);
    assert!(
        sim4k.t_runtime < 30.0,
        "4K end-to-end {} s, claim < 30 s",
        sim4k.t_runtime
    );
    let sim8k = simulate_pipeline(&ModelInput::paper_8k(2048), &ov);
    assert!(
        sim8k.t_runtime < 120.0,
        "8K end-to-end {} s, claim < 2 min",
        sim8k.t_runtime
    );
}

#[test]
fn real_run_overlap_beats_serial_sum() {
    // The overlap argument (Table 5's delta > 1) in a real distributed
    // run: the end-to-end wall time must come in below the serial sum of
    // the stage busy-times plus pre/post overhead. (Which stage dominates
    // is scale-dependent — BP wins at the paper's sizes, filtering can at
    // laptop sizes — so only the overlap relation is asserted.)
    let (geo, _, stack) = scene(24, 48);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, &input, &output).unwrap();

    let t_flt = report.max_stage_secs("filter") + report.max_stage_secs("load");
    let t_bp = report.max_stage_secs("backprojection");
    let t_ag = report.max_stage_secs("allgather");
    // Every overlapped stage actually ran.
    assert!(t_flt > 0.0 && t_bp > 0.0 && t_ag > 0.0);
    // The overlapped phase is shorter than the serial sum (delta > 1),
    // with headroom for the non-overlapped reduce/store tail.
    let serial_sum = t_flt + t_ag + t_bp;
    let tail = report.max_stage_secs("reduce") + report.max_stage_secs("store");
    assert!(
        report.runtime_secs < serial_sum + tail + 0.5,
        "runtime {} vs serial sum {serial_sum} + tail {tail}",
        report.runtime_secs
    );
}

#[test]
fn planner_and_model_agree_on_memory_limits() {
    let m = MachineConfig::abci();
    // Whatever the planner picks must validate in the model.
    for (nx, gpus) in [(2048usize, 64usize), (4096, 256), (8192, 1024)] {
        let plan = plan_grid(2048, 2048, nx, nx, nx, gpus, &m).unwrap();
        let input = ModelInput {
            nu: 2048,
            nv: 2048,
            np: 4096,
            nx,
            ny: nx,
            nz: nx,
            r: plan.r,
            c: plan.c,
            machine: m.clone(),
            kernel: ct_perfmodel::KernelModel::v100_proposed(),
        };
        input
            .validate()
            .unwrap_or_else(|e| panic!("{nx} on {gpus}: {e}"));
    }
}

#[test]
fn scaling_shape_strong_vs_weak() {
    // Strong scaling: T_compute halves (roughly) per GPU doubling.
    let ov = Overheads::default();
    let mut prev = f64::INFINITY;
    for g in [32, 64, 128, 256, 512] {
        let sim = simulate_pipeline(&ModelInput::paper_4k(g), &ov);
        assert!(sim.t_compute < prev * 0.75, "{g} GPUs: {}", sim.t_compute);
        prev = sim.t_compute;
    }
    // Weak scaling (Fig. 5c): Np grows with GPUs, T_compute ~ flat.
    let mut times = Vec::new();
    for g in [32usize, 128, 512, 2048] {
        let mut input = ModelInput::paper_4k(g);
        input.np = 16 * g;
        times.push(simulate_pipeline(&input, &ov).t_compute);
    }
    let (lo, hi) = times
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(l, h), &t| (l.min(t), h.max(t)));
    assert!(hi / lo < 1.35, "weak scaling spread {times:?}");
}

#[test]
fn gups_grows_with_output_size_at_fixed_gpus() {
    // Figure 6's observation: iFDK scales better on 8192^3 than 4096^3
    // (better device utilisation, smaller alpha).
    let ov = Overheads::default();
    let g4 = simulate_pipeline(&ModelInput::paper_4k(2048), &ov).gups;
    let g8 = simulate_pipeline(&ModelInput::paper_8k(2048), &ov).gups;
    assert!(g8 > g4, "8K GUPS {g8} should exceed 4K GUPS {g4}");
}
