//! Pipeline-analysis integration tests: the invariants of
//! `ct_obs::analysis` over generated trace families, and the full
//! capture → export → re-import → analyze loop on a real distributed
//! run.

use ct_obs::analysis::PipelineAnalysis;
use ct_obs::{Recorder, SpanDeps, SpanEvent, ThreadRole, TraceData};
use ct_pfs::PfsStore;
use ifdk::distributed::upload_projections;
use ifdk::{reconstruct_distributed, DistConfig, RankGrid};
use ifdk_integration_tests::scene;

fn ev(
    rank: u32,
    role: ThreadRole,
    name: &'static str,
    start: u64,
    end: u64,
    index: u64,
    deps: Option<SpanDeps>,
) -> SpanEvent {
    SpanEvent {
        rank,
        role,
        name,
        start_ns: start,
        dur_ns: end - start,
        index: Some(index),
        bytes: None,
        deps,
    }
}

/// Deterministic pseudo-random stream (xorshift64*) so the generated
/// trace family is reproducible without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) % bound.max(1)
    }
}

/// A random-but-valid three-lane pipeline on `ranks` ranks: per rank,
/// `n` filter spans, each feeding an allgather, allgathers feeding
/// back-projection batches of 2, with random jitter between spans.
fn random_pipeline(seed: u64, ranks: u32, n: u64) -> TraceData {
    let mut rng = Rng(seed | 1);
    let mut data = TraceData::default();
    for rank in 0..ranks {
        let mut t = rng.next(50);
        let mut filter_ends = Vec::new();
        for i in 0..n {
            let start = t + rng.next(20);
            let end = start + 1 + rng.next(30);
            data.events
                .push(ev(rank, ThreadRole::Filter, "filter", start, end, i, None));
            filter_ends.push(end);
            t = end;
        }
        let mut ag_ends = Vec::new();
        for i in 0..n {
            let start = filter_ends[i as usize] + rng.next(15);
            let start = start.max(ag_ends.last().copied().unwrap_or(0));
            let end = start + 1 + rng.next(25);
            data.events.push(ev(
                rank,
                ThreadRole::Main,
                "allgather",
                start,
                end,
                i,
                Some(SpanDeps {
                    stage: "filter",
                    lo: i,
                    hi: i,
                }),
            ));
            ag_ends.push(end);
        }
        for (b, pair) in ag_ends.chunks(2).enumerate() {
            let lo = 2 * b as u64;
            let hi = lo + pair.len() as u64 - 1;
            let start = *pair.last().unwrap() + rng.next(10);
            let end = start + 1 + rng.next(40);
            data.events.push(ev(
                rank,
                ThreadRole::Backprojection,
                "backprojection",
                start,
                end,
                b as u64,
                Some(SpanDeps {
                    stage: "allgather",
                    lo,
                    hi,
                }),
            ));
        }
    }
    data
}

#[test]
fn ordering_invariant_holds_over_a_trace_family() {
    // max_stage <= critical_path <= wall, for every generated pipeline.
    for seed in 1..=40u64 {
        let data = random_pipeline(seed, 1 + (seed % 4) as u32, 3 + seed % 5);
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        assert!(
            a.max_stage_ns <= a.critical_path_ns,
            "seed {seed}: max stage {} > critical path {}",
            a.max_stage_ns,
            a.critical_path_ns
        );
        assert!(
            a.critical_path_ns <= a.wall_ns,
            "seed {seed}: critical path {} > wall {}",
            a.critical_path_ns,
            a.wall_ns
        );
        assert!(a.overlap_efficiency > 0.0 && a.overlap_efficiency <= 1.0);
    }
}

#[test]
fn lane_time_decomposes_into_busy_stall_and_bubbles() {
    // Per lane: busy + stall + bubble time covers the wall exactly.
    for seed in 1..=40u64 {
        let data = random_pipeline(seed, 2, 4);
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        for l in &a.lanes {
            let bubbles: u64 = l.bubbles.iter().map(|(s, e)| e - s).sum();
            assert_eq!(
                l.busy_ns + l.stall_ns + bubbles,
                a.wall_ns,
                "seed {seed}, rank {} {:?}: lane time does not decompose",
                l.rank,
                l.role
            );
            assert_eq!(l.idle_ns, bubbles);
        }
    }
}

#[test]
fn critical_path_is_chronological_and_measures_its_own_chain() {
    for seed in 1..=20u64 {
        let data = random_pipeline(seed, 2, 4);
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        let path = &a.critical_path;
        assert!(!path.is_empty());
        // Steps never end later than their successor ends, and only the
        // first step is an origin.
        for w in path.windows(2) {
            assert!(w[0].start_ns + w[0].dur_ns <= w[1].start_ns + w[1].dur_ns);
        }
        assert!(path[1..]
            .iter()
            .all(|s| s.edge != ct_obs::analysis::EdgeKind::Origin));
        // critical_path_ns is exactly the chain's covered time: each
        // step contributes its interval minus the overlap with its
        // predecessor's end.
        let mut covered = 0;
        let mut prev_end = 0;
        for s in path.iter() {
            let end = s.start_ns + s.dur_ns;
            covered += end - s.start_ns.max(prev_end).min(end);
            prev_end = end;
        }
        assert_eq!(covered, a.critical_path_ns, "seed {seed}");
    }
}

#[test]
fn perfectly_collapsed_pipeline_scores_one() {
    // A single lane with back-to-back spans: the wall IS the stage, so
    // overlap efficiency is exactly 1.0 and there are no bubbles.
    let mut data = TraceData::default();
    for i in 0..6u64 {
        data.events.push(ev(
            0,
            ThreadRole::Filter,
            "filter",
            i * 10,
            (i + 1) * 10,
            i,
            None,
        ));
    }
    let a = PipelineAnalysis::from_trace(&data).unwrap();
    assert_eq!(a.wall_ns, 60);
    assert_eq!(a.max_stage_ns, 60);
    assert_eq!(a.critical_path_ns, 60);
    assert!((a.overlap_efficiency - 1.0).abs() < 1e-12);
    assert!(a.lanes.iter().all(|l| l.bubbles.is_empty()));
    assert!(a.meets_overlap(1.0));
}

#[test]
fn real_distributed_capture_analyzes_and_survives_reimport() {
    let (geo, _, stack) = scene(16, 32);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
    cfg.obs = Recorder::trace();
    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, &input, &output).unwrap();

    let a = report.pipeline_analysis().expect("trace mode analyzes");
    assert!(a.max_stage_ns <= a.critical_path_ns);
    assert!(a.critical_path_ns <= a.wall_ns);
    assert!(a.overlap_efficiency > 0.0 && a.overlap_efficiency <= 1.0);
    // Every (rank, role) lane of the 2x2 grid appears.
    assert_eq!(a.lanes.len(), 4 * 3);
    let r = a.report();
    assert!(r.contains("overlap efficiency"));
    assert!(r.contains("per-lane utilization"));

    // Export -> parse -> analyze must reproduce the same figures: the
    // tracereport gate sees exactly what the in-process analysis saw.
    let json = ct_obs::chrome::to_chrome_json(&report.trace);
    let reimported = ct_obs::chrome::parse_trace(&json).expect("exporter output parses");
    let b = PipelineAnalysis::from_trace(&reimported).expect("reimported trace analyzes");
    assert_eq!(a.wall_ns, b.wall_ns);
    assert_eq!(a.max_stage_ns, b.max_stage_ns);
    assert_eq!(a.critical_path_ns, b.critical_path_ns);
    assert_eq!(a.stalls, b.stalls);
    assert_eq!(a.lanes, b.lanes);
}
