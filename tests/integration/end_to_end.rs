//! End-to-end single-node reconstruction tests spanning ct-core,
//! ct-filter, ct-bp and ifdk — the paper's Section 5.1 verification
//! methodology (Shepp-Logan projections in, reconstructed volume out,
//! compared against the reference).

use ct_bp::{BpConfig, KernelVariant};
use ct_core::metrics::{nrmse, rmse};
use ct_core::volume::VolumeLayout;
use ct_filter::{FilterConfig, RampKind};
use ifdk::{reconstruct, reconstruct_pipelined, ReconOptions};
use ifdk_integration_tests::{scene, sphere_scene};

#[test]
fn shepp_logan_structure_recovered() {
    let (geo, phantom, stack) = scene(32, 96);
    let vol = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
        geo.voxel_position(i, j, k)
    });
    let e = nrmse(truth.data(), vol.data()).unwrap();
    assert!(e < 0.2, "NRMSE {e}");
    // Ventricle (low) vs skull (high) contrast is preserved.
    let skull = vol.get(16, 3, 16);
    let background = vol.get(0, 0, 0);
    assert!(
        skull > 1.0 && background < 0.3,
        "skull {skull}, bg {background}"
    );
}

#[test]
fn absolute_density_calibration() {
    // A unit-density sphere reconstructs to ~1.0 inside: the full chain of
    // cosine weighting, ramp normalisation, distance weighting and the
    // global FDK constant is correct in absolute terms.
    let (geo, _, stack) = sphere_scene(24, 48, 7.0);
    let vol = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    for (i, j, k) in [(12, 12, 12), (10, 12, 12), (12, 14, 13)] {
        let v = vol.get(i, j, k);
        assert!((v - 1.0).abs() < 0.1, "voxel ({i},{j},{k}) = {v}");
    }
}

#[test]
fn all_kernel_variants_match_reference_at_paper_tolerance() {
    // Table 3/4's five kernels all compute the same integral; the paper
    // verifies RMSE < 1e-5 against the reference implementation.
    let (geo, _, stack) = scene(16, 64);
    let reference = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    for variant in KernelVariant::ALL {
        let opts = ReconOptions {
            bp: BpConfig {
                variant,
                ..BpConfig::default()
            },
            ..ReconOptions::default()
        };
        let vol = reconstruct(&geo, &stack, &opts).unwrap();
        let e = nrmse(reference.data(), vol.data()).unwrap();
        assert!(e < 1e-5, "{}: NRMSE {e}", variant.name());
    }
}

#[test]
fn pipelined_equals_batch_reconstruction() {
    let (geo, _, stack) = scene(16, 48);
    let opts = ReconOptions::default();
    let plain = reconstruct(&geo, &stack, &opts).unwrap();
    let piped = reconstruct_pipelined(&geo, &stack, &opts).unwrap();
    let e = nrmse(plain.data(), piped.data()).unwrap();
    assert!(e < 1e-5, "NRMSE {e}");
}

#[test]
fn ramp_windows_trade_sharpness_for_noise() {
    // Softer windows lower the volume's total variation (smoother image)
    // while keeping the bulk density: the Section 2.2.2 statement that
    // the window shapes quality, made quantitative.
    let (geo, _, stack) = scene(24, 64);
    let tv = |ramp: RampKind| -> f64 {
        let opts = ReconOptions {
            filter: FilterConfig {
                ramp,
                kernel_half_width: None,
            },
            ..ReconOptions::default()
        };
        let vol = reconstruct(&geo, &stack, &opts).unwrap();
        let d = geo.volume;
        let mut acc = 0.0f64;
        for k in 0..d.nz {
            for j in 0..d.ny {
                for i in 1..d.nx {
                    acc += (vol.get(i, j, k) - vol.get(i - 1, j, k)).abs() as f64;
                }
            }
        }
        acc
    };
    let sharp = tv(RampKind::RamLak);
    let soft = tv(RampKind::Hann);
    assert!(
        soft < sharp,
        "Hann TV {soft} should be below Ram-Lak TV {sharp}"
    );
}

#[test]
fn reconstruction_error_decreases_with_more_projections() {
    // Classic FBP behaviour: angular sampling controls quality.
    let mut errors = Vec::new();
    for np in [16usize, 48, 144] {
        let (geo, phantom, stack) = scene(24, np);
        let vol = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
        let truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
            geo.voxel_position(i, j, k)
        });
        errors.push(nrmse(truth.data(), vol.data()).unwrap());
    }
    assert!(
        errors[0] > errors[1] && errors[1] > errors[2],
        "errors not decreasing: {errors:?}"
    );
}

#[test]
fn short_scan_with_parker_weights_reconstructs_absolute_density() {
    // A Parker short scan (pi + 2*delta) must reproduce absolute
    // densities like the full scan does — including off-centre, where a
    // wrong redundancy weighting (or a flipped fan-angle sign) shows up
    // immediately as local over/under-counting.
    use ct_core::math::Vec3;
    use ct_core::phantom::{Ellipsoid, Phantom};
    let n = 24;
    let geo = ct_core::CbctGeometry::standard_short_scan(
        ct_core::Dims2::new(2 * n, 2 * n),
        96,
        ct_core::Dims3::cube(n),
    );
    assert!(!geo.is_full_scan());
    let phantom = Phantom {
        ellipsoids: vec![Ellipsoid {
            density: 1.0,
            a: 4.0,
            b: 4.0,
            c: 4.0,
            center: Vec3::new(5.0, -3.0, 2.0), // deliberately off-centre
            phi: 0.0,
        }],
    };
    let stack = ct_core::forward::project_all_analytic(&geo, &phantom);
    let vol = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    // Voxel indices of the sphere centre: i = cx + 5, j = cy + 3, k = cz - 2.
    let (ci, cj, ck) = (n / 2 + 5, n / 2 + 3, n / 2 - 2);
    let center = vol.get(ci, cj, ck);
    assert!(
        (center - 1.0).abs() < 0.15,
        "short-scan off-centre density {center}, expected ~1.0"
    );
    // Background stays near zero.
    let bg = vol.get(2, 2, n / 2);
    assert!(bg.abs() < 0.15, "background {bg}");

    // And the full-scan reconstruction of the same phantom agrees.
    let full_geo = ct_core::CbctGeometry::standard(
        ct_core::Dims2::new(2 * n, 2 * n),
        96,
        ct_core::Dims3::cube(n),
    );
    let full_stack = ct_core::forward::project_all_analytic(&full_geo, &phantom);
    let full = reconstruct(&full_geo, &full_stack, &ReconOptions::default()).unwrap();
    let diff = (full.get(ci, cj, ck) - center).abs();
    assert!(diff < 0.2, "short vs full scan centre differ by {diff}");
}

#[test]
fn thread_count_does_not_change_results() {
    let (geo, _, stack) = scene(16, 32);
    let a = reconstruct(
        &geo,
        &stack,
        &ReconOptions {
            threads: 1,
            ..ReconOptions::default()
        },
    )
    .unwrap();
    let b = reconstruct(
        &geo,
        &stack,
        &ReconOptions {
            threads: 7,
            ..ReconOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        rmse(a.data(), b.data()).unwrap(),
        0.0,
        "parallelism must be bit-exact"
    );
}
