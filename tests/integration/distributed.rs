//! Distributed-framework integration tests: the 2D rank grid, collectives
//! and PFS I/O working together (paper Section 4 / Figure 7).

use ct_core::metrics::nrmse;
use ct_core::problem::Dims3;
use ct_pfs::{Backend, PfsConfig, PfsStore};
use ifdk::distributed::{download_volume, upload_projections};
use ifdk::{reconstruct, reconstruct_distributed, DistConfig, RankGrid, ReconOptions};
use ifdk_integration_tests::scene;

fn run_grid(
    geo: &ct_core::CbctGeometry,
    input: &PfsStore,
    rows: usize,
    cols: usize,
) -> (ct_core::volume::Volume, ifdk::DistReport) {
    let cfg = DistConfig::new(geo.clone(), RankGrid::new(rows, cols).unwrap());
    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, input, &output).unwrap();
    (download_volume(&output, geo.volume).unwrap(), report)
}

#[test]
fn grid_shape_sweep_all_match_single_node() {
    let (geo, _, stack) = scene(16, 32);
    let single = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    // Every viable R x C factorisation of up to 8 ranks.
    for (r, c) in [
        (1, 1),
        (1, 2),
        (2, 1),
        (2, 2),
        (4, 1),
        (1, 4),
        (4, 2),
        (2, 4),
        (8, 1),
    ] {
        let (vol, report) = run_grid(&geo, &input, r, c);
        let e = nrmse(single.data(), vol.data()).unwrap();
        assert!(e < 1e-5, "{r}x{c}: NRMSE {e}");
        assert_eq!(report.per_rank.len(), r * c);
    }
}

#[test]
fn more_columns_means_more_reduce_traffic() {
    let (geo, _, stack) = scene(16, 32);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let (_, rep_c1) = run_grid(&geo, &input, 4, 1);
    let (_, rep_c4) = run_grid(&geo, &input, 4, 4);
    // C = 1 does no reduction at all; C = 4 must move strictly more bytes.
    assert!(
        rep_c4.comm_bytes > rep_c1.comm_bytes,
        "c4 {} vs c1 {}",
        rep_c4.comm_bytes,
        rep_c1.comm_bytes
    );
}

#[test]
fn figure7_16_ranks_4x4() {
    // The paper's Figure 7: R=4, C=4, 16 ranks, with MPI_Reduce within
    // each row producing the final sub-volumes.
    let (geo, phantom, stack) = scene(16, 32);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let (vol, report) = run_grid(&geo, &input, 4, 4);
    assert_eq!(report.per_rank.len(), 16);
    // Reduce happened on every rank (C > 1).
    assert!(report.max_stage_secs("reduce") > 0.0);
    // Structure present.
    let truth = phantom.voxelize(
        geo.volume,
        ct_core::volume::VolumeLayout::IMajor,
        |i, j, k| geo.voxel_position(i, j, k),
    );
    let e = nrmse(truth.data(), vol.data()).unwrap();
    assert!(e < 0.3, "NRMSE vs phantom {e}");
}

#[test]
fn disk_backed_pfs_round_trip() {
    let (geo, _, stack) = scene(8, 16);
    let dir = std::env::temp_dir().join(format!("ifdk_disk_test_{}", std::process::id()));
    let cfg = PfsConfig::default();
    let input = PfsStore::new(Backend::Disk(dir.join("in")), cfg.clone()).unwrap();
    let output = PfsStore::new(Backend::Disk(dir.join("out")), cfg).unwrap();
    upload_projections(&input, &stack).unwrap();

    let dist_cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
    reconstruct_distributed(&dist_cfg, &input, &output).unwrap();
    // All Nz slices exist on disk.
    assert_eq!(output.list().len(), geo.volume.nz);
    let vol = download_volume(&output, geo.volume).unwrap();
    let single = { reconstruct(&geo, &stack, &ReconOptions::default()).unwrap() };
    assert!(nrmse(single.data(), vol.data()).unwrap() < 1e-5);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn output_slices_cover_all_z() {
    let (geo, _, stack) = scene(16, 32);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let cfg = DistConfig::new(geo.clone(), RankGrid::new(4, 2).unwrap());
    let output = PfsStore::memory();
    reconstruct_distributed(&cfg, &input, &output).unwrap();
    let names = output.list();
    assert_eq!(names.len(), geo.volume.nz);
    for k in 0..geo.volume.nz {
        assert!(
            names.contains(&PfsStore::slice_name(k)),
            "slice {k} missing"
        );
    }
}

#[test]
fn io_accounting_matches_data_volumes() {
    let (geo, _, stack) = scene(16, 32);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let in_bytes_before = input.stats().bytes_read;
    let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
    let output = PfsStore::memory();
    reconstruct_distributed(&cfg, &input, &output).unwrap();
    // Each projection is read exactly once across all ranks.
    let expected_read = (geo.detector.len() * geo.num_projections * 4) as u64;
    assert_eq!(input.stats().bytes_read - in_bytes_before, expected_read);
    // The volume is written exactly once.
    let expected_written = (geo.volume.len() * 4) as u64;
    assert_eq!(output.stats().bytes_written, expected_written);
}

#[test]
fn rectangular_volume_distributes() {
    // Non-cubic output exercises the slab bookkeeping.
    let geo =
        ct_core::CbctGeometry::standard(ct_core::Dims2::new(48, 32), 24, Dims3::new(24, 20, 16));
    let phantom = ct_core::phantom::Phantom::uniform_sphere(5.0);
    let stack = ct_core::forward::project_all_analytic(&geo, &phantom);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();
    let single = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let (vol, _) = run_grid(&geo, &input, 4, 2);
    assert!(nrmse(single.data(), vol.data()).unwrap() < 1e-5);
}
