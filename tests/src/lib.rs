//! Shared fixtures for the cross-crate integration tests.

#![forbid(unsafe_code)]

use ct_core::forward::project_all_analytic;
use ct_core::geometry::CbctGeometry;
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3};
use ct_core::projection::ProjectionStack;

/// A standard small test scene: geometry, Shepp-Logan phantom, exact
/// projections. `n` is the cubic volume side; the detector is `2n x 2n`.
pub fn scene(n: usize, np: usize) -> (CbctGeometry, Phantom, ProjectionStack) {
    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let phantom = Phantom::shepp_logan(0.45 * n as f64);
    let stack = project_all_analytic(&geo, &phantom);
    (geo, phantom, stack)
}

/// A sphere scene for absolute-density checks.
pub fn sphere_scene(n: usize, np: usize, r: f64) -> (CbctGeometry, Phantom, ProjectionStack) {
    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let phantom = Phantom::uniform_sphere(r);
    let stack = project_all_analytic(&geo, &phantom);
    (geo, phantom, stack)
}
