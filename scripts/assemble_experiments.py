#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the regenerator outputs in results/.

Run scripts/run_experiments.sh first; this script embeds the collected
tables next to the paper's published values and the claim checklist.
"""
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"


def grab(name: str) -> str:
    p = RESULTS / f"{name}.txt"
    if not p.exists():
        return f"(missing: run scripts/run_experiments.sh to produce {p.name})"
    return p.read_text().rstrip()


HEADER = """# EXPERIMENTS — paper vs. this reproduction

Every table and figure of the paper's evaluation (Section 5), the
regenerator that reproduces it, and paper-vs-measured values. Absolute
numbers come from two sources, per the substitution plan (DESIGN.md §2):

* **model/sim** — the paper's own performance model (Eqs. 8–19) with its
  published ABCI constants, plus the pipeline discrete-event simulator
  with documented overhead factors (`ct_perfmodel::des::Overheads`). Used
  for the 32–2,048-GPU scaling results no laptop can run directly.
* **real run** — actual execution of the full pipeline (all substrates,
  threads as ranks) at laptop scale. The build machine for the numbers
  below had a **single CPU core**, so absolute GUPS are small; every
  claim under test is about *shape* (who wins, scaling behaviour,
  correctness bars), which is core-count independent.

Regenerate everything with `scripts/run_experiments.sh` (or any single
binary listed below); add `--json out.json` for machine-readable
datapoints.

## Summary of claim checks

| Paper claim | Where checked | Result |
|---|---|---|
| Proposed kernel cuts projection-coordinate cost to 1/6 (Alg. 4) | op-count construction in `ct-bp::proposed` (2 dots/column + 1 dot/voxel vs 3 dots/voxel, half z-range); speedup isolated per optimisation in `bench/benches/ablation.rs` | PASS (see §Table 4 and the ablation bench) |
| Proposed kernel up to 1.6x faster than the standard FDK kernel | `table4`: L1-Tran vs RTK-32 columns | PASS — L1-Tran leads RTK-32 by ~1.5–2.5x at small/medium alpha on this CPU |
| Output matches reference at RMSE < 1e-5 | `tests/integration/end_to_end.rs` (all 5 kernel variants), `fig7` (distributed vs single), f32-vs-f64 in `ct-bp::ablation` | PASS |
| 4K in < 30 s, 8K in < 2 min incl. I/O on 2,048 GPUs | `model_consistency.rs::headline_claims_hold_in_simulation`; `fig5`/`fig6` | PASS (sim: 4K ~21 s, 8K ~109 s end-to-end) |
| delta > 1: the 3-thread overlap pays (Table 5) | `table5` sim columns; real-run check in `model_consistency.rs` | PASS (delta 1.2–1.7 across the sweep) |
| Strong scaling near-ideal to 2,048 GPUs; weak scaling flat | `fig5` a–d | PASS (T_compute halves per doubling; weak-scaling spread < 25 %) |
| Larger outputs reach higher GUPS (Fig. 6) | `fig6`; `model_consistency.rs::gups_grows_with_output_size_at_fixed_gpus` | PASS |
| ~76 % of model peak achieved | `des::tests::sim_is_slower_than_model_but_not_wildly` | PASS (sim lands at 55–90 % of peak across the sweep) |
| < $100 for a 4K volume on 256 AWS p3.8xlarge (§6.2.1) | `ct_perfmodel::cloud` test + `capacity_planning` example | PASS (~$80 at the paper's pricing) |

Known deviations are listed at the bottom.
"""

SECTIONS = [
    (
        "Table 3 — kernel characteristics",
        "table3",
        "Descriptive reproduction of the variant matrix; the CPU mapping of "
        "the texture/L1 access paths is documented in DESIGN.md §4.",
    ),
    (
        "Table 4 — back-projection kernel GUPS",
        "table4",
        "Paper problems scaled by 1/8 (alpha classes preserved; see DESIGN.md "
        "§5). Paper values on a V100 for reference: L1-Tran peaks at ~212 GUPS, "
        "RTK-32 at ~118; RTK-32 leads at very large alpha (shallow outputs) and "
        "loses at small alpha; outputs over its dual-buffer limit are N/A. The "
        "same ordering holds here at CPU scale.",
    ),
    (
        "Table 5 — T_compute breakdown",
        "table5",
        "Paper measured values side by side with this pipeline simulator "
        "(same machine constants).",
    ),
    (
        "Figure 4c — pipeline timeline",
        "fig4c",
        "Three-thread timeline for the 4K problem on 128 GPUs.",
    ),
    (
        "Figure 5 — strong and weak scaling",
        "fig5",
        "Stacked per-phase times, simulated 'measured' vs analytic peak. "
        "Paper anchor series are printed in the footer of the output.",
    ),
    (
        "Figure 6 — end-to-end GUPS",
        "fig6",
        "Paper anchors for the 4096^3 series shown in parentheses.",
    ),
    (
        "Figure 7 — real distributed 4x4 run",
        "fig7",
        "A real 16-rank run of the full pipeline (PFS in/out) at laptop "
        "scale, verified against the single-node reconstruction.",
    ),
    (
        "Section 4.2.1 — micro-benchmarks",
        "microbench",
        "This machine's substrate constants, next to the paper's ABCI values.",
    ),
]

FOOTER = """
## Ablation: where the kernel speedup comes from

`cargo bench -p ifdk-bench --bench ablation` isolates each optimisation of
the proposed algorithm on one problem (128^2 x 64 -> 64^3). On the build
machine (single CPU core):

| step | kernel | throughput |
|---|---|---|
| 1 | standard Algorithm 2 | ~52 Melem/s |
| 2 | + k-major volume & transposed projections | ~52 Melem/s |
| 3 | + Theorem 2/3 column reuse (1 inner product/voxel) | ~97 Melem/s |
| 4 | + Theorem 1 mirror symmetry (full Algorithm 4) | ~84 Melem/s |

The column-reuse step carries the arithmetic saving (1.85x here). The
mirror-symmetry step — a clear win on the GPU, where it halves the warp's
coordinate math — gives back ~13 % on this CPU because the two-ended
column writes cost more than the halved `v` computation saves; the full
Algorithm 4 still beats the standard kernel by ~1.6x, and the Table 4
sweep shows the same end-to-end ordering the paper reports.

## Known deviations

* **Absolute throughput** — kernels run on CPU cores, not V100s; Table 4
  GUPS are ~3 orders of magnitude below the paper's. The claims under
  test (variant ordering, alpha dependence, RMSE bars, scaling shape)
  are architecture-independent, per the substitution argument in
  DESIGN.md §2.
* **`Bp-L1` mapping** — realised as *untransposed* row-major access (the
  CPU analogue of losing L1 locality); Table 3's literal checkmark says
  "transpose projection: yes" for that kernel. Documented in DESIGN.md §4.
* **AllGather absolute times** — the ring model with one effective
  bandwidth constant tracks the paper's Table 5 within ~2x across both
  problem sizes; the paper's own measured values wobble similarly
  (contention grows with total rank count, which the simulator models
  with a log-factor).
* **Figure 6 at the largest scales** — the paper's Fig. 6 point for 4K at
  2,048 GPUs (20,480 GUPS) implies a runtime *below* the sum of its own
  Fig. 5a stacked measured bars; our simulated point lands between the
  two published values.
* **Theorem-1 symmetry on CPU** — see the ablation above: the mirror
  pairing is the one optimisation whose benefit does not transfer from
  the GPU to this CPU (write-pattern cost), which the ablation bench
  makes visible rather than hiding.
* **Table 4 absolute rows at alpha >= 512** — with outputs of only 16^3
  to 32^3 voxels, per-call overheads dominate on CPU, so the RTK-32
  advantage the paper reports at extreme alpha shows up here as a
  narrowing gap rather than a crossover at exactly the same row.
"""


def main() -> None:
    parts = [HEADER]
    for title, name, blurb in SECTIONS:
        parts.append(f"\n## {title}\n\n{blurb}\n\n```text\n{grab(name)}\n```\n")
    parts.append(FOOTER)
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("".join(parts))
    print(f"wrote {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    sys.exit(main())
