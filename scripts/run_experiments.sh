#!/usr/bin/env bash
# Regenerate every paper table/figure and collect outputs under results/.
# Usage: scripts/run_experiments.sh [scale]
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-8}"
OUT=results
mkdir -p "$OUT"

run() {
    local name="$1"; shift
    echo "=== $name ==="
    cargo run --release -q -p ifdk-bench --bin "$name" -- "$@" \
        | tee "$OUT/$name.txt"
}

run table3
run table4 --scale "$SCALE" --reps 2 --json "$OUT/table4.json"
run table5 --json "$OUT/table5.json"
run fig4c
run fig5 all --json "$OUT/fig5.json"
run fig6 --json "$OUT/fig6.json"
run fig7 --size 64 --np 64 --json "$OUT/fig7.json"
run microbench --json "$OUT/microbench.json"

echo "all experiment outputs in $OUT/"
