//! # ct-core — CBCT geometry, containers and phantoms
//!
//! Foundation crate of the iFDK-rs workspace, a reproduction of
//! *"iFDK: A Scalable Framework for Instant High-resolution Image
//! Reconstruction"* (Chen et al., SC '19).
//!
//! This crate provides everything the filtering and back-projection stages
//! share:
//!
//! * [`geometry`] — the cone-beam CT (CBCT) acquisition geometry of the
//!   paper's Table 1 and Section 3.2.1, including the `M0`/`Mrot`/`M1`
//!   projection-matrix factorisation and the three theorems the proposed
//!   back-projection algorithm exploits.
//! * [`projection`] — 2D projection images and stacks of them, in the
//!   row-major, transposed and blocked ("texture-like") layouts examined by
//!   the paper's Table 3.
//! * [`volume`] — 3D volumes in the i-major (standard) and k-major
//!   (proposed, Section 3.2.3) memory layouts.
//! * [`interp`] — bilinear sub-pixel interpolation (paper Algorithm 3).
//! * [`phantom`] — analytic ellipsoid phantoms (3D Shepp-Logan) used to
//!   generate synthetic projections, standing in for the RTK
//!   forward-projection tool used by the paper's evaluation (Section 5.1).
//! * [`forward`] — exact (closed-form) and numeric (ray-marching) cone-beam
//!   forward projectors.
//! * [`metrics`] — RMSE/GUPS/PSNR, matching the paper's Section 2.3
//!   definitions.
//!
//! Data is `f32` end-to-end (the paper uses single precision throughout,
//! Section 5.1); geometric computations are `f64` and cast late.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod forward;
pub mod geometry;
pub mod interp;
pub mod io;
pub mod math;
pub mod metrics;
pub mod noise;
pub mod phantom;
pub mod problem;
pub mod projection;
pub mod stats;
pub mod volume;

pub use error::{CtError, Result};
pub use geometry::{CbctGeometry, ProjectionMatrix};
pub use problem::{Dims2, Dims3, ReconProblem};
pub use projection::{ProjectionImage, ProjectionStack};
pub use volume::{Volume, VolumeLayout};
