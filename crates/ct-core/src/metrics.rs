//! Quality and performance metrics used throughout the evaluation.
//!
//! * [`gups`] — the paper's Section 2.3 performance metric:
//!   `GUPS = Nx*Ny*Nz*Np / (T * 2^30)` giga-updates per second.
//! * [`rmse`] — the paper verifies its output against RTK's CPU
//!   reconstruction with RMSE < 1e-5 (Section 5.1).

use crate::error::{CtError, Result};

/// Root-mean-square error between two equally-sized buffers.
pub fn rmse(a: &[f32], b: &[f32]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(CtError::ShapeMismatch {
            expected: format!("{} elements", a.len()),
            actual: format!("{} elements", b.len()),
        });
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    Ok((sum / a.len() as f64).sqrt())
}

/// RMSE normalised by the peak magnitude of the reference (`a`), giving a
/// scale-free error measure.
pub fn nrmse(a: &[f32], b: &[f32]) -> Result<f64> {
    let e = rmse(a, b)?;
    let peak = a.iter().fold(0.0f32, |m, &v| m.max(v.abs())) as f64;
    if peak == 0.0 {
        return Ok(e);
    }
    Ok(e / peak)
}

/// Peak signal-to-noise ratio in dB relative to the reference `a`.
pub fn psnr(a: &[f32], b: &[f32]) -> Result<f64> {
    let e = rmse(a, b)?;
    let peak = a.iter().fold(0.0f32, |m, &v| m.max(v.abs())) as f64;
    if e == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(20.0 * (peak / e).log10())
}

/// Maximum absolute difference between two buffers.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(CtError::ShapeMismatch {
            expected: format!("{} elements", a.len()),
            actual: format!("{} elements", b.len()),
        });
    }
    Ok(a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max))
}

/// The paper's GUPS metric (Section 2.3):
/// `GUPS = (Nx*Ny*Nz*Np) / (T * 2^30)`.
///
/// `updates` is `Nx*Ny*Nz*Np` (see
/// [`crate::problem::ReconProblem::updates`]) and `seconds` the execution
/// time.
pub fn gups(updates: u128, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    updates as f64 / (seconds * (1u64 << 30) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_zero_for_identical() {
        let a = vec![1.0f32, -2.0, 3.0];
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let a = vec![0.0f32, 0.0, 0.0, 0.0];
        let b = vec![1.0f32, 1.0, 1.0, 1.0];
        assert!((rmse(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let b = vec![2.0f32, 0.0, 0.0, 0.0];
        assert!((rmse(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_rejects_mismatched_lengths() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn rmse_empty_is_zero() {
        assert_eq!(rmse(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn nrmse_is_scale_free() {
        let a = vec![10.0f32, 0.0];
        let b = vec![11.0f32, 0.0];
        let a2: Vec<f32> = a.iter().map(|x| x * 100.0).collect();
        let b2: Vec<f32> = b.iter().map(|x| x * 100.0).collect();
        let e1 = nrmse(&a, &b).unwrap();
        let e2 = nrmse(&a2, &b2).unwrap();
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn psnr_infinite_when_equal() {
        let a = vec![1.0f32, 2.0];
        assert!(psnr(&a, &a).unwrap().is_infinite());
        let b = vec![1.0f32, 2.1];
        assert!(psnr(&a, &b).unwrap() > 20.0);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        let a = vec![1.0f32, 5.0, -3.0];
        let b = vec![1.5f32, 5.0, -7.0];
        assert!((max_abs_diff(&a, &b).unwrap() - 4.0).abs() < 1e-12);
        assert!(max_abs_diff(&a, &b[..2]).is_err());
    }

    #[test]
    fn gups_matches_paper_example() {
        // Paper Section 5.3.3: the single-GPU kernel reaches ~200 GUPS.
        // With a 1k^3 volume and 1k projections in 5.37 s:
        // 1024^3 * 1024 / (5.37 * 2^30) = 1024^4 / 2^30 / 5.37 ~ 190.9
        let updates = 1024u128.pow(4);
        let g = gups(updates, 5.37);
        assert!((g - 1024.0 * 1024.0 / 5.37 / 1024.0).abs() < 1e-9);
        assert!(gups(updates, 0.0).is_infinite());
    }
}
