//! Analytic ellipsoid phantoms.
//!
//! The paper's evaluation generates projections of the standard Shepp-Logan
//! phantom with RTK's forward-projection tool (Section 5.1). We carry the
//! phantom analytically — as a sum of ellipsoids — which gives us *exact*
//! line integrals (see [`crate::forward`]) and an exact voxelisation to
//! verify reconstructions against.

use crate::math::Vec3;
use crate::problem::Dims3;
use crate::volume::{Volume, VolumeLayout};

/// A single ellipsoid: semi-axes `(a, b, c)`, centre, rotation `phi` about
/// the Z axis, and an *additive* density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipsoid {
    /// Additive density (Hounsfield-like arbitrary units).
    pub density: f64,
    /// Semi-axis along (rotated) X.
    pub a: f64,
    /// Semi-axis along (rotated) Y.
    pub b: f64,
    /// Semi-axis along Z.
    pub c: f64,
    /// Centre in world coordinates.
    pub center: Vec3,
    /// Rotation about Z (radians).
    pub phi: f64,
}

impl Ellipsoid {
    /// True if the world point lies strictly inside the ellipsoid.
    pub fn contains(&self, p: Vec3) -> bool {
        let q = self.to_local(p);
        q.norm_sq() < 1.0
    }

    /// Transform a world point into the ellipsoid's unit-sphere frame.
    #[inline]
    pub fn to_local(&self, p: Vec3) -> Vec3 {
        let d = p - self.center;
        let (s, c) = self.phi.sin_cos();
        // Rotate by -phi about Z, then scale to the unit sphere.
        let x = c * d.x + s * d.y;
        let y = -s * d.x + c * d.y;
        Vec3::new(x / self.a, y / self.b, d.z / self.c)
    }

    /// Transform a world *direction* into the unit-sphere frame (no
    /// translation).
    #[inline]
    pub fn dir_local(&self, d: Vec3) -> Vec3 {
        let (s, c) = self.phi.sin_cos();
        let x = c * d.x + s * d.y;
        let y = -s * d.x + c * d.y;
        Vec3::new(x / self.a, y / self.b, d.z / self.c)
    }

    /// Exact chord length of the ray `origin + t*dir` (with `dir` a *unit*
    /// world vector) through this ellipsoid, in world units.
    pub fn chord_length(&self, origin: Vec3, dir: Vec3) -> f64 {
        let o = self.to_local(origin);
        let d = self.dir_local(dir);
        // |o + t d|^2 = 1  =>  (d.d) t^2 + 2 (o.d) t + (o.o - 1) = 0
        let a = d.norm_sq();
        let b = 2.0 * o.dot(d);
        let c = o.norm_sq() - 1.0;
        let disc = b * b - 4.0 * a * c;
        if disc <= 0.0 || a == 0.0 {
            return 0.0;
        }
        // Roots differ by sqrt(disc)/a; t is world arc length because dir
        // is unit length in world space and the map is linear.
        disc.sqrt() / a
    }
}

/// A phantom: a list of additive ellipsoids.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Phantom {
    /// The ellipsoids, summed where they overlap.
    pub ellipsoids: Vec<Ellipsoid>,
}

impl Phantom {
    /// The classic 10-ellipsoid 3D Shepp-Logan head phantom (Kak & Slaney
    /// parameterisation), scaled so the outer skull ellipsoid has semi-axis
    /// `scale` along its largest direction. `scale` is in world (mm) units
    /// and should be at most the half-extent of the reconstructed volume.
    pub fn shepp_logan(scale: f64) -> Self {
        // Rows: density, a, b, c, x0, y0, z0, phi_degrees — normalised to
        // the unit sphere.
        const ROWS: [[f64; 8]; 10] = [
            [2.00, 0.6900, 0.920, 0.810, 0.00, 0.0000, 0.00, 0.0],
            [-0.98, 0.6624, 0.874, 0.780, 0.00, -0.0184, 0.00, 0.0],
            [-0.02, 0.1100, 0.310, 0.220, 0.22, 0.0000, 0.00, -18.0],
            [-0.02, 0.1600, 0.410, 0.280, -0.22, 0.0000, 0.00, 18.0],
            [0.01, 0.2100, 0.250, 0.410, 0.00, 0.3500, -0.15, 0.0],
            [0.01, 0.0460, 0.046, 0.050, 0.00, 0.1000, 0.25, 0.0],
            [0.01, 0.0460, 0.046, 0.050, 0.00, -0.1000, 0.25, 0.0],
            [0.01, 0.0460, 0.023, 0.050, -0.08, -0.6050, 0.00, 0.0],
            [0.01, 0.0230, 0.023, 0.020, 0.00, -0.6060, 0.00, 0.0],
            [0.01, 0.0230, 0.046, 0.020, 0.06, -0.6050, 0.00, 0.0],
        ];
        let ellipsoids = ROWS
            .iter()
            .map(|r| Ellipsoid {
                density: r[0],
                a: r[1] * scale,
                b: r[2] * scale,
                c: r[3] * scale,
                center: Vec3::new(r[4] * scale, r[5] * scale, r[6] * scale),
                phi: r[7].to_radians(),
            })
            .collect();
        Self { ellipsoids }
    }

    /// A single uniform sphere of radius `r` and density 1 at the origin —
    /// the simplest possible calibration phantom.
    pub fn uniform_sphere(r: f64) -> Self {
        Self {
            ellipsoids: vec![Ellipsoid {
                density: 1.0,
                a: r,
                b: r,
                c: r,
                center: Vec3::ZERO,
                phi: 0.0,
            }],
        }
    }

    /// An industrial-inspection style phantom: a solid cylinder-ish block
    /// (modelled as a flat ellipsoid) with `n_defects` small low-density
    /// "pores" placed on a helix — the kind of object the paper's
    /// discussion (Section 6.1) targets with micro-CT.
    pub fn casting_with_defects(scale: f64, n_defects: usize) -> Self {
        let mut ellipsoids = vec![Ellipsoid {
            density: 1.0,
            a: 0.8 * scale,
            b: 0.8 * scale,
            c: 0.7 * scale,
            center: Vec3::ZERO,
            phi: 0.0,
        }];
        for t in 0..n_defects {
            let frac = t as f64 / n_defects.max(1) as f64;
            let ang = frac * std::f64::consts::TAU * 2.0;
            let r = 0.45 * scale;
            ellipsoids.push(Ellipsoid {
                // Negative density: a void in the casting. Sized a few
                // voxels across at the default geometries so finite
                // angular sampling cannot blur it away.
                density: -0.8,
                a: 0.11 * scale,
                b: 0.09 * scale,
                c: 0.12 * scale,
                // The helix stays safely inside the body ellipsoid: at
                // radius 0.45*scale, z must remain well below the local
                // surface height.
                center: Vec3::new(r * ang.cos(), r * ang.sin(), (frac - 0.5) * 0.6 * scale),
                phi: ang,
            });
        }
        Self { ellipsoids }
    }

    /// Density at a world point (sum of containing ellipsoids).
    pub fn density_at(&self, p: Vec3) -> f64 {
        self.ellipsoids
            .iter()
            .filter(|e| e.contains(p))
            .map(|e| e.density)
            .sum()
    }

    /// Exact line integral along the ray `origin + t*dir` (`dir` unit).
    pub fn line_integral(&self, origin: Vec3, dir: Vec3) -> f64 {
        self.ellipsoids
            .iter()
            .map(|e| e.density * e.chord_length(origin, dir))
            .sum()
    }

    /// Voxelise into a volume using the geometry's voxel-centre positions.
    ///
    /// `voxel_pos` maps `(i, j, k)` to world coordinates; pass
    /// [`crate::geometry::CbctGeometry::voxel_position`].
    pub fn voxelize<F>(&self, dims: Dims3, layout: VolumeLayout, voxel_pos: F) -> Volume
    where
        F: Fn(usize, usize, usize) -> Vec3,
    {
        let mut vol = Volume::zeros(dims, layout);
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    vol.set(i, j, k, self.density_at(voxel_pos(i, j, k)) as f32);
                }
            }
        }
        vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_chord_through_center_is_diameter() {
        let e = Ellipsoid {
            density: 1.0,
            a: 2.0,
            b: 2.0,
            c: 2.0,
            center: Vec3::ZERO,
            phi: 0.0,
        };
        let l = e.chord_length(Vec3::new(-10.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!((l - 4.0).abs() < 1e-12);
    }

    #[test]
    fn chord_misses_return_zero() {
        let e = Ellipsoid {
            density: 1.0,
            a: 1.0,
            b: 1.0,
            c: 1.0,
            center: Vec3::ZERO,
            phi: 0.0,
        };
        let l = e.chord_length(Vec3::new(-10.0, 5.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(l, 0.0);
        // Tangent ray also integrates to ~zero.
        let l = e.chord_length(Vec3::new(-10.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(l < 1e-6);
    }

    #[test]
    fn off_center_chord_matches_analytic() {
        // Sphere radius 2, ray at impact parameter 1: half-chord =
        // sqrt(4 - 1), chord = 2*sqrt(3).
        let e = Ellipsoid {
            density: 1.0,
            a: 2.0,
            b: 2.0,
            c: 2.0,
            center: Vec3::ZERO,
            phi: 0.0,
        };
        let l = e.chord_length(Vec3::new(-10.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!((l - 2.0 * 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rotated_ellipsoid_chord_is_rotation_invariant() {
        // Rotating both the ellipsoid and the ray about Z must not change
        // the chord.
        let base = Ellipsoid {
            density: 1.0,
            a: 3.0,
            b: 1.0,
            c: 1.0,
            center: Vec3::new(0.5, -0.25, 0.1),
            phi: 0.0,
        };
        let l0 = base.chord_length(Vec3::new(-10.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let ang = 0.7f64;
        let (s, c) = ang.sin_cos();
        let rot = |p: Vec3| Vec3::new(c * p.x - s * p.y, s * p.x + c * p.y, p.z);
        let rotated = Ellipsoid {
            phi: ang,
            center: rot(base.center),
            ..base
        };
        let l1 = rotated.chord_length(
            rot(Vec3::new(-10.0, 0.0, 0.0)),
            rot(Vec3::new(1.0, 0.0, 0.0)),
        );
        assert!((l0 - l1).abs() < 1e-10, "{l0} vs {l1}");
    }

    #[test]
    fn shepp_logan_density_ranges() {
        let p = Phantom::shepp_logan(1.0);
        assert_eq!(p.ellipsoids.len(), 10);
        // Centre of the head: skull (2.0) + brain (-0.98) + left/right
        // ventricles do not cover the exact centre... density there is
        // 2.0 - 0.98 = 1.02.
        let c = p.density_at(Vec3::ZERO);
        assert!((c - 1.02).abs() < 1e-12, "centre density {c}");
        // Outside the skull: zero.
        assert_eq!(p.density_at(Vec3::new(2.0, 0.0, 0.0)), 0.0);
        // Inside the skull shell only: 2.0.
        let shell = p.density_at(Vec3::new(0.0, 0.90 * 0.999, 0.0));
        assert!((shell - 2.0).abs() < 1e-12, "shell density {shell}");
    }

    #[test]
    fn line_integral_is_additive() {
        let p = Phantom::uniform_sphere(1.0);
        let two = Phantom {
            ellipsoids: vec![p.ellipsoids[0], p.ellipsoids[0]],
        };
        let o = Vec3::new(-5.0, 0.3, 0.1);
        let d = Vec3::new(1.0, 0.0, 0.0);
        assert!((two.line_integral(o, d) - 2.0 * p.line_integral(o, d)).abs() < 1e-12);
    }

    #[test]
    fn voxelize_matches_density_at() {
        let p = Phantom::uniform_sphere(1.5);
        let dims = Dims3::cube(8);
        let pos = |i: usize, j: usize, k: usize| {
            Vec3::new(i as f64 - 3.5, j as f64 - 3.5, k as f64 - 3.5)
        };
        let vol = p.voxelize(dims, VolumeLayout::IMajor, pos);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    assert_eq!(vol.get(i, j, k), p.density_at(pos(i, j, k)) as f32);
                }
            }
        }
        // The centre voxels are inside.
        assert_eq!(vol.get(3, 3, 3), 1.0);
        assert_eq!(vol.get(0, 0, 0), 0.0);
    }

    #[test]
    fn casting_phantom_has_defects() {
        let p = Phantom::casting_with_defects(10.0, 5);
        assert_eq!(p.ellipsoids.len(), 6);
        // Bulk density inside the block away from defects.
        assert!((p.density_at(Vec3::new(0.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        // A defect centre has reduced density.
        let defect = p.ellipsoids[1].center;
        assert!(p.density_at(defect) < 0.5);
    }
}
