//! Transmission noise model for synthetic projections.
//!
//! Real detectors count photons: for incident flux `I0` and line integral
//! `p`, the detected count is Poisson with mean `I0 * exp(-p)`, and the
//! measured line integral is `-ln(N / I0)`. The filtering stage's window
//! choice (Section 2.2.2: "the shape of the Framp filter deeply affects
//! the final image quality") only becomes *visible* under this noise —
//! the soft windows buy noise suppression with resolution — so the test
//! suite and the examples use this model to make the trade-off
//! measurable.

use crate::projection::{ProjectionImage, ProjectionStack};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Photon-counting noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Incident photons per detector pixel (`I0`); larger = cleaner.
    pub i0: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl NoiseModel {
    /// A typical micro-CT exposure.
    pub fn typical() -> Self {
        Self {
            i0: 1.0e5,
            seed: 0x1FDC_0FFE,
        }
    }

    /// Apply the model to one projection of line integrals, in place.
    pub fn apply_image(&self, img: &mut ProjectionImage, rng: &mut StdRng) {
        for p in img.data_mut() {
            let mean = self.i0 * (-(*p as f64)).exp();
            let n = sample_poisson(rng, mean).max(1.0);
            *p = -(n / self.i0).ln() as f32;
        }
    }

    /// Apply the model to a whole stack, returning the noisy copy.
    pub fn apply(&self, stack: &ProjectionStack) -> ProjectionStack {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = stack.clone();
        for img in out.iter_mut() {
            self.apply_image(img, &mut rng);
        }
        out
    }
}

/// Poisson sampling: Knuth's product method for small means, normal
/// approximation above 50 (detector counts are typically 1e3-1e6, where
/// the approximation error is far below the quantisation).
fn sample_poisson(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    if mean < 50.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k as f64;
            }
            k += 1;
        }
    }
    // Box-Muller normal approximation N(mean, mean).
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + z * mean.sqrt()).round().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Dims2;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        for &mean in &[3.0f64, 20.0, 500.0] {
            let n = 4000;
            let samples: Vec<f64> = (0..n).map(|_| sample_poisson(&mut rng, mean)).collect();
            let m: f64 = samples.iter().sum::<f64>() / n as f64;
            let var: f64 = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / (n - 1) as f64;
            assert!((m - mean).abs() < 0.1 * mean, "mean {m} vs {mean}");
            assert!((var - mean).abs() < 0.2 * mean, "var {var} vs {mean}");
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn noise_is_reproducible() {
        let mut img = ProjectionImage::zeros(Dims2::new(16, 16));
        img.data_mut().iter_mut().for_each(|p| *p = 1.0);
        let stack = ProjectionStack::from_images(Dims2::new(16, 16), vec![img]).unwrap();
        let model = NoiseModel::typical();
        assert_eq!(model.apply(&stack), model.apply(&stack));
    }

    #[test]
    fn noise_is_unbiased_and_scales_with_exposure() {
        let mut img = ProjectionImage::zeros(Dims2::new(64, 64));
        img.data_mut().iter_mut().for_each(|p| *p = 2.0);
        let stack = ProjectionStack::from_images(Dims2::new(64, 64), vec![img]).unwrap();

        let spread = |i0: f64| -> (f64, f64) {
            let noisy = NoiseModel { i0, seed: 7 }.apply(&stack);
            let data = noisy.get(0).data();
            let m = data.iter().map(|&x| x as f64).sum::<f64>() / data.len() as f64;
            let v = data
                .iter()
                .map(|&x| (x as f64 - m) * (x as f64 - m))
                .sum::<f64>()
                / data.len() as f64;
            (m, v)
        };
        let (m_hi, v_hi) = spread(1.0e6);
        let (m_lo, v_lo) = spread(1.0e3);
        // Unbiased around the true integral 2.0.
        assert!((m_hi - 2.0).abs() < 0.01, "{m_hi}");
        assert!((m_lo - 2.0).abs() < 0.1, "{m_lo}");
        // More photons, less variance.
        assert!(v_hi < v_lo / 10.0, "v_hi {v_hi} v_lo {v_lo}");
    }

    #[test]
    fn zero_counts_are_clamped() {
        // A huge line integral drives the expected count to ~0; the
        // clamped measurement stays finite.
        let mut img = ProjectionImage::zeros(Dims2::new(4, 4));
        img.data_mut().iter_mut().for_each(|p| *p = 50.0);
        let stack = ProjectionStack::from_images(Dims2::new(4, 4), vec![img]).unwrap();
        let noisy = NoiseModel { i0: 100.0, seed: 1 }.apply(&stack);
        assert!(noisy.get(0).data().iter().all(|p| p.is_finite()));
    }
}
