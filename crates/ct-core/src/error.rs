//! Error type shared by the iFDK-rs crates that build on `ct-core`.

use std::fmt;

/// Errors produced while setting up or running a reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtError {
    /// A dimension was zero or otherwise unusable.
    InvalidDimension {
        /// Name of the offending parameter (e.g. `"Nx"`).
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Two containers that must agree in shape do not.
    ShapeMismatch {
        /// Expected shape, formatted.
        expected: String,
        /// Actual shape, formatted.
        actual: String,
    },
    /// A geometry parameter is physically meaningless (e.g. `d <= 0`).
    InvalidGeometry(String),
    /// A configuration value is out of its allowed range.
    InvalidConfig(String),
    /// An index was out of bounds.
    OutOfBounds {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
}

impl fmt::Display for CtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtError::InvalidDimension { what, detail } => {
                write!(f, "invalid dimension {what}: {detail}")
            }
            CtError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            CtError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            CtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CtError::OutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound})")
            }
        }
    }
}

impl std::error::Error for CtError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, CtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CtError::InvalidDimension {
            what: "Nx",
            detail: "must be nonzero".into(),
        };
        assert!(e.to_string().contains("Nx"));

        let e = CtError::ShapeMismatch {
            expected: "512x512".into(),
            actual: "256x256".into(),
        };
        assert!(e.to_string().contains("512x512"));
        assert!(e.to_string().contains("256x256"));

        let e = CtError::OutOfBounds {
            what: "projection",
            index: 9,
            bound: 8,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtError>();
    }
}
