//! Image and volume export — the inspection path of the paper's
//! evaluation ("we use the image processing tool ImageJ to render the
//! generated 3D volumes", Section 5.1).
//!
//! * [`write_pgm`] — 8-bit PGM slice images (openable anywhere).
//! * [`write_mhd_volume`] — ITK MetaImage (`.mhd` header + `.raw` f32
//!   payload), the interchange format RTK/ImageJ read directly.
//! * [`read_raw_volume`] — load the `.raw` payload back.

use crate::error::{CtError, Result};
use crate::problem::Dims3;
use crate::volume::{Volume, VolumeLayout};
use std::io::Write;
use std::path::Path;

/// Write a 2D buffer (row-major, `width` columns) as an 8-bit binary PGM,
/// windowed to `[lo, hi]` (pass `None` to auto-window to the data range).
pub fn write_pgm(
    path: &Path,
    data: &[f32],
    width: usize,
    window: Option<(f32, f32)>,
) -> Result<()> {
    if width == 0 || !data.len().is_multiple_of(width) {
        return Err(CtError::InvalidDimension {
            what: "width",
            detail: format!("{} pixels don't form rows of {width}", data.len()),
        });
    }
    let height = data.len() / width;
    let (lo, hi) = window.unwrap_or_else(|| {
        data.iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            })
    });
    let range = (hi - lo).max(1e-12);
    let mut out = Vec::with_capacity(data.len() + 64);
    out.extend_from_slice(format!("P5\n{width} {height}\n255\n").as_bytes());
    for &v in data {
        let t = ((v - lo) / range).clamp(0.0, 1.0);
        out.push((t * 255.0).round() as u8);
    }
    write_file(path, &out)
}

/// Write a volume as an ITK MetaImage: `<stem>.mhd` text header plus
/// `<stem>.raw` little-endian f32 payload in i-major (x-fastest) order.
pub fn write_mhd_volume(stem: &Path, vol: &Volume, spacing: [f64; 3]) -> Result<()> {
    let dims = vol.dims();
    let raw_name = stem
        .file_name()
        .map(|n| format!("{}.raw", n.to_string_lossy()))
        .ok_or_else(|| CtError::InvalidConfig("stem has no file name".into()))?;
    let header = format!(
        "ObjectType = Image\n\
         NDims = 3\n\
         BinaryData = True\n\
         BinaryDataByteOrderMSB = False\n\
         CompressedData = False\n\
         TransformMatrix = 1 0 0 0 1 0 0 0 1\n\
         Offset = 0 0 0\n\
         ElementSpacing = {} {} {}\n\
         DimSize = {} {} {}\n\
         ElementType = MET_FLOAT\n\
         ElementDataFile = {raw_name}\n",
        spacing[0], spacing[1], spacing[2], dims.nx, dims.ny, dims.nz,
    );
    write_file(&stem.with_extension("mhd"), header.as_bytes())?;

    // MetaImage expects x-fastest: the i-major layout verbatim.
    let imajor;
    let data: &[f32] = match vol.layout() {
        VolumeLayout::IMajor => vol.data(),
        VolumeLayout::KMajor => {
            imajor = vol.clone().into_layout(VolumeLayout::IMajor);
            imajor.data()
        }
    };
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for &v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    write_file(&stem.with_extension("raw"), &bytes)
}

/// Read a `.raw` f32 payload written by [`write_mhd_volume`] back into an
/// i-major volume of the given dims.
pub fn read_raw_volume(path: &Path, dims: Dims3) -> Result<Volume> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    if bytes.len() != dims.len() * 4 {
        return Err(CtError::ShapeMismatch {
            expected: format!("{} bytes", dims.len() * 4),
            actual: format!("{}", bytes.len()),
        });
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Volume::from_vec(dims, VolumeLayout::IMajor, data)
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
    }
    let mut f = std::fs::File::create(path).map_err(io_err)?;
    f.write_all(bytes).map_err(io_err)
}

fn io_err(e: std::io::Error) -> CtError {
    CtError::InvalidConfig(format!("io error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ct_io_{}_{}", std::process::id(), name))
    }

    #[test]
    fn pgm_header_and_payload() {
        let p = tmp("a.pgm");
        write_pgm(&p, &[0.0, 0.5, 1.0, 0.25], 2, Some((0.0, 1.0))).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        let pix = &bytes[bytes.len() - 4..];
        assert_eq!(pix[0], 0);
        assert_eq!(pix[1], 128);
        assert_eq!(pix[2], 255);
        assert_eq!(pix[3], 64);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn pgm_auto_window() {
        let p = tmp("b.pgm");
        write_pgm(&p, &[10.0, 20.0], 2, None).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert_eq!(bytes[bytes.len() - 2], 0);
        assert_eq!(bytes[bytes.len() - 1], 255);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn pgm_rejects_ragged() {
        assert!(write_pgm(&tmp("c.pgm"), &[0.0; 5], 2, None).is_err());
        assert!(write_pgm(&tmp("d.pgm"), &[0.0; 4], 0, None).is_err());
    }

    #[test]
    fn mhd_round_trip_both_layouts() {
        for layout in [VolumeLayout::IMajor, VolumeLayout::KMajor] {
            let dims = Dims3::new(3, 4, 2);
            let mut vol = Volume::zeros(dims, layout);
            for i in 0..3 {
                for j in 0..4 {
                    for k in 0..2 {
                        vol.set(i, j, k, (i * 100 + j * 10 + k) as f32);
                    }
                }
            }
            let stem = tmp(&format!("vol_{layout:?}"));
            write_mhd_volume(&stem, &vol, [1.0, 1.0, 2.0]).unwrap();
            let header = std::fs::read_to_string(stem.with_extension("mhd")).unwrap();
            assert!(header.contains("DimSize = 3 4 2"));
            assert!(header.contains("ElementSpacing = 1 1 2"));
            let back = read_raw_volume(&stem.with_extension("raw"), dims).unwrap();
            let want = vol.clone().into_layout(VolumeLayout::IMajor);
            assert_eq!(back, want);
            std::fs::remove_file(stem.with_extension("mhd")).unwrap();
            std::fs::remove_file(stem.with_extension("raw")).unwrap();
        }
    }

    #[test]
    fn read_raw_checks_size() {
        let stem = tmp("short");
        std::fs::write(stem.with_extension("raw"), [0u8; 8]).unwrap();
        assert!(read_raw_volume(&stem.with_extension("raw"), Dims3::cube(4)).is_err());
        std::fs::remove_file(stem.with_extension("raw")).unwrap();
    }
}
