//! 3D volume container with the two memory layouts the paper contrasts.
//!
//! * [`VolumeLayout::IMajor`] — the "original" layout of Algorithm 2 /
//!   Figure 1b: `i` is the fastest-varying index
//!   (`idx = (k*Ny + j)*Nx + i`).
//! * [`VolumeLayout::KMajor`] — the proposed layout of Section 3.2.3 /
//!   Algorithm 4: `k` is fastest (`idx = (i*Ny + j)*Nz + k`), making the
//!   inner z-loop of the proposed kernel walk contiguous memory.
//!
//! Algorithm 4 line 22 (`I <- reshape(I~)`) is [`Volume::into_layout`].

use crate::error::{CtError, Result};
use crate::problem::Dims3;

/// Memory layout of a [`Volume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VolumeLayout {
    /// `i` fastest: `idx = (k*Ny + j)*Nx + i` (standard, Algorithm 2).
    IMajor,
    /// `k` fastest: `idx = (i*Ny + j)*Nz + k` (proposed, Algorithm 4).
    KMajor,
}

/// A dense 3D volume of `f32` voxels.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume {
    dims: Dims3,
    layout: VolumeLayout,
    data: Vec<f32>,
}

impl Volume {
    /// Allocate a zero-initialised volume.
    pub fn zeros(dims: Dims3, layout: VolumeLayout) -> Self {
        Self {
            dims,
            layout,
            // analyze: allow(alloc, reason = "constructor: one output-volume allocation per tile/run, amortized across the whole sweep")
            data: vec![0.0; dims.len()],
        }
    }

    /// Wrap an existing buffer. Fails if the length does not match.
    pub fn from_vec(dims: Dims3, layout: VolumeLayout, data: Vec<f32>) -> Result<Self> {
        if data.len() != dims.len() {
            return Err(CtError::ShapeMismatch {
                expected: format!("{} voxels", dims.len()),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Self { dims, layout, data })
    }

    /// Volume dimensions.
    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Current memory layout.
    #[inline]
    pub fn layout(&self) -> VolumeLayout {
        self.layout
    }

    /// Raw data slice in the current layout.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice in the current layout.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Linear index of voxel `(i, j, k)` under the current layout.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims.nx && j < self.dims.ny && k < self.dims.nz);
        match self.layout {
            VolumeLayout::IMajor => (k * self.dims.ny + j) * self.dims.nx + i,
            VolumeLayout::KMajor => (i * self.dims.ny + j) * self.dims.nz + k,
        }
    }

    /// Read voxel `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        self.data[self.index(i, j, k)]
    }

    /// Write voxel `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f32) {
        let idx = self.index(i, j, k);
        self.data[idx] = v;
    }

    /// Accumulate into voxel `(i, j, k)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, k: usize, v: f32) {
        let idx = self.index(i, j, k);
        self.data[idx] += v;
    }

    /// Convert to the requested layout, physically permuting the buffer if
    /// needed — the `reshape` of Algorithm 4 line 22.
    pub fn into_layout(self, layout: VolumeLayout) -> Volume {
        if self.layout == layout {
            return self;
        }
        let dims = self.dims;
        let mut out = Volume::zeros(dims, layout);
        // Walk the destination in storage order for write locality.
        match layout {
            VolumeLayout::IMajor => {
                let mut idx = 0;
                for k in 0..dims.nz {
                    for j in 0..dims.ny {
                        for i in 0..dims.nx {
                            out.data[idx] = self.get(i, j, k);
                            idx += 1;
                        }
                    }
                }
            }
            VolumeLayout::KMajor => {
                let mut idx = 0;
                for i in 0..dims.nx {
                    for j in 0..dims.ny {
                        for k in 0..dims.nz {
                            out.data[idx] = self.get(i, j, k);
                            idx += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// Extract the z-slab `k in [k0, k1)` as a new volume with the same
    /// layout. This is the unit of output decomposition in the distributed
    /// framework (each row of ranks owns a slab, Section 4.1.1).
    pub fn slab(&self, k0: usize, k1: usize) -> Result<Volume> {
        if k0 >= k1 || k1 > self.dims.nz {
            return Err(CtError::OutOfBounds {
                what: "z-slab",
                index: k1,
                bound: self.dims.nz + 1,
            });
        }
        let dims = Dims3::new(self.dims.nx, self.dims.ny, k1 - k0);
        let mut out = Volume::zeros(dims, self.layout);
        for k in k0..k1 {
            for j in 0..self.dims.ny {
                for i in 0..self.dims.nx {
                    out.set(i, j, k - k0, self.get(i, j, k));
                }
            }
        }
        Ok(out)
    }

    /// Paste `slab` into `self` starting at z index `k0`.
    pub fn set_slab(&mut self, k0: usize, slab: &Volume) -> Result<()> {
        let sd = slab.dims();
        if sd.nx != self.dims.nx || sd.ny != self.dims.ny || k0 + sd.nz > self.dims.nz {
            return Err(CtError::ShapeMismatch {
                expected: format!("<= {}x{}x{}", self.dims.nx, self.dims.ny, self.dims.nz - k0),
                actual: format!("{}x{}x{}", sd.nx, sd.ny, sd.nz),
            });
        }
        for k in 0..sd.nz {
            for j in 0..sd.ny {
                for i in 0..sd.nx {
                    self.set(i, j, k0 + k, slab.get(i, j, k));
                }
            }
        }
        Ok(())
    }

    /// The xy-slice at height `k`, as a fresh row-major (`i` fastest)
    /// buffer — the unit the framework stores to the PFS ("the volume ...
    /// is stored as slices of number Nz", Section 4.1.3).
    pub fn slice_xy(&self, k: usize) -> Result<Vec<f32>> {
        if k >= self.dims.nz {
            return Err(CtError::OutOfBounds {
                what: "slice",
                index: k,
                bound: self.dims.nz,
            });
        }
        let mut out = Vec::with_capacity(self.dims.nx * self.dims.ny);
        match self.layout {
            VolumeLayout::IMajor => {
                let base = k * self.dims.ny * self.dims.nx;
                out.extend_from_slice(&self.data[base..base + self.dims.ny * self.dims.nx]);
            }
            VolumeLayout::KMajor => {
                for j in 0..self.dims.ny {
                    for i in 0..self.dims.nx {
                        out.push(self.get(i, j, k));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum with another volume of identical shape and layout —
    /// the local operation inside the framework's `MPI_Reduce` step.
    pub fn accumulate(&mut self, other: &Volume) -> Result<()> {
        if self.dims != other.dims || self.layout != other.layout {
            return Err(CtError::ShapeMismatch {
                expected: format!("{:?}/{:?}", self.dims, self.layout),
                actual: format!("{:?}/{:?}", other.dims, other.layout),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Scale every voxel by `s` (used for the FDK angular weighting).
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute voxel value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips_both_layouts() {
        for layout in [VolumeLayout::IMajor, VolumeLayout::KMajor] {
            let dims = Dims3::new(3, 4, 5);
            let mut v = Volume::zeros(dims, layout);
            let mut val = 0.0;
            for i in 0..3 {
                for j in 0..4 {
                    for k in 0..5 {
                        v.set(i, j, k, val);
                        val += 1.0;
                    }
                }
            }
            let mut val = 0.0;
            for i in 0..3 {
                for j in 0..4 {
                    for k in 0..5 {
                        assert_eq!(v.get(i, j, k), val);
                        val += 1.0;
                    }
                }
            }
        }
    }

    #[test]
    fn imajor_index_is_contiguous_in_i() {
        let v = Volume::zeros(Dims3::new(4, 3, 2), VolumeLayout::IMajor);
        assert_eq!(v.index(1, 0, 0) - v.index(0, 0, 0), 1);
        assert_eq!(v.index(0, 1, 0) - v.index(0, 0, 0), 4);
        assert_eq!(v.index(0, 0, 1) - v.index(0, 0, 0), 12);
    }

    #[test]
    fn kmajor_index_is_contiguous_in_k() {
        let v = Volume::zeros(Dims3::new(4, 3, 2), VolumeLayout::KMajor);
        assert_eq!(v.index(0, 0, 1) - v.index(0, 0, 0), 1);
        assert_eq!(v.index(0, 1, 0) - v.index(0, 0, 0), 2);
        assert_eq!(v.index(1, 0, 0) - v.index(0, 0, 0), 6);
    }

    #[test]
    fn layout_conversion_preserves_values() {
        let dims = Dims3::new(5, 4, 3);
        let mut v = Volume::zeros(dims, VolumeLayout::KMajor);
        for i in 0..5 {
            for j in 0..4 {
                for k in 0..3 {
                    v.set(i, j, k, (100 * i + 10 * j + k) as f32);
                }
            }
        }
        let w = v.clone().into_layout(VolumeLayout::IMajor);
        for i in 0..5 {
            for j in 0..4 {
                for k in 0..3 {
                    assert_eq!(w.get(i, j, k), v.get(i, j, k));
                }
            }
        }
        // Round trip is the identity.
        let back = w.into_layout(VolumeLayout::KMajor);
        assert_eq!(back, v);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Volume::from_vec(Dims3::cube(2), VolumeLayout::IMajor, vec![0.0; 7]).is_err());
        assert!(Volume::from_vec(Dims3::cube(2), VolumeLayout::IMajor, vec![0.0; 8]).is_ok());
    }

    #[test]
    fn slab_extract_and_paste() {
        let dims = Dims3::new(2, 2, 4);
        let mut v = Volume::zeros(dims, VolumeLayout::IMajor);
        for k in 0..4 {
            for j in 0..2 {
                for i in 0..2 {
                    v.set(i, j, k, k as f32);
                }
            }
        }
        let s = v.slab(1, 3).unwrap();
        assert_eq!(s.dims(), Dims3::new(2, 2, 2));
        assert_eq!(s.get(0, 0, 0), 1.0);
        assert_eq!(s.get(0, 0, 1), 2.0);

        let mut w = Volume::zeros(dims, VolumeLayout::IMajor);
        w.set_slab(1, &s).unwrap();
        assert_eq!(w.get(0, 0, 0), 0.0);
        assert_eq!(w.get(1, 1, 1), 1.0);
        assert_eq!(w.get(0, 1, 2), 2.0);

        assert!(v.slab(3, 3).is_err());
        assert!(v.slab(0, 5).is_err());
        let too_big = Volume::zeros(Dims3::new(2, 2, 3), VolumeLayout::IMajor);
        assert!(w.set_slab(2, &too_big).is_err());
    }

    #[test]
    fn slice_xy_matches_get_in_both_layouts() {
        for layout in [VolumeLayout::IMajor, VolumeLayout::KMajor] {
            let dims = Dims3::new(3, 2, 2);
            let mut v = Volume::zeros(dims, layout);
            for i in 0..3 {
                for j in 0..2 {
                    for k in 0..2 {
                        v.set(i, j, k, (i + 10 * j + 100 * k) as f32);
                    }
                }
            }
            let s = v.slice_xy(1).unwrap();
            for j in 0..2 {
                for i in 0..3 {
                    assert_eq!(s[j * 3 + i], v.get(i, j, 1));
                }
            }
            assert!(v.slice_xy(2).is_err());
        }
    }

    #[test]
    fn accumulate_adds_and_checks_shape() {
        let mut a = Volume::zeros(Dims3::cube(2), VolumeLayout::IMajor);
        let mut b = Volume::zeros(Dims3::cube(2), VolumeLayout::IMajor);
        a.set(0, 0, 0, 1.0);
        b.set(0, 0, 0, 2.0);
        a.accumulate(&b).unwrap();
        assert_eq!(a.get(0, 0, 0), 3.0);

        let c = Volume::zeros(Dims3::cube(3), VolumeLayout::IMajor);
        assert!(a.accumulate(&c).is_err());
        let d = Volume::zeros(Dims3::cube(2), VolumeLayout::KMajor);
        assert!(a.accumulate(&d).is_err());
    }

    #[test]
    fn scale_and_max_abs() {
        let mut v = Volume::zeros(Dims3::cube(2), VolumeLayout::IMajor);
        v.set(1, 1, 1, -4.0);
        v.set(0, 0, 0, 3.0);
        assert_eq!(v.max_abs(), 4.0);
        v.scale(0.5);
        assert_eq!(v.get(1, 1, 1), -2.0);
        assert_eq!(v.max_abs(), 2.0);
    }
}
