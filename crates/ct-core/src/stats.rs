//! Volume statistics: histograms, line profiles and summary measures —
//! the "profiled runs to investigate the density value of each voxel"
//! of the paper's verification methodology (Section 5.1), plus the
//! primitives the inspection examples build on.

use crate::error::{CtError, Result};
use crate::volume::Volume;

/// Summary statistics of a buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Compute summary statistics (error on empty input).
pub fn summarize(data: &[f32]) -> Result<Summary> {
    if data.is_empty() {
        return Err(CtError::InvalidConfig("cannot summarise empty data".into()));
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f64;
    for &v in data {
        min = min.min(v);
        max = max.max(v);
        sum += v as f64;
    }
    let mean = sum / data.len() as f64;
    let var = data
        .iter()
        .map(|&v| (v as f64 - mean) * (v as f64 - mean))
        .sum::<f64>()
        / data.len() as f64;
    Ok(Summary {
        min,
        max,
        mean,
        std: var.sqrt(),
    })
}

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge.
    pub lo: f32,
    /// Inclusive upper edge.
    pub hi: f32,
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Samples outside `[lo, hi]`.
    pub outliers: u64,
}

impl Histogram {
    /// Build a histogram with `bins` bins.
    // `!(hi > lo)` deliberately rejects NaN edges along with empty ranges.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(data: &[f32], lo: f32, hi: f32, bins: usize) -> Result<Self> {
        if bins == 0 || !(hi > lo) {
            return Err(CtError::InvalidConfig(format!(
                "bad histogram spec: [{lo}, {hi}] with {bins} bins"
            )));
        }
        let mut counts = vec![0u64; bins];
        let mut outliers = 0u64;
        let w = (hi - lo) / bins as f32;
        for &v in data {
            if v < lo || v > hi {
                outliers += 1;
            } else {
                let b = (((v - lo) / w) as usize).min(bins - 1);
                counts[b] += 1;
            }
        }
        Ok(Self {
            lo,
            hi,
            counts,
            outliers,
        })
    }

    /// Centre value of bin `b`.
    pub fn bin_center(&self, b: usize) -> f32 {
        let w = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + (b as f32 + 0.5) * w
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(b, _)| b)
            .unwrap_or(0)
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Density profile along the X axis through `(j, k)` — the line plots
/// used to judge edge sharpness between ramp windows.
pub fn profile_x(vol: &Volume, j: usize, k: usize) -> Result<Vec<f32>> {
    let d = vol.dims();
    if j >= d.ny || k >= d.nz {
        return Err(CtError::OutOfBounds {
            what: "profile",
            index: j.max(k),
            bound: d.ny.max(d.nz),
        });
    }
    Ok((0..d.nx).map(|i| vol.get(i, j, k)).collect())
}

/// Full width at half maximum of a single-peaked profile, in samples
/// (linear interpolation at the half-height crossings). `None` when the
/// profile has no clear peak above its baseline.
// `!(peak > base)` rejects NaN peaks too, unlike `peak <= base`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn fwhm(profile: &[f32]) -> Option<f64> {
    if profile.len() < 3 {
        return None;
    }
    let (peak_idx, &peak) = profile
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    let base = profile.iter().cloned().fold(f32::INFINITY, f32::min);
    let half = base + (peak - base) / 2.0;
    if !(peak > base) {
        return None;
    }
    // Walk left from the peak to the crossing.
    let mut left = None;
    for i in (0..peak_idx).rev() {
        if profile[i] <= half {
            let t = (half - profile[i]) / (profile[i + 1] - profile[i]);
            left = Some(i as f64 + t as f64);
            break;
        }
    }
    let mut right = None;
    for i in peak_idx + 1..profile.len() {
        if profile[i] <= half {
            let t = (profile[i - 1] - half) / (profile[i - 1] - profile[i]);
            right = Some((i - 1) as f64 + t as f64);
            break;
        }
    }
    match (left, right) {
        (Some(l), Some(r)) if r > l => Some(r - l),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Dims3;
    use crate::volume::VolumeLayout;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert!(summarize(&[]).is_err());
    }

    #[test]
    fn histogram_binning() {
        let data = [0.0f32, 0.1, 0.9, 1.0, 0.5, -1.0, 2.0];
        let h = Histogram::new(&data, 0.0, 1.0, 2).unwrap();
        // bin 0 = [0, 0.5): {0.0, 0.1}; bin 1 = [0.5, 1.0]: {0.5, 0.9, 1.0}.
        assert_eq!(h.counts, vec![2, 3]);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-6);
        assert!(Histogram::new(&data, 0.0, 0.0, 4).is_err());
        assert!(Histogram::new(&data, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn histogram_mode_finds_bulk_density() {
        // 100 samples near 1.0, 10 near 0.
        let mut data = vec![1.0f32; 100];
        data.extend(vec![0.02f32; 10]);
        let h = Histogram::new(&data, 0.0, 1.2, 12).unwrap();
        let mode = h.bin_center(h.mode_bin());
        assert!((mode - 1.0).abs() < 0.1, "mode {mode}");
    }

    #[test]
    fn profile_and_fwhm() {
        let mut vol = Volume::zeros(Dims3::new(21, 3, 3), VolumeLayout::IMajor);
        // A triangular peak centred at i = 10 with half-width 5.
        for i in 0..21 {
            let x = (i as f32 - 10.0).abs();
            vol.set(i, 1, 1, (5.0 - x / 2.0).max(0.0));
        }
        let p = profile_x(&vol, 1, 1).unwrap();
        assert_eq!(p.len(), 21);
        let w = fwhm(&p).unwrap();
        // Triangle peak 5, base 0 -> half height 2.5 at x = +-5: width 10.
        assert!((w - 10.0).abs() < 0.2, "fwhm {w}");
        assert!(profile_x(&vol, 5, 0).is_err());
    }

    #[test]
    fn fwhm_degenerate_cases() {
        assert!(fwhm(&[1.0, 1.0]).is_none());
        assert!(fwhm(&[0.0, 0.0, 0.0]).is_none());
        // Peak at the boundary: no left crossing.
        assert!(fwhm(&[5.0, 1.0, 0.0, 0.0]).is_none());
    }
}
