//! Bilinear sub-pixel interpolation — the paper's Algorithm 3 (`interp2`).
//!
//! Most FDK implementations (RTK, RabbitCT, OSCaR) fetch the filtered
//! projection value at a non-integer detector coordinate through bilinear
//! interpolation; GPUs often get it "for free" from the texture unit. Our
//! CPU kernels call the functions here. Two access paths are provided to
//! mirror the paper's Table 3 kernel matrix:
//!
//! * a direct path over a row-major slice (the "L1 cache" path), and
//! * a path over an arbitrary stride (used by transposed projections).
//!
//! Out-of-bounds samples are clamped-to-zero, matching the
//! `cudaAddressModeBorder` behaviour RTK configures for its textures.

/// Bilinear interpolation of `img` (row-major, `width` columns x `height`
/// rows) at the sub-pixel coordinate `(u, v)` where `u` indexes columns and
/// `v` rows. Samples outside the image contribute zero.
///
/// This is the paper's Algorithm 3 verbatim, with border handling made
/// explicit.
#[inline]
pub fn interp2(img: &[f32], width: usize, height: usize, u: f32, v: f32) -> f32 {
    interp2_strided(img, width, height, width, u, v)
}

/// Bilinear interpolation with an explicit row stride (`row_stride >=
/// width`), enabling sampling of sub-views and transposed buffers without
/// copying.
#[inline]
pub fn interp2_strided(
    img: &[f32],
    width: usize,
    height: usize,
    row_stride: usize,
    u: f32,
    v: f32,
) -> f32 {
    debug_assert!(row_stride >= width);
    // Algorithm 3 line 2: integer parts. `floor` rather than `int` cast so
    // coordinates in (-1, 0) interpolate against the border correctly.
    let nu = u.floor();
    let nv = v.floor();
    // Algorithm 3 line 3: distances to the left sample.
    let du = u - nu;
    let dv = v - nv;
    let nu = nu as isize;
    let nv = nv as isize;

    let sample = |x: isize, y: isize| -> f32 {
        if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
            0.0
        } else {
            img.get(y as usize * row_stride + x as usize)
                .copied()
                .unwrap_or(0.0)
        }
    };

    // Algorithm 3 lines 4-6.
    let t1 = sample(nu, nv) * (1.0 - du) + sample(nu + 1, nv) * du;
    let t2 = sample(nu, nv + 1) * (1.0 - du) + sample(nu + 1, nv + 1) * du;
    t1 * (1.0 - dv) + t2 * dv
}

/// Precomputed bilinear interpolation weight for **one axis** of one
/// sub-pixel coordinate: the left sample index and the fractional blend
/// weight toward the right sample.
///
/// The batched kernels resolve the slow axis (`u`) once per *column
/// sweep* — once per `(u, projection)` pair instead of once per voxel —
/// which is the weight-precomputation scheme of the performance-portable
/// CPU back-projection literature (arXiv:2104.13248 §4). The arithmetic
/// (`floor`, subtract, `as isize`) is exactly what [`interp2`] performs
/// inline, so paths built on `AxisWeight` stay bit-identical to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisWeight {
    /// Index of the left (floor) sample; may be out of range.
    pub i: isize,
    /// Fractional distance past the left sample, in `[0, 1)`.
    pub frac: f32,
}

impl AxisWeight {
    /// Resolve the weight for coordinate `x` (the per-axis half of
    /// Algorithm 3 lines 2-3).
    #[inline]
    pub fn resolve(x: f32) -> Self {
        let fx = x.floor();
        Self {
            i: fx as isize,
            frac: x - fx,
        }
    }

    /// True when both samples (`i` and `i + 1`) lie inside an axis of
    /// length `n` — i.e. no zero-border blending is needed on this axis.
    #[inline]
    pub fn interior(&self, n: usize) -> bool {
        self.i >= 0 && self.i + 1 < n as isize
    }

    /// Blend the two already-fetched axis samples exactly as [`interp2`]
    /// does: `a * (1 - frac) + b * frac`.
    #[inline]
    pub fn blend(&self, a: f32, b: f32) -> f32 {
        a * (1.0 - self.frac) + b * self.frac
    }

    /// Fetch-and-blend against a zero border: samples outside `[0, len)`
    /// of `row` contribute `0.0`, matching [`interp2`]'s
    /// `cudaAddressModeBorder` behaviour.
    #[inline]
    pub fn blend_bordered(&self, row: &[f32]) -> f32 {
        let s = |x: isize| {
            usize::try_from(x)
                .ok()
                .and_then(|i| row.get(i))
                .copied()
                .unwrap_or(0.0)
        };
        self.blend(s(self.i), s(self.i + 1))
    }
}

/// Nearest-neighbour fetch, the `cudaFilterModePoint` configuration the
/// paper uses for the 32-bit RTK texture kernel (Section 5.2).
#[inline]
pub fn fetch_nearest(img: &[f32], width: usize, height: usize, u: f32, v: f32) -> f32 {
    let x = (u + 0.5).floor() as isize;
    let y = (v + 0.5).floor() as isize;
    if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
        0.0
    } else {
        img[y as usize * width + x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img2x2() -> Vec<f32> {
        // row 0: 1 2
        // row 1: 3 4
        vec![1.0, 2.0, 3.0, 4.0]
    }

    #[test]
    fn exact_on_lattice_points() {
        let img = img2x2();
        assert_eq!(interp2(&img, 2, 2, 0.0, 0.0), 1.0);
        assert_eq!(interp2(&img, 2, 2, 1.0, 0.0), 2.0);
        assert_eq!(interp2(&img, 2, 2, 0.0, 1.0), 3.0);
        assert_eq!(interp2(&img, 2, 2, 1.0, 1.0), 4.0);
    }

    #[test]
    fn midpoint_is_average() {
        let img = img2x2();
        assert!((interp2(&img, 2, 2, 0.5, 0.5) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn separable_weights() {
        let img = img2x2();
        // 0.25 along u at v=0: 1*(0.75) + 2*(0.25) = 1.25
        assert!((interp2(&img, 2, 2, 0.25, 0.0) - 1.25).abs() < 1e-6);
        // 0.25 along v at u=0: 1*(0.75) + 3*(0.25) = 1.5
        assert!((interp2(&img, 2, 2, 0.0, 0.25) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn outside_is_zero() {
        let img = img2x2();
        assert_eq!(interp2(&img, 2, 2, -2.0, 0.0), 0.0);
        assert_eq!(interp2(&img, 2, 2, 0.0, 5.0), 0.0);
        assert_eq!(interp2(&img, 2, 2, 100.0, 100.0), 0.0);
    }

    #[test]
    fn border_fades_to_zero() {
        let img = img2x2();
        // Half a pixel outside the left edge blends with the zero border.
        let v = interp2(&img, 2, 2, -0.5, 0.0);
        assert!((v - 0.5).abs() < 1e-6);
        // Half a pixel below the bottom edge.
        let v = interp2(&img, 2, 2, 0.0, 1.5);
        assert!((v - 1.5).abs() < 1e-6);
    }

    #[test]
    fn strided_matches_contiguous() {
        // Embed the 2x2 image in a 4-wide buffer.
        let mut buf = vec![0.0f32; 8];
        buf[0] = 1.0;
        buf[1] = 2.0;
        buf[4] = 3.0;
        buf[5] = 4.0;
        let img = img2x2();
        for &(u, v) in &[(0.3f32, 0.7f32), (0.9, 0.1), (0.5, 0.5)] {
            let a = interp2(&img, 2, 2, u, v);
            let b = interp2_strided(&buf, 2, 2, 4, u, v);
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn nearest_rounds_to_closest() {
        let img = img2x2();
        assert_eq!(fetch_nearest(&img, 2, 2, 0.4, 0.4), 1.0);
        assert_eq!(fetch_nearest(&img, 2, 2, 0.6, 0.4), 2.0);
        assert_eq!(fetch_nearest(&img, 2, 2, 0.4, 0.6), 3.0);
        assert_eq!(fetch_nearest(&img, 2, 2, -1.0, 0.0), 0.0);
    }

    #[test]
    fn interpolation_is_convex_combination() {
        let img = img2x2();
        for ui in 0..10 {
            for vi in 0..10 {
                let u = ui as f32 * 0.1;
                let v = vi as f32 * 0.1;
                let x = interp2(&img, 2, 2, u, v);
                assert!((1.0..=4.0).contains(&x), "({u},{v}) -> {x}");
            }
        }
    }
}
