//! The image-reconstruction *problem* definition of the paper's Section 2.3:
//! `Nu x Nv x Np -> Nx x Ny x Nz`, plus the `alpha` input/output ratio used
//! to organise Table 4.

use crate::error::{CtError, Result};
use serde::{Deserialize, Serialize};

/// Dimensions of a 2D image (detector): `nu` columns x `nv` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims2 {
    /// Width (number of detector columns, the paper's `Nu`).
    pub nu: usize,
    /// Height (number of detector rows, the paper's `Nv`).
    pub nv: usize,
}

impl Dims2 {
    /// Construct detector dimensions.
    pub const fn new(nu: usize, nv: usize) -> Self {
        Self { nu, nv }
    }

    /// Total pixel count.
    #[inline]
    pub const fn len(&self) -> usize {
        self.nu * self.nv
    }

    /// True when either dimension is zero.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.nu == 0 || self.nv == 0
    }

    /// Swap width and height (the transpose of the paper's Algorithm 4
    /// line 3).
    #[inline]
    pub const fn transposed(&self) -> Dims2 {
        Dims2 {
            nu: self.nv,
            nv: self.nu,
        }
    }
}

/// Dimensions of a 3D volume: `nx x ny x nz` voxels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims3 {
    /// Voxels along X (the paper's `Nx`).
    pub nx: usize,
    /// Voxels along Y (the paper's `Ny`).
    pub ny: usize,
    /// Voxels along Z (the paper's `Nz`).
    pub nz: usize,
}

impl Dims3 {
    /// Construct volume dimensions.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// A cube of side `n`.
    pub const fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total voxel count.
    #[inline]
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when any dimension is zero.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.nx == 0 || self.ny == 0 || self.nz == 0
    }

    /// Size in bytes at `f32` precision — the paper sizes sub-volumes in
    /// bytes to fit GPU memory (Section 4.1.5).
    #[inline]
    pub const fn bytes_f32(&self) -> usize {
        self.len() * core::mem::size_of::<f32>()
    }
}

/// The paper's image-reconstruction problem
/// `Nu x Nv x Np -> Nx x Ny x Nz` (Section 2.3, definition I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReconProblem {
    /// Detector dimensions of one projection.
    pub detector: Dims2,
    /// Number of projections (`Np`).
    pub num_projections: usize,
    /// Output volume dimensions.
    pub volume: Dims3,
}

impl ReconProblem {
    /// Construct and validate a problem definition.
    pub fn new(detector: Dims2, num_projections: usize, volume: Dims3) -> Result<Self> {
        if detector.is_empty() {
            return Err(CtError::InvalidDimension {
                what: "detector",
                detail: format!("{}x{} must be nonzero", detector.nu, detector.nv),
            });
        }
        if num_projections == 0 {
            return Err(CtError::InvalidDimension {
                what: "Np",
                detail: "need at least one projection".into(),
            });
        }
        if volume.is_empty() {
            return Err(CtError::InvalidDimension {
                what: "volume",
                detail: format!("{}x{}x{} must be nonzero", volume.nx, volume.ny, volume.nz),
            });
        }
        Ok(Self {
            detector,
            num_projections,
            volume,
        })
    }

    /// Input size in pixels (`Nu * Nv * Np`).
    #[inline]
    pub const fn input_len(&self) -> usize {
        self.detector.len() * self.num_projections
    }

    /// Output size in voxels (`Nx * Ny * Nz`).
    #[inline]
    pub const fn output_len(&self) -> usize {
        self.volume.len()
    }

    /// The paper's Table 4 ratio `alpha = input size / output size`.
    ///
    /// Small `alpha` (large outputs) favours the proposed kernel; the paper
    /// notes that in practice `alpha` is "typically very small, often less
    /// than 1".
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.input_len() as f64 / self.output_len() as f64
    }

    /// Total number of voxel updates `Nx*Ny*Nz*Np` — the numerator of the
    /// GUPS metric (Section 2.3, definition II).
    #[inline]
    pub const fn updates(&self) -> u128 {
        (self.output_len() as u128) * (self.num_projections as u128)
    }

    /// Format as the paper writes problems: `WxHxNp->XxYxZ`.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}->{}x{}x{}",
            self.detector.nu,
            self.detector.nv,
            self.num_projections,
            self.volume.nx,
            self.volume.ny,
            self.volume.nz
        )
    }

    /// The paper's headline 4K problem: `2048^2 x 4096 -> 4096^3`.
    pub fn paper_4k() -> Self {
        Self::new(Dims2::new(2048, 2048), 4096, Dims3::cube(4096)).expect("static dims")
    }

    /// The paper's headline 8K problem: `2048^2 x 4096 -> 8192^3`.
    pub fn paper_8k() -> Self {
        Self::new(Dims2::new(2048, 2048), 4096, Dims3::cube(8192)).expect("static dims")
    }

    /// Uniformly scale every dimension down by `factor` (used to run the
    /// paper's Table 4 problem *shapes* at laptop scale while preserving
    /// `alpha`; see DESIGN.md Section 5).
    pub fn scaled_down(&self, factor: usize) -> Result<Self> {
        if factor == 0 {
            return Err(CtError::InvalidConfig(
                "scale factor must be nonzero".into(),
            ));
        }
        let d = Dims2::new(self.detector.nu / factor, self.detector.nv / factor);
        let v = Dims3::new(
            self.volume.nx / factor,
            self.volume.ny / factor,
            self.volume.nz / factor,
        );
        Self::new(d, self.num_projections / factor, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_lengths() {
        assert_eq!(Dims2::new(4, 3).len(), 12);
        assert_eq!(Dims3::new(2, 3, 4).len(), 24);
        assert_eq!(Dims3::cube(8).len(), 512);
        assert_eq!(Dims3::cube(2).bytes_f32(), 32);
        assert!(Dims2::new(0, 5).is_empty());
        assert!(!Dims3::cube(1).is_empty());
    }

    #[test]
    fn transposed_swaps() {
        let d = Dims2::new(7, 3);
        assert_eq!(d.transposed(), Dims2::new(3, 7));
        assert_eq!(d.transposed().transposed(), d);
    }

    #[test]
    fn problem_validation() {
        assert!(ReconProblem::new(Dims2::new(0, 1), 1, Dims3::cube(1)).is_err());
        assert!(ReconProblem::new(Dims2::new(1, 1), 0, Dims3::cube(1)).is_err());
        assert!(ReconProblem::new(Dims2::new(1, 1), 1, Dims3::new(1, 0, 1)).is_err());
        assert!(ReconProblem::new(Dims2::new(1, 1), 1, Dims3::cube(1)).is_ok());
    }

    #[test]
    fn alpha_matches_paper_table4_rows() {
        // Paper Table 4 row: 512^2 x 1k -> 128^3 has alpha = 128.
        let p = ReconProblem::new(Dims2::new(512, 512), 1024, Dims3::cube(128)).unwrap();
        assert!((p.alpha() - 128.0).abs() < 1e-12);
        // 512^2 x 1k -> 1k^3 has alpha = 1/4... no: 512*512*1024 / 1024^3 = 1/4.
        // The paper lists alpha = 1 for that row because it defines alpha on
        // a per-"problem-size class" basis; we follow the strict ratio but
        // check a row where both agree:
        // (1k)^3 -> (1k)^3 has alpha = 1.
        let p = ReconProblem::new(Dims2::new(1024, 1024), 1024, Dims3::cube(1024)).unwrap();
        assert!((p.alpha() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_problems() {
        let p4 = ReconProblem::paper_4k();
        assert_eq!(p4.label(), "2048x2048x4096->4096x4096x4096");
        assert_eq!(p4.volume.bytes_f32(), 256 * 1024 * 1024 * 1024); // 256 GB
        let p8 = ReconProblem::paper_8k();
        assert_eq!(p8.volume.bytes_f32(), 2048 * 1024 * 1024 * 1024); // 2 TB
    }

    #[test]
    fn updates_counts_voxel_updates() {
        let p = ReconProblem::new(Dims2::new(8, 8), 16, Dims3::cube(4)).unwrap();
        assert_eq!(p.updates(), 64 * 16);
    }

    #[test]
    fn scaled_down_preserves_alpha() {
        let p = ReconProblem::paper_4k();
        let s = p.scaled_down(8).unwrap();
        assert_eq!(s.label(), "256x256x512->512x512x512");
        assert!((s.alpha() - p.alpha()).abs() < 1e-12);
        assert!(p.scaled_down(0).is_err());
    }
}
