//! Small dense linear-algebra types used by the geometry module.
//!
//! The projection-matrix pipeline of the paper (Section 3.2.1) is a chain of
//! 4x4 homogeneous transforms truncated to a 3x4 matrix. We implement exactly
//! the types that chain needs — nothing more — in `f64`, casting to `f32`
//! only at the kernel boundary.

use std::ops::{Add, Mul, Neg, Sub};

/// A 3-component vector of `f64` (world/voxel coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics in debug builds if the vector is (near) zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalise the zero vector");
        self * (1.0 / n)
    }

    /// Component-wise scaling by another vector.
    #[inline]
    pub fn scale(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 4-component homogeneous vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
    /// Homogeneous (w) component.
    pub w: f64,
}

impl Vec4 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64, w: f64) -> Self {
        Self { x, y, z, w }
    }

    /// Promote a point to homogeneous coordinates (`w = 1`).
    #[inline]
    pub fn from_point(p: Vec3) -> Self {
        Self::new(p.x, p.y, p.z, 1.0)
    }

    /// Dot product with another 4-vector.
    #[inline]
    pub fn dot(self, o: Vec4) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Drop the homogeneous component (no perspective divide).
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

/// A row-major 4x4 matrix of `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Rows of the matrix.
    pub rows: [[f64; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        rows: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Construct from rows.
    #[inline]
    pub const fn from_rows(rows: [[f64; 4]; 4]) -> Self {
        Self { rows }
    }

    /// A diagonal matrix.
    #[inline]
    pub fn diagonal(d0: f64, d1: f64, d2: f64, d3: f64) -> Self {
        let mut m = Mat4::IDENTITY;
        m.rows[0][0] = d0;
        m.rows[1][1] = d1;
        m.rows[2][2] = d2;
        m.rows[3][3] = d3;
        m
    }

    /// Rotation about the Z axis by `beta` radians (right-handed).
    #[inline]
    pub fn rot_z(beta: f64) -> Self {
        let (s, c) = beta.sin_cos();
        Mat4::from_rows([
            [c, -s, 0.0, 0.0],
            [s, c, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        let r = &self.rows;
        Vec4::new(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z + r[0][3] * v.w,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z + r[1][3] * v.w,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z + r[2][3] * v.w,
            r[3][0] * v.x + r[3][1] * v.y + r[3][2] * v.z + r[3][3] * v.w,
        )
    }

    /// Transpose.
    #[inline]
    pub fn transposed(&self) -> Mat4 {
        let [[a, b, c, d], [e, f, g, h], [i, j, k, l], [m, n, o, p]] = self.rows;
        Mat4::from_rows([[a, e, i, m], [b, f, j, n], [c, g, k, o], [d, h, l, p]])
    }

    /// Extract the upper three rows as a 3x4 matrix (the paper's
    /// `P = P_hat[0:3]` truncation, Eq. 2).
    #[inline]
    pub fn top3(&self) -> Mat3x4 {
        Mat3x4 {
            rows: [self.rows[0], self.rows[1], self.rows[2]],
        }
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, o: Mat4) -> Mat4 {
        let mut out = [[0.0f64; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.rows[i][k] * o.rows[k][j];
                }
                *cell = acc;
            }
        }
        Mat4::from_rows(out)
    }
}

/// A row-major 3x4 matrix — the projection matrix shape of the paper
/// (Table 1, `P_i`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3x4 {
    /// Rows of the matrix.
    pub rows: [[f64; 4]; 3],
}

impl Mat3x4 {
    /// Construct from rows.
    #[inline]
    pub const fn from_rows(rows: [[f64; 4]; 3]) -> Self {
        Self { rows }
    }

    /// Apply to a homogeneous point, producing the paper's `[x, y, z]^T`
    /// (Eq. 1, before the perspective divide).
    #[inline]
    pub fn mul_point(&self, p: Vec4) -> Vec3 {
        Vec3::new(self.row_dot(0, p), self.row_dot(1, p), self.row_dot(2, p))
    }

    /// Inner product of row `r` with a homogeneous point — the single
    /// 1x4-vector inner product of the paper's Algorithm 4 line 12.
    #[inline]
    pub fn row_dot(&self, r: usize, p: Vec4) -> f64 {
        let row = &self.rows[r];
        row[0] * p.x + row[1] * p.y + row[2] * p.z + row[3] * p.w
    }

    /// Cast every entry to `f32` in row-major order, the shape stored in the
    /// (simulated) constant memory of the paper's Listing 1 (`ProjMat`).
    pub fn to_f32_rows(&self) -> [[f32; 4]; 3] {
        self.rows.map(|row| row.map(|v| v as f32))
    }
}

/// Smallest power of two `>= n` (used for FFT padding and grid sizing).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// True if `n` is a power of two.
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Integer ceiling division.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn vec3_dot_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn vec3_norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < EPS);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn mat4_identity_is_neutral() {
        let v = Vec4::new(1.0, -2.0, 3.5, 1.0);
        assert_eq!(Mat4::IDENTITY.mul_vec4(v), v);
        let m = Mat4::rot_z(0.7);
        let id = m * Mat4::IDENTITY;
        for i in 0..4 {
            for j in 0..4 {
                assert!((id.rows[i][j] - m.rows[i][j]).abs() < EPS);
            }
        }
    }

    #[test]
    fn rot_z_rotates_x_to_y() {
        let m = Mat4::rot_z(std::f64::consts::FRAC_PI_2);
        let v = m.mul_vec4(Vec4::new(1.0, 0.0, 0.0, 1.0));
        assert!(v.x.abs() < EPS);
        assert!((v.y - 1.0).abs() < EPS);
    }

    #[test]
    fn rot_z_composition_adds_angles() {
        let a = Mat4::rot_z(0.3);
        let b = Mat4::rot_z(0.5);
        let ab = a * b;
        let direct = Mat4::rot_z(0.8);
        for i in 0..4 {
            for j in 0..4 {
                assert!((ab.rows[i][j] - direct.rows[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mat4_mul_associative() {
        let a = Mat4::rot_z(0.2);
        let b = Mat4::diagonal(2.0, 3.0, 4.0, 1.0);
        let c = Mat4::rot_z(-0.9);
        let l = (a * b) * c;
        let r = a * (b * c);
        for i in 0..4 {
            for j in 0..4 {
                assert!((l.rows[i][j] - r.rows[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::rot_z(1.1) * Mat4::diagonal(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn mat3x4_matches_mat4_truncation() {
        let m = Mat4::rot_z(0.4) * Mat4::diagonal(2.0, 1.0, 0.5, 1.0);
        let p = m.top3();
        let v = Vec4::new(1.0, 2.0, 3.0, 1.0);
        let full = m.mul_vec4(v);
        let trunc = p.mul_point(v);
        assert!((full.x - trunc.x).abs() < EPS);
        assert!((full.y - trunc.y).abs() < EPS);
        assert!((full.z - trunc.z).abs() < EPS);
    }

    #[test]
    fn row_dot_agrees_with_mul_point() {
        let m = Mat4::rot_z(0.4).top3();
        let v = Vec4::new(0.5, -1.5, 2.0, 1.0);
        let p = m.mul_point(v);
        assert_eq!(p.x, m.row_dot(0, v));
        assert_eq!(p.y, m.row_dot(1, v));
        assert_eq!(p.z, m.row_dot(2, v));
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(0));
        assert!(!is_pow2(96));
        assert_eq!(div_ceil(7, 3), 3);
        assert_eq!(div_ceil(6, 3), 2);
    }
}
