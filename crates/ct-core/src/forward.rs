//! Cone-beam forward projection — the synthetic-data generator.
//!
//! The paper generates its input projections with the RTK library's
//! forward-projection tool applied to the Shepp-Logan phantom
//! (Section 5.1). We provide two projectors:
//!
//! * [`project_analytic`] — *exact* line integrals through the analytic
//!   ellipsoid phantom (closed-form chord lengths). This is the reference
//!   data source for all tests and benchmarks: its output contains no
//!   discretisation error, so reconstruction error measures only the
//!   reconstruction.
//! * [`project_ray_marching`] — a numeric projector that marches rays
//!   through a *voxelised* volume with trilinear sampling, mirroring what
//!   RTK's Joseph-style projector does. Used to cross-validate the
//!   analytic projector and to project arbitrary voxel data.

use crate::geometry::CbctGeometry;
use crate::math::Vec3;
use crate::phantom::Phantom;
use crate::projection::{ProjectionImage, ProjectionStack};
use crate::volume::Volume;

/// Exact projection of an analytic phantom at projection index `pi`.
///
/// Each detector pixel value is the exact line integral from the source
/// through the pixel centre.
pub fn project_analytic(geo: &CbctGeometry, phantom: &Phantom, pi: usize) -> ProjectionImage {
    project_analytic_at(geo, phantom, geo.angle(pi))
}

/// Exact projection of an analytic phantom at gantry angle `beta`.
pub fn project_analytic_at(geo: &CbctGeometry, phantom: &Phantom, beta: f64) -> ProjectionImage {
    let mut img = ProjectionImage::zeros(geo.detector);
    let src = geo.source_position(beta);
    for v in 0..geo.detector.nv {
        for u in 0..geo.detector.nu {
            let pix = geo.detector_pixel_position(beta, u as f64, v as f64);
            let dir = (pix - src).normalized();
            img.set(u, v, phantom.line_integral(src, dir) as f32);
        }
    }
    img
}

/// Exact projections for every angle of the geometry (serial; the
/// distributed framework parallelises over projections at a higher level).
pub fn project_all_analytic(geo: &CbctGeometry, phantom: &Phantom) -> ProjectionStack {
    let mut stack = ProjectionStack::new(geo.detector);
    for pi in 0..geo.num_projections {
        stack
            .push(project_analytic(geo, phantom, pi))
            .expect("projector produces geometry-shaped images");
    }
    stack
}

/// Numeric forward projection of a voxelised volume by ray marching.
///
/// Rays step `step_frac` of a voxel pitch; each sample point is trilinearly
/// interpolated from the volume (voxels outside contribute zero). The
/// integral is the Riemann sum times the step length.
pub fn project_ray_marching(
    geo: &CbctGeometry,
    vol: &Volume,
    pi: usize,
    step_frac: f64,
) -> ProjectionImage {
    let beta = geo.angle(pi);
    let mut img = ProjectionImage::zeros(geo.detector);
    let src = geo.source_position(beta);
    let dims = vol.dims();

    // World-space half extents of the volume.
    let hx = dims.nx as f64 * geo.voxel_pitch[0] / 2.0;
    let hy = dims.ny as f64 * geo.voxel_pitch[1] / 2.0;
    let hz = dims.nz as f64 * geo.voxel_pitch[2] / 2.0;
    let step = step_frac
        * geo.voxel_pitch[0]
            .min(geo.voxel_pitch[1])
            .min(geo.voxel_pitch[2]);

    // World -> fractional voxel index (inverse of M0).
    let (nx, ny, nz) = (dims.nx as f64, dims.ny as f64, dims.nz as f64);
    let inv = |p: Vec3| -> Vec3 {
        Vec3::new(
            p.x / geo.voxel_pitch[0] + (nx - 1.0) / 2.0,
            (ny - 1.0) / 2.0 - p.y / geo.voxel_pitch[1],
            (nz - 1.0) / 2.0 - p.z / geo.voxel_pitch[2],
        )
    };

    for v in 0..geo.detector.nv {
        for u in 0..geo.detector.nu {
            let pix = geo.detector_pixel_position(beta, u as f64, v as f64);
            let dir = (pix - src).normalized();
            // Clip the ray against the volume's bounding box (slab method).
            let mut t0 = 0.0f64;
            let mut t1 = f64::INFINITY;
            let mut miss = false;
            for (o, d, h) in [(src.x, dir.x, hx), (src.y, dir.y, hy), (src.z, dir.z, hz)] {
                if d.abs() < 1e-12 {
                    if o.abs() > h {
                        miss = true;
                        break;
                    }
                } else {
                    let ta = (-h - o) / d;
                    let tb = (h - o) / d;
                    let (lo, hi) = if ta < tb { (ta, tb) } else { (tb, ta) };
                    t0 = t0.max(lo);
                    t1 = t1.min(hi);
                }
            }
            if miss || t1 <= t0 {
                continue;
            }
            let mut acc = 0.0f64;
            let mut t = t0 + step / 2.0;
            while t < t1 {
                let p = inv(src + dir * t);
                acc += trilinear(vol, p) as f64;
                t += step;
            }
            img.set(u, v, (acc * step) as f32);
        }
    }
    img
}

/// Trilinear interpolation of a volume at fractional voxel coordinates,
/// zero outside.
fn trilinear(vol: &Volume, p: Vec3) -> f32 {
    let dims = vol.dims();
    let (i0, j0, k0) = (p.x.floor(), p.y.floor(), p.z.floor());
    let (fi, fj, fk) = ((p.x - i0) as f32, (p.y - j0) as f32, (p.z - k0) as f32);
    let (i0, j0, k0) = (i0 as isize, j0 as isize, k0 as isize);
    let get = |i: isize, j: isize, k: isize| -> f32 {
        if i < 0
            || j < 0
            || k < 0
            || i >= dims.nx as isize
            || j >= dims.ny as isize
            || k >= dims.nz as isize
        {
            0.0
        } else {
            vol.get(i as usize, j as usize, k as usize)
        }
    };
    let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
    let c00 = lerp(get(i0, j0, k0), get(i0 + 1, j0, k0), fi);
    let c10 = lerp(get(i0, j0 + 1, k0), get(i0 + 1, j0 + 1, k0), fi);
    let c01 = lerp(get(i0, j0, k0 + 1), get(i0 + 1, j0, k0 + 1), fi);
    let c11 = lerp(get(i0, j0 + 1, k0 + 1), get(i0 + 1, j0 + 1, k0 + 1), fi);
    lerp(lerp(c00, c10, fj), lerp(c01, c11, fj), fk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Dims2, Dims3};
    use crate::volume::VolumeLayout;

    fn small_geometry() -> CbctGeometry {
        CbctGeometry::standard(Dims2::new(32, 32), 8, Dims3::cube(16))
    }

    #[test]
    fn empty_phantom_projects_to_zero() {
        let geo = small_geometry();
        let img = project_analytic(&geo, &Phantom::default(), 0);
        assert!(img.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn central_pixel_sees_sphere_diameter() {
        let geo = small_geometry();
        let r = 4.0;
        let ph = Phantom::uniform_sphere(r);
        let img = project_analytic(&geo, &ph, 0);
        // The detector centre ray passes through the sphere centre: the
        // integral is the diameter.
        let cu = (geo.detector.nu - 1) / 2;
        let cv = (geo.detector.nv - 1) / 2;
        // Detector is even-sized so the exact centre is between pixels;
        // sample the four neighbours and take the max.
        let got = img
            .get(cu, cv)
            .max(img.get(cu + 1, cv))
            .max(img.get(cu, cv + 1));
        assert!(
            (got as f64 - 2.0 * r).abs() < 0.05 * 2.0 * r,
            "integral {got} vs diameter {}",
            2.0 * r
        );
    }

    #[test]
    fn projection_has_shadow_where_expected() {
        let geo = small_geometry();
        let ph = Phantom::uniform_sphere(4.0);
        let img = project_analytic(&geo, &ph, 3);
        // Corner pixels see nothing.
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(31, 31), 0.0);
        // Some central pixel sees the sphere.
        assert!(img.get(16, 16) > 0.0);
    }

    #[test]
    fn rotational_symmetry_of_centered_sphere() {
        // A centred sphere must project identically at every angle.
        let geo = small_geometry();
        let ph = Phantom::uniform_sphere(3.0);
        let a = project_analytic(&geo, &ph, 0);
        let b = project_analytic(&geo, &ph, 5);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn stack_covers_all_angles() {
        let geo = small_geometry();
        let ph = Phantom::uniform_sphere(3.0);
        let stack = project_all_analytic(&geo, &ph);
        assert_eq!(stack.len(), geo.num_projections);
    }

    #[test]
    fn ray_marching_agrees_with_analytic_on_sphere() {
        let geo = CbctGeometry::standard(Dims2::new(24, 24), 4, Dims3::cube(24));
        let r = 6.0;
        let ph = Phantom::uniform_sphere(r);
        let vol = ph.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
            geo.voxel_position(i, j, k)
        });
        let exact = project_analytic(&geo, &ph, 0);
        let numeric = project_ray_marching(&geo, &vol, 0, 0.25);
        // Compare where the signal is strong; voxelisation error dominates
        // at the silhouette edge.
        let mut max_rel: f32 = 0.0;
        for v in 8..16 {
            for u in 8..16 {
                let e = exact.get(u, v);
                let n = numeric.get(u, v);
                if e > r as f32 {
                    max_rel = max_rel.max((e - n).abs() / e);
                }
            }
        }
        assert!(max_rel < 0.15, "max relative deviation {max_rel}");
    }

    #[test]
    fn trilinear_exact_on_lattice() {
        let mut vol = Volume::zeros(Dims3::cube(3), VolumeLayout::IMajor);
        vol.set(1, 1, 1, 5.0);
        assert_eq!(trilinear(&vol, Vec3::new(1.0, 1.0, 1.0)), 5.0);
        assert_eq!(trilinear(&vol, Vec3::new(0.0, 0.0, 0.0)), 0.0);
        // Halfway between (1,1,1) and (0,1,1): 2.5.
        assert!((trilinear(&vol, Vec3::new(0.5, 1.0, 1.0)) - 2.5).abs() < 1e-6);
        // Outside is zero.
        assert_eq!(trilinear(&vol, Vec3::new(-5.0, 0.0, 0.0)), 0.0);
    }
}
