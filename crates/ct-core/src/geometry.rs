//! Cone-beam CT acquisition geometry (paper Section 2.2.1 and 3.2.1).
//!
//! The geometry follows the paper's Figure 1 exactly:
//!
//! * A micro-focus X-ray source `S` and a flat-panel detector (FPD) are
//!   rigidly coupled and rotate together about the world Z axis.
//! * `d` is the distance from the source to the rotation (Z) axis and `D`
//!   the distance from the source to the detector centre, both in *pixel*
//!   units (Table 1).
//! * Voxel indices `(i, j, k)` map to world millimetres through `M0`,
//!   the gantry rotation through `Mrot`, and the perspective projection
//!   onto the FPD through `M1`. The 3x4 projection matrix is
//!   `P = (M1 * Mrot * M0)[0:3]` (Eq. 2).
//!
//! The module also hosts executable statements of the paper's three
//! theorems (Section 3.2.1), which the proposed back-projection algorithm
//! (Algorithm 4) and the `shflBP`-style kernels rely on. They are verified
//! numerically by this module's tests and by property tests.

use crate::error::{CtError, Result};
use crate::math::{Mat3x4, Mat4, Vec3, Vec4};
use crate::problem::{Dims2, Dims3};
use serde::{Deserialize, Serialize};

/// Complete CBCT scan geometry — the paper's Table 1 parameter list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CbctGeometry {
    /// Detector dimensions (`Nu`, `Nv`) in pixels.
    pub detector: Dims2,
    /// Detector pixel pitch in U (mm/pixel) — Table 1 `Du`.
    pub du: f64,
    /// Detector pixel pitch in V (mm/pixel) — Table 1 `Dv`.
    pub dv: f64,
    /// Source-to-rotation-axis distance — Table 1 `d`.
    pub d: f64,
    /// Source-to-detector distance — Table 1 `D`.
    pub big_d: f64,
    /// Volume dimensions (`Nx`, `Ny`, `Nz`) in voxels.
    pub volume: Dims3,
    /// Voxel pitch in X, Y, Z (mm/voxel) — Table 1 `Dx`, `Dy`, `Dz`.
    pub voxel_pitch: [f64; 3],
    /// Number of projections over the angular range — Table 1 `Np`.
    pub num_projections: usize,
    /// Angular range of the scan in radians: `2*pi` for the paper's full
    /// circular trajectory, `pi + 2*fan_half_angle` for a Parker
    /// short scan.
    pub angular_range: f64,
}

impl CbctGeometry {
    /// Validate the geometry.
    // `!(x > 0.0)` is deliberate: it rejects NaN along with
    // non-positive values, which `x <= 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<()> {
        if self.detector.is_empty() {
            return Err(CtError::InvalidGeometry("empty detector".into()));
        }
        if self.volume.is_empty() {
            return Err(CtError::InvalidGeometry("empty volume".into()));
        }
        if self.num_projections == 0 {
            return Err(CtError::InvalidGeometry("Np must be >= 1".into()));
        }
        if !(self.angular_range > 0.0) || self.angular_range > 2.0 * std::f64::consts::PI + 1e-9 {
            return Err(CtError::InvalidGeometry(format!(
                "angular range {} outside (0, 2*pi]",
                self.angular_range
            )));
        }
        if !self.is_full_scan()
            && self.angular_range + 1e-9 < std::f64::consts::PI + 2.0 * self.fan_half_angle()
        {
            return Err(CtError::InvalidGeometry(format!(
                "short-scan range {} below the Parker minimum pi + 2*delta = {}",
                self.angular_range,
                std::f64::consts::PI + 2.0 * self.fan_half_angle()
            )));
        }
        if !(self.d > 0.0) {
            return Err(CtError::InvalidGeometry(format!(
                "d = {} must be > 0",
                self.d
            )));
        }
        if !(self.big_d > 0.0) {
            return Err(CtError::InvalidGeometry(format!(
                "D = {} must be > 0",
                self.big_d
            )));
        }
        if self.big_d < self.d {
            return Err(CtError::InvalidGeometry(format!(
                "D = {} must be >= d = {} (detector behind the object)",
                self.big_d, self.d
            )));
        }
        if !(self.du > 0.0 && self.dv > 0.0) {
            return Err(CtError::InvalidGeometry("pixel pitch must be > 0".into()));
        }
        if self.voxel_pitch.iter().any(|&p| !(p > 0.0)) {
            return Err(CtError::InvalidGeometry("voxel pitch must be > 0".into()));
        }
        // The reconstructed cylinder must fit inside the source orbit,
        // otherwise voxels pass behind the source (z <= 0 in Eq. 3).
        let rx = self.volume.nx as f64 * self.voxel_pitch[0] / 2.0;
        let ry = self.volume.ny as f64 * self.voxel_pitch[1] / 2.0;
        let r = (rx * rx + ry * ry).sqrt();
        if r >= self.d {
            return Err(CtError::InvalidGeometry(format!(
                "volume radius {r:.2} must be < source orbit radius d = {}",
                self.d
            )));
        }
        Ok(())
    }

    /// A sensible default geometry for a given problem size: the volume
    /// inscribes the field of view, the source orbit is twice the volume
    /// half-extent, and the detector magnification is `D/d = 2`.
    ///
    /// This mirrors how RabbitCT / RTK test geometries are generated and is
    /// what the paper's synthetic Shepp-Logan runs use.
    pub fn standard(detector: Dims2, num_projections: usize, volume: Dims3) -> Self {
        // Work in units where one voxel is 1 mm.
        let half_extent = volume.nx.max(volume.ny).max(volume.nz) as f64 / 2.0;
        let d = 3.0 * half_extent;
        let big_d = 2.0 * d;
        // Choose the pixel pitch so the magnified volume fits on the FPD
        // with a small margin.
        let magnification = big_d / d;
        let fov = 2.0 * half_extent * magnification * 1.10 * std::f64::consts::SQRT_2;
        let du = fov / detector.nu as f64;
        let dv = fov / detector.nv as f64;
        Self {
            detector,
            du,
            dv,
            d,
            big_d,
            volume,
            voxel_pitch: [1.0, 1.0, 1.0],
            num_projections,
            angular_range: 2.0 * std::f64::consts::PI,
        }
    }

    /// The same standard geometry trimmed to a Parker short scan: the
    /// minimal angular range `pi + 2 * fan_half_angle` that still covers
    /// every ray family once.
    pub fn standard_short_scan(detector: Dims2, num_projections: usize, volume: Dims3) -> Self {
        let mut geo = Self::standard(detector, num_projections, volume);
        geo.angular_range = std::f64::consts::PI + 2.0 * geo.fan_half_angle();
        geo
    }

    /// Half fan angle `delta`: the angle between the central ray and the
    /// ray through the detector's outermost column.
    pub fn fan_half_angle(&self) -> f64 {
        let a_max = (self.detector.nu as f64 - 1.0) / 2.0 * self.virtual_pitch_u();
        (a_max / self.d).atan()
    }

    /// Fan angle `gamma` of the ray through detector column `u` (signed).
    pub fn fan_angle_of_column(&self, u: f64) -> f64 {
        let a = (u - (self.detector.nu as f64 - 1.0) / 2.0) * self.virtual_pitch_u();
        (a / self.d).atan()
    }

    /// True when the trajectory covers the full circle.
    pub fn is_full_scan(&self) -> bool {
        self.angular_range >= 2.0 * std::f64::consts::PI - 1e-9
    }

    /// Gantry angle of projection `i`: `beta = i * theta`, with
    /// `theta = angular_range / Np` (Table 1 has `theta = 2*pi/Np` for
    /// the paper's full-circle scans).
    #[inline]
    pub fn angle(&self, i: usize) -> f64 {
        debug_assert!(i < self.num_projections);
        self.angular_range * (i as f64) / (self.num_projections as f64)
    }

    /// The rotation step `theta = angular_range / Np`.
    #[inline]
    pub fn angle_step(&self) -> f64 {
        self.angular_range / self.num_projections as f64
    }

    /// `M0`: voxel indices -> world millimetres (paper Section 3.2.1).
    ///
    /// `x = Dx*(i - (Nx-1)/2)`, `y = Dy*((Ny-1)/2 - j)`,
    /// `z = Dz*((Nz-1)/2 - k)`.
    pub fn m0(&self) -> Mat4 {
        let (nx, ny, nz) = (
            self.volume.nx as f64,
            self.volume.ny as f64,
            self.volume.nz as f64,
        );
        let scale = Mat4::diagonal(
            self.voxel_pitch[0],
            self.voxel_pitch[1],
            self.voxel_pitch[2],
            1.0,
        );
        let center = Mat4::from_rows([
            [1.0, 0.0, 0.0, -(nx - 1.0) / 2.0],
            [0.0, -1.0, 0.0, (ny - 1.0) / 2.0],
            [0.0, 0.0, -1.0, (nz - 1.0) / 2.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        scale * center
    }

    /// `Mrot(beta)`: gantry rotation about Z by `beta` plus the transpose
    /// distance `d` along the camera depth axis (paper Section 3.2.1).
    pub fn m_rot(&self, beta: f64) -> Mat4 {
        let swap = Mat4::from_rows([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, -1.0, 0.0],
            [0.0, 1.0, 0.0, self.d],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        swap * Mat4::rot_z(beta)
    }

    /// `M1`: perspective projection of camera coordinates onto FPD pixel
    /// coordinates (paper Section 3.2.1).
    pub fn m1(&self) -> Mat4 {
        let (nu, nv) = (self.detector.nu as f64, self.detector.nv as f64);
        let pitch = Mat4::diagonal(1.0 / self.du, 1.0 / self.dv, 1.0, 1.0);
        let proj = Mat4::from_rows([
            [self.big_d, 0.0, (nu - 1.0) * self.du / 2.0, 0.0],
            [0.0, self.big_d, (nv - 1.0) * self.dv / 2.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        pitch * proj
    }

    /// The full 3x4 projection matrix for projection `i`:
    /// `P_i = (M1 * Mrot(i*theta) * M0)[0:3]` (Eq. 2).
    pub fn projection_matrix(&self, i: usize) -> ProjectionMatrix {
        self.projection_matrix_at(self.angle(i))
    }

    /// Projection matrix at an arbitrary gantry angle `beta`.
    pub fn projection_matrix_at(&self, beta: f64) -> ProjectionMatrix {
        let p_hat = self.m1() * self.m_rot(beta) * self.m0();
        ProjectionMatrix {
            mat: p_hat.top3(),
            beta,
        }
    }

    /// All `Np` projection matrices.
    pub fn projection_matrices(&self) -> Vec<ProjectionMatrix> {
        (0..self.num_projections)
            .map(|i| self.projection_matrix(i))
            .collect()
    }

    /// World position of the X-ray source at gantry angle `beta`:
    /// `S(beta) = (-d sin(beta), -d cos(beta), 0)`, an orbit of radius `d`
    /// around the Z axis (Figure 1b).
    pub fn source_position(&self, beta: f64) -> Vec3 {
        let (s, c) = beta.sin_cos();
        Vec3::new(-self.d * s, -self.d * c, 0.0)
    }

    /// World position of detector pixel `(u, v)` (pixel centres) at gantry
    /// angle `beta`.
    ///
    /// The detector plane sits at distance `D` from the source along the
    /// camera depth axis; `u` runs along the rotated X axis, `v` along
    /// world `-Z` (so that increasing detector row moves *down* in world
    /// space, matching the sign conventions of `M0`/`M1`).
    pub fn detector_pixel_position(&self, beta: f64, u: f64, v: f64) -> Vec3 {
        let (s, c) = beta.sin_cos();
        let e_a = Vec3::new(c, -s, 0.0); // rotated X axis in world coords
        let e_c = Vec3::new(s, c, 0.0); // camera depth axis in world coords
        let e_b = Vec3::new(0.0, 0.0, -1.0); // detector V axis in world coords
        let a = (u - (self.detector.nu as f64 - 1.0) / 2.0) * self.du;
        let b = (v - (self.detector.nv as f64 - 1.0) / 2.0) * self.dv;
        let source = self.source_position(beta);
        source + e_a * a + e_b * b + e_c * self.big_d
    }

    /// World position of the centre of voxel `(i, j, k)` (applies `M0`).
    pub fn voxel_position(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.m0()
            .mul_vec4(Vec4::new(i as f64, j as f64, k as f64, 1.0))
            .xyz()
    }

    /// The paper's Eq. 3: the perspective depth `z` of any voxel in column
    /// `(i, j)` (independent of `k` — Theorem 3):
    ///
    /// `z = d + sin(beta)*(i - (Nx-1)/2)*Dx - cos(beta)*(j - (Ny-1)/2)*Dy`.
    pub fn depth_eq3(&self, beta: f64, i: f64, j: f64) -> f64 {
        let (s, c) = beta.sin_cos();
        let (nx, ny) = (self.volume.nx as f64, self.volume.ny as f64);
        self.d + s * (i - (nx - 1.0) / 2.0) * self.voxel_pitch[0]
            - c * (j - (ny - 1.0) / 2.0) * self.voxel_pitch[1]
    }

    /// Effective detector pixel pitch rescaled to the *virtual detector*
    /// through the isocentre (pitch * d / D) — the quantity the ramp filter
    /// and FDK weights are expressed in (Kak & Slaney Ch. 3).
    #[inline]
    pub fn virtual_pitch_u(&self) -> f64 {
        self.du * self.d / self.big_d
    }

    /// See [`Self::virtual_pitch_u`].
    #[inline]
    pub fn virtual_pitch_v(&self) -> f64 {
        self.dv * self.d / self.big_d
    }
}

/// A single 3x4 projection matrix plus the gantry angle it was built at.
///
/// Applying it to a homogeneous voxel index `[i, j, k, 1]` yields `[x,y,z]`;
/// the detector coordinates are `u = x/z`, `v = y/z` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionMatrix {
    /// The 3x4 matrix `P_i`.
    pub mat: Mat3x4,
    /// Gantry angle `beta` (radians).
    pub beta: f64,
}

impl ProjectionMatrix {
    /// Project a voxel index to detector coordinates, returning
    /// `(u, v, z)` where `z` is the perspective depth (Eq. 1).
    #[inline]
    pub fn project(&self, i: f64, j: f64, k: f64) -> (f64, f64, f64) {
        let p = Vec4::new(i, j, k, 1.0);
        let xyz = self.mat.mul_point(p);
        let f = 1.0 / xyz.z;
        (xyz.x * f, xyz.y * f, xyz.z)
    }

    /// The three rows as `f32` 4-vectors — the layout of the simulated
    /// constant memory `ProjMat` in the paper's Listing 1.
    #[inline]
    pub fn rows_f32(&self) -> [[f32; 4]; 3] {
        self.mat.to_f32_rows()
    }
}

/// Executable statements of the paper's Section 3.2.1 theorems.
///
/// These functions *measure* how well each theorem holds for a concrete
/// geometry; the tests assert the residuals are at floating-point noise
/// level. The proposed back-projection kernels assume the theorems exactly.
pub mod theorems {
    use super::*;

    /// Theorem 1 residuals: for voxels `(i,j,k)` and `(i,j,Nz-1-k)`,
    /// returns `(|u_A - u_B|, |v_A + v_B - (Nv - 1)|)`, both of which must
    /// vanish.
    pub fn theorem1_residual(
        geo: &CbctGeometry,
        p: &ProjectionMatrix,
        i: usize,
        j: usize,
        k: usize,
    ) -> (f64, f64) {
        let k2 = geo.volume.nz - 1 - k;
        let (ua, va, _) = p.project(i as f64, j as f64, k as f64);
        let (ub, vb, _) = p.project(i as f64, j as f64, k2 as f64);
        let nv = geo.detector.nv as f64;
        ((ua - ub).abs(), (va + vb - (nv - 1.0)).abs())
    }

    /// Theorem 2 residual: `u` along the voxel column `(i, j, *)` must be
    /// constant; returns the max deviation from the `k = 0` value.
    pub fn theorem2_residual(geo: &CbctGeometry, p: &ProjectionMatrix, i: usize, j: usize) -> f64 {
        let (u0, _, _) = p.project(i as f64, j as f64, 0.0);
        (0..geo.volume.nz)
            .map(|k| {
                let (u, _, _) = p.project(i as f64, j as f64, k as f64);
                (u - u0).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Theorem 3 residual: the perspective depth `z` along the voxel column
    /// `(i, j, *)` must be constant and equal to Eq. 3; returns the max
    /// absolute deviation from the closed form.
    pub fn theorem3_residual(geo: &CbctGeometry, p: &ProjectionMatrix, i: usize, j: usize) -> f64 {
        let expected = geo.depth_eq3(p.beta, i as f64, j as f64);
        (0..geo.volume.nz)
            .map(|k| {
                let (_, _, z) = p.project(i as f64, j as f64, k as f64);
                (z - expected).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_geometry() -> CbctGeometry {
        CbctGeometry::standard(Dims2::new(64, 48), 36, Dims3::new(32, 28, 24))
    }

    #[test]
    fn standard_geometry_validates() {
        test_geometry().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut g = test_geometry();
        g.d = -1.0;
        assert!(g.validate().is_err());

        let mut g = test_geometry();
        g.big_d = g.d / 2.0;
        assert!(g.validate().is_err());

        let mut g = test_geometry();
        g.du = 0.0;
        assert!(g.validate().is_err());

        let mut g = test_geometry();
        g.num_projections = 0;
        assert!(g.validate().is_err());

        let mut g = test_geometry();
        g.voxel_pitch = [1.0, -2.0, 1.0];
        assert!(g.validate().is_err());

        // Volume bigger than the orbit radius.
        let mut g = test_geometry();
        g.voxel_pitch = [100.0, 100.0, 1.0];
        assert!(g.validate().is_err());
    }

    #[test]
    fn angles_cover_full_circle() {
        let g = test_geometry();
        assert_eq!(g.angle(0), 0.0);
        let step = g.angle_step();
        assert!((g.angle(1) - step).abs() < 1e-15);
        let last = g.angle(g.num_projections - 1);
        assert!(last < g.angular_range);
        assert!((last + step - g.angular_range).abs() < 1e-12);
    }

    #[test]
    fn source_orbit_has_radius_d() {
        let g = test_geometry();
        for i in 0..g.num_projections {
            let s = g.source_position(g.angle(i));
            assert!((s.norm() - g.d).abs() < 1e-9);
            assert_eq!(s.z, 0.0);
        }
    }

    #[test]
    fn center_voxel_projects_to_detector_center() {
        let g = test_geometry();
        // Index-space centre of the volume.
        let (ci, cj, ck) = (
            (g.volume.nx as f64 - 1.0) / 2.0,
            (g.volume.ny as f64 - 1.0) / 2.0,
            (g.volume.nz as f64 - 1.0) / 2.0,
        );
        for i in 0..g.num_projections {
            let p = g.projection_matrix(i);
            let (u, v, z) = p.project(ci, cj, ck);
            assert!((u - (g.detector.nu as f64 - 1.0) / 2.0).abs() < 1e-9);
            assert!((v - (g.detector.nv as f64 - 1.0) / 2.0).abs() < 1e-9);
            // The isocentre is at depth d from the source.
            assert!((z - g.d).abs() < 1e-9);
        }
    }

    #[test]
    fn m0_maps_voxels_to_centered_world() {
        let g = test_geometry();
        let p000 = g.voxel_position(0, 0, 0);
        let pmax = g.voxel_position(g.volume.nx - 1, g.volume.ny - 1, g.volume.nz - 1);
        // Opposite corners must be point-symmetric about the origin.
        assert!((p000 + pmax).norm() < 1e-9);
        // Y and Z axes are flipped by M0 (paper's convention).
        assert!(p000.x < 0.0);
        assert!(p000.y > 0.0);
        assert!(p000.z > 0.0);
    }

    #[test]
    fn projection_consistent_with_explicit_ray_geometry() {
        // Project a voxel with the matrix, then verify the world-space ray
        // from the source through the resulting detector pixel passes
        // through the voxel.
        let g = test_geometry();
        for pi in [0, 7, 19] {
            let beta = g.angle(pi);
            let p = g.projection_matrix(pi);
            for (i, j, k) in [(3, 5, 7), (20, 10, 2), (31, 27, 23)] {
                let (u, v, _) = p.project(i as f64, j as f64, k as f64);
                let vox = g.voxel_position(i, j, k);
                let src = g.source_position(beta);
                let det = g.detector_pixel_position(beta, u, v);
                // vox must lie on segment src->det: cross product of
                // direction vectors vanishes.
                let d1 = (vox - src).normalized();
                let d2 = (det - src).normalized();
                assert!(
                    d1.cross(d2).norm() < 1e-9,
                    "voxel ({i},{j},{k}) not on ray at proj {pi}"
                );
            }
        }
    }

    #[test]
    fn theorem1_holds_numerically() {
        let g = test_geometry();
        for pi in [0, 5, 13, 35] {
            let p = g.projection_matrix(pi);
            for (i, j, k) in [(0, 0, 0), (10, 20, 3), (31, 1, 11)] {
                let (du, dv) = theorems::theorem1_residual(&g, &p, i, j, k);
                assert!(du < 1e-9, "u symmetry broken: {du}");
                assert!(dv < 1e-9, "v symmetry broken: {dv}");
            }
        }
    }

    #[test]
    fn theorem2_holds_numerically() {
        let g = test_geometry();
        for pi in [1, 9, 22] {
            let p = g.projection_matrix(pi);
            for (i, j) in [(0, 0), (15, 20), (31, 27)] {
                assert!(theorems::theorem2_residual(&g, &p, i, j) < 1e-9);
            }
        }
    }

    #[test]
    fn theorem3_matches_eq3() {
        let g = test_geometry();
        for pi in [2, 11, 30] {
            let p = g.projection_matrix(pi);
            for (i, j) in [(0, 0), (7, 13), (31, 27)] {
                assert!(theorems::theorem3_residual(&g, &p, i, j) < 1e-9);
            }
        }
    }

    #[test]
    fn virtual_pitch_is_demagnified() {
        let g = test_geometry();
        assert!((g.virtual_pitch_u() - g.du * g.d / g.big_d).abs() < 1e-15);
        assert!(g.virtual_pitch_u() < g.du);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn rows_f32_round_trip() {
        let g = test_geometry();
        let p = g.projection_matrix(3);
        let rows = p.rows_f32();
        for r in 0..3 {
            for c in 0..4 {
                assert!((rows[r][c] as f64 - p.mat.rows[r][c]).abs() < 1e-3);
            }
        }
    }
}
