//! Projection (X-ray image) containers and the three storage layouts the
//! paper's Table 3 kernel matrix exercises.
//!
//! * [`ProjectionImage`] — row-major (`v`-major): the natural layout coming
//!   off the detector, used by the standard kernel.
//! * [`TransposedProjection`] — `u`-major, the transpose of Algorithm 4
//!   line 3 (`Q~ <- Q^T`). The proposed kernels walk `v` in the inner loop,
//!   so the transpose makes those accesses contiguous ("L1" path).
//! * [`BlockedProjection`] — an 8x8-tiled layout emulating the 2D spatial
//!   locality of CUDA's texture cache ("Texture" path): 2D-neighbouring
//!   texels live in the same 256-byte tile regardless of direction.

use crate::error::{CtError, Result};
use crate::interp::interp2;
use crate::problem::Dims2;

/// A single 2D projection in row-major (`v`-major) order:
/// `idx = v * Nu + u`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionImage {
    dims: Dims2,
    data: Vec<f32>,
}

impl ProjectionImage {
    /// Allocate a zero projection.
    pub fn zeros(dims: Dims2) -> Self {
        Self {
            dims,
            data: vec![0.0; dims.len()],
        }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(dims: Dims2, data: Vec<f32>) -> Result<Self> {
        if data.len() != dims.len() {
            return Err(CtError::ShapeMismatch {
                expected: format!("{} pixels", dims.len()),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Self { dims, data })
    }

    /// Detector dimensions.
    #[inline]
    pub fn dims(&self) -> Dims2 {
        self.dims
    }

    /// Raw row-major pixels.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major pixels.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Pixel at column `u`, row `v`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> f32 {
        debug_assert!(u < self.dims.nu && v < self.dims.nv);
        self.data[v * self.dims.nu + u]
    }

    /// Set pixel at column `u`, row `v`.
    #[inline]
    pub fn set(&mut self, u: usize, v: usize, x: f32) {
        debug_assert!(u < self.dims.nu && v < self.dims.nv);
        self.data[v * self.dims.nu + u] = x;
    }

    /// Row `v` as a contiguous slice (the unit the ramp filter convolves).
    #[inline]
    pub fn row(&self, v: usize) -> &[f32] {
        let nu = self.dims.nu;
        &self.data[v * nu..(v + 1) * nu]
    }

    /// Mutable row `v`.
    #[inline]
    pub fn row_mut(&mut self, v: usize) -> &mut [f32] {
        let nu = self.dims.nu;
        &mut self.data[v * nu..(v + 1) * nu]
    }

    /// Bilinear sample at sub-pixel `(u, v)` (Algorithm 3).
    #[inline]
    pub fn sample(&self, u: f32, v: f32) -> f32 {
        interp2(&self.data, self.dims.nu, self.dims.nv, u, v)
    }

    /// Transpose into a [`TransposedProjection`] (Algorithm 4 line 3).
    ///
    /// Uses 32x32 tiling so both source reads and destination writes stay
    /// within cache lines — the paper notes the transpose cost is a small
    /// fraction of the filtering stage (Section 3.2.3) and the tiling is
    /// what keeps it that way.
    pub fn transposed(&self) -> TransposedProjection {
        const TILE: usize = 32;
        let (nu, nv) = (self.dims.nu, self.dims.nv);
        let mut out = vec![0.0f32; nu * nv];
        for v0 in (0..nv).step_by(TILE) {
            for u0 in (0..nu).step_by(TILE) {
                let v1 = (v0 + TILE).min(nv);
                let u1 = (u0 + TILE).min(nu);
                for v in v0..v1 {
                    for u in u0..u1 {
                        if let (Some(dst), Some(&src)) =
                            (out.get_mut(u * nv + v), self.data.get(v * nu + u))
                        {
                            *dst = src;
                        }
                    }
                }
            }
        }
        TransposedProjection {
            dims: self.dims,
            data: out,
        }
    }

    /// Re-tile into a [`BlockedProjection`] ("texture" layout).
    pub fn blocked(&self) -> BlockedProjection {
        BlockedProjection::from_image(self)
    }
}

/// A projection stored `u`-major: `idx = u * Nv + v`.
///
/// `sample(v, u)` argument order follows the paper's Algorithm 4 line 14
/// (`interp2(Q~, v, u)`): the first coordinate varies fastest in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TransposedProjection {
    dims: Dims2, // dims of the ORIGINAL image (nu columns, nv rows)
    data: Vec<f32>,
}

impl TransposedProjection {
    /// Dimensions of the original (untransposed) projection.
    #[inline]
    pub fn dims(&self) -> Dims2 {
        self.dims
    }

    /// Raw `u`-major pixels.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Pixel at original coordinates (column `u`, row `v`).
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> f32 {
        debug_assert!(u < self.dims.nu && v < self.dims.nv);
        self.data[u * self.dims.nv + v]
    }

    /// Bilinear sample at original sub-pixel coordinates `(u, v)`.
    ///
    /// Internally samples the transposed buffer at `(v, u)`, so the fast
    /// interpolation axis is the contiguous one.
    #[inline]
    pub fn sample(&self, u: f32, v: f32) -> f32 {
        // In the transposed buffer, "width" is nv (v is the fast axis).
        interp2(&self.data, self.dims.nv, self.dims.nu, v, u)
    }

    /// Reinterpret the transposed buffer as a row-major image with swapped
    /// dimensions (zero copy): pixel `(u, v)` of the original appears at
    /// `(v, u)` of the returned image. Used to build the blocked
    /// ("texture") layout of the *transposed* projection for the Tex-Tran
    /// kernel variant.
    pub fn as_swapped_image(&self) -> ProjectionImage {
        ProjectionImage {
            dims: self.dims.transposed(),
            data: self.data.clone(),
        }
    }

    /// Transpose back to a row-major [`ProjectionImage`].
    pub fn untransposed(&self) -> ProjectionImage {
        const TILE: usize = 32;
        let (nu, nv) = (self.dims.nu, self.dims.nv);
        let mut out = vec![0.0f32; nu * nv];
        for u0 in (0..nu).step_by(TILE) {
            for v0 in (0..nv).step_by(TILE) {
                let u1 = (u0 + TILE).min(nu);
                let v1 = (v0 + TILE).min(nv);
                for u in u0..u1 {
                    for v in v0..v1 {
                        out[v * nu + u] = self.data[u * nv + v];
                    }
                }
            }
        }
        ProjectionImage {
            dims: self.dims,
            data: out,
        }
    }
}

/// Tile side of the blocked ("texture-like") layout.
pub const TEXTURE_TILE: usize = 8;

/// A projection stored in 8x8 tiles, emulating the space-filling layout a
/// GPU texture unit uses so that 2D-local fetches hit the same cache line
/// in *both* directions.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedProjection {
    dims: Dims2,
    tiles_u: usize,
    tiles_v: usize,
    data: Vec<f32>,
}

impl BlockedProjection {
    /// Build from a row-major image.
    pub fn from_image(img: &ProjectionImage) -> Self {
        let dims = img.dims();
        let tiles_u = dims.nu.div_ceil(TEXTURE_TILE);
        let tiles_v = dims.nv.div_ceil(TEXTURE_TILE);
        let mut data = vec![0.0f32; tiles_u * tiles_v * TEXTURE_TILE * TEXTURE_TILE];
        for v in 0..dims.nv {
            for u in 0..dims.nu {
                let idx = Self::index_for(tiles_u, u, v);
                data[idx] = img.get(u, v);
            }
        }
        Self {
            dims,
            tiles_u,
            tiles_v,
            data,
        }
    }

    #[inline]
    fn index_for(tiles_u: usize, u: usize, v: usize) -> usize {
        let (tu, iu) = (u / TEXTURE_TILE, u % TEXTURE_TILE);
        let (tv, iv) = (v / TEXTURE_TILE, v % TEXTURE_TILE);
        ((tv * tiles_u + tu) * TEXTURE_TILE + iv) * TEXTURE_TILE + iu
    }

    /// Dimensions of the original projection.
    #[inline]
    pub fn dims(&self) -> Dims2 {
        self.dims
    }

    /// Texel fetch with border handling (zero outside).
    #[inline]
    pub fn fetch(&self, u: isize, v: isize) -> f32 {
        if u < 0 || v < 0 || u >= self.dims.nu as isize || v >= self.dims.nv as isize {
            return 0.0;
        }
        self.data
            .get(Self::index_for(self.tiles_u, u as usize, v as usize))
            .copied()
            .unwrap_or(0.0)
    }

    /// Bilinear sample at sub-pixel `(u, v)` — the texture-unit fetch of
    /// the paper's Listing 1 (`cudaFilterModeLinear` behaviour).
    #[inline]
    pub fn sample(&self, u: f32, v: f32) -> f32 {
        let nu = u.floor();
        let nv = v.floor();
        let du = u - nu;
        let dv = v - nv;
        let (nu, nv) = (nu as isize, nv as isize);
        let t1 = self.fetch(nu, nv) * (1.0 - du) + self.fetch(nu + 1, nv) * du;
        let t2 = self.fetch(nu, nv + 1) * (1.0 - du) + self.fetch(nu + 1, nv + 1) * du;
        t1 * (1.0 - dv) + t2 * dv
    }

    /// Nearest-neighbour fetch (`cudaFilterModePoint`), used by the RTK-32
    /// baseline variant.
    #[inline]
    pub fn sample_nearest(&self, u: f32, v: f32) -> f32 {
        self.fetch((u + 0.5).floor() as isize, (v + 0.5).floor() as isize)
    }
}

/// An ordered stack of projections sharing one detector shape — the input
/// `E` (raw) or `Q` (filtered) of the paper's algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionStack {
    dims: Dims2,
    images: Vec<ProjectionImage>,
}

impl ProjectionStack {
    /// Create an empty stack for projections of shape `dims`.
    pub fn new(dims: Dims2) -> Self {
        Self {
            dims,
            images: Vec::new(),
        }
    }

    /// Create a stack of `n` zero projections.
    pub fn zeros(dims: Dims2, n: usize) -> Self {
        Self {
            dims,
            images: (0..n).map(|_| ProjectionImage::zeros(dims)).collect(),
        }
    }

    /// Build from existing images; all must share `dims`.
    pub fn from_images(dims: Dims2, images: Vec<ProjectionImage>) -> Result<Self> {
        for img in &images {
            if img.dims() != dims {
                return Err(CtError::ShapeMismatch {
                    expected: format!("{}x{}", dims.nu, dims.nv),
                    actual: format!("{}x{}", img.dims().nu, img.dims().nv),
                });
            }
        }
        Ok(Self { dims, images })
    }

    /// Detector dimensions.
    #[inline]
    pub fn dims(&self) -> Dims2 {
        self.dims
    }

    /// Number of projections currently in the stack.
    #[inline]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when the stack holds no projections.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Append a projection.
    pub fn push(&mut self, img: ProjectionImage) -> Result<()> {
        if img.dims() != self.dims {
            return Err(CtError::ShapeMismatch {
                expected: format!("{}x{}", self.dims.nu, self.dims.nv),
                actual: format!("{}x{}", img.dims().nu, img.dims().nv),
            });
        }
        self.images.push(img);
        Ok(())
    }

    /// Projection `i`. Panics if `i` is out of range, matching `Vec`
    /// indexing semantics.
    #[inline]
    pub fn get(&self, i: usize) -> &ProjectionImage {
        // analyze: allow(panic, reason = "std-slice-style accessor: an out-of-range index is a caller bug and panics like Vec indexing")
        &self.images[i]
    }

    /// Mutable projection `i`. Panics if `i` is out of range, matching
    /// `Vec` indexing semantics.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut ProjectionImage {
        // analyze: allow(panic, reason = "std-slice-style accessor: an out-of-range index is a caller bug and panics like Vec indexing")
        &mut self.images[i]
    }

    /// Iterate over the projections.
    pub fn iter(&self) -> impl Iterator<Item = &ProjectionImage> {
        self.images.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ProjectionImage> {
        self.images.iter_mut()
    }

    /// Consume into the image vector.
    pub fn into_images(self) -> Vec<ProjectionImage> {
        self.images
    }

    /// Flatten to one contiguous buffer (projection-major), the wire format
    /// used by the AllGather step.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len() * self.dims.len());
        for img in &self.images {
            out.extend_from_slice(img.data());
        }
        out
    }

    /// Rebuild from the wire format produced by [`Self::to_flat`].
    pub fn from_flat(dims: Dims2, flat: &[f32]) -> Result<Self> {
        let per = dims.len();
        if per == 0 || !flat.len().is_multiple_of(per) {
            return Err(CtError::ShapeMismatch {
                expected: format!("multiple of {per}"),
                actual: format!("{}", flat.len()),
            });
        }
        let images = flat
            .chunks_exact(per)
            .map(|c| ProjectionImage::from_vec(dims, c.to_vec()).expect("chunk is sized"))
            .collect();
        Ok(Self { dims, images })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_image(nu: usize, nv: usize) -> ProjectionImage {
        let mut img = ProjectionImage::zeros(Dims2::new(nu, nv));
        for v in 0..nv {
            for u in 0..nu {
                img.set(u, v, (v * nu + u) as f32);
            }
        }
        img
    }

    #[test]
    fn row_major_indexing() {
        let img = ramp_image(5, 3);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(4, 0), 4.0);
        assert_eq!(img.get(0, 1), 5.0);
        assert_eq!(img.row(2), &[10.0, 11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(ProjectionImage::from_vec(Dims2::new(2, 2), vec![0.0; 3]).is_err());
        assert!(ProjectionImage::from_vec(Dims2::new(2, 2), vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_round_trip() {
        // Use a non-square, non-tile-multiple shape to stress the tiling.
        let img = ramp_image(37, 53);
        let t = img.transposed();
        for v in 0..53 {
            for u in 0..37 {
                assert_eq!(t.get(u, v), img.get(u, v));
            }
        }
        let back = t.untransposed();
        assert_eq!(back, img);
    }

    #[test]
    fn transposed_sampling_matches_row_major() {
        let img = ramp_image(16, 12);
        let t = img.transposed();
        for &(u, v) in &[(0.5f32, 0.5f32), (3.25, 7.75), (15.0, 11.0), (0.0, 0.0)] {
            let a = img.sample(u, v);
            let b = t.sample(u, v);
            assert!((a - b).abs() < 1e-5, "({u},{v}): {a} vs {b}");
        }
    }

    #[test]
    fn blocked_round_trip_and_sampling() {
        let img = ramp_image(19, 11); // not a tile multiple
        let b = img.blocked();
        for v in 0..11 {
            for u in 0..19 {
                assert_eq!(b.fetch(u as isize, v as isize), img.get(u, v));
            }
        }
        assert_eq!(b.fetch(-1, 0), 0.0);
        assert_eq!(b.fetch(0, 100), 0.0);
        for &(u, v) in &[(0.5f32, 0.5f32), (10.3, 7.9), (18.0, 10.0)] {
            let a = img.sample(u, v);
            let c = b.sample(u, v);
            assert!((a - c).abs() < 1e-5, "({u},{v}): {a} vs {c}");
        }
    }

    #[test]
    fn blocked_nearest_matches_reference() {
        let img = ramp_image(9, 9);
        let b = img.blocked();
        assert_eq!(b.sample_nearest(3.4, 2.6), img.get(3, 3));
        assert_eq!(b.sample_nearest(3.6, 2.4), img.get(4, 2));
    }

    #[test]
    fn stack_push_and_shape_check() {
        let dims = Dims2::new(4, 4);
        let mut s = ProjectionStack::new(dims);
        assert!(s.is_empty());
        s.push(ProjectionImage::zeros(dims)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.push(ProjectionImage::zeros(Dims2::new(3, 3))).is_err());
    }

    #[test]
    fn stack_flat_round_trip() {
        let dims = Dims2::new(3, 2);
        let imgs = vec![ramp_image(3, 2), ramp_image(3, 2)];
        let s = ProjectionStack::from_images(dims, imgs).unwrap();
        let flat = s.to_flat();
        assert_eq!(flat.len(), 12);
        let s2 = ProjectionStack::from_flat(dims, &flat).unwrap();
        assert_eq!(s, s2);
        assert!(ProjectionStack::from_flat(dims, &flat[..7]).is_err());
    }

    #[test]
    fn from_images_rejects_mixed_shapes() {
        let dims = Dims2::new(3, 2);
        let imgs = vec![ramp_image(3, 2), ramp_image(2, 3)];
        assert!(ProjectionStack::from_images(dims, imgs).is_err());
    }
}
