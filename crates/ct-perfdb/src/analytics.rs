//! Robust trajectory analytics: median/MAD statistics, latest-run
//! regression verdicts and change-point scans.
//!
//! Perf series are heavy-tailed — one noisy-neighbour run should not
//! move the baseline — so everything here is built on the median and
//! the median absolute deviation (MAD) rather than mean/stddev. The MAD
//! is rescaled by 1.4826 (the normal-consistency constant) so `nsigma`
//! thresholds read like familiar z-scores, and a relative floor keeps a
//! near-zero MAD (identical repeated measurements) from flagging
//! harmless jitter as a regression.

/// Median of `values` (ignores non-finite entries). `None` when no
/// finite values remain.
pub fn median(values: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    })
}

/// Median absolute deviation around the median. `None` when `values`
/// has no finite entries.
pub fn mad(values: &[f64]) -> Option<f64> {
    let m = median(values)?;
    let dev: Vec<f64> = values
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .map(|x| (x - m).abs())
        .collect();
    median(&dev)
}

/// Which direction of change is *bad* for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Higher is better (throughput: GUPS, overlap efficiency). A drop
    /// is a regression.
    Higher,
    /// Lower is better (latency: stage p95, stall seconds). A rise is
    /// a regression.
    Lower,
}

impl Direction {
    /// Parse a CLI spelling (`higher` / `lower`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "higher" => Ok(Self::Higher),
            "lower" => Ok(Self::Lower),
            other => Err(format!(
                "unknown direction {other:?} (expected \"higher\" or \"lower\")"
            )),
        }
    }
}

/// Tuning for regression / change-point detection.
#[derive(Debug, Clone, Copy)]
pub struct RegressionPolicy {
    /// How many preceding runs form the baseline window.
    pub window: usize,
    /// Robust z-score threshold: flag when the run sits more than
    /// `nsigma` scale units on the bad side of the baseline median.
    pub nsigma: f64,
    /// Relative noise floor: the detection scale is at least
    /// `rel_floor * |median|`, so a window of identical measurements
    /// (MAD = 0) does not flag sub-noise jitter.
    pub rel_floor: f64,
    /// Which direction of change is bad.
    pub direction: Direction,
}

impl Default for RegressionPolicy {
    fn default() -> Self {
        Self {
            window: 8,
            nsigma: 4.0,
            rel_floor: 0.05,
            direction: Direction::Higher,
        }
    }
}

impl RegressionPolicy {
    /// The detection scale for a baseline window: normal-consistent MAD
    /// (`1.4826 * mad`) floored at `rel_floor * |median|`.
    fn scale(&self, baseline_median: f64, baseline_mad: f64) -> f64 {
        let consistent = 1.4826 * baseline_mad;
        let floor = self.rel_floor * baseline_median.abs();
        consistent.max(floor)
    }
}

/// The outcome of judging the latest run against its baseline window.
#[derive(Debug, Clone, Copy)]
pub struct Verdict {
    /// Baseline window size actually used (≤ policy window).
    pub n: usize,
    /// Baseline median.
    pub baseline: f64,
    /// Baseline MAD (raw, not rescaled).
    pub mad: f64,
    /// Detection scale (consistent MAD with relative floor applied).
    pub scale: f64,
    /// The judged (latest) value.
    pub latest: f64,
    /// The acceptance bound the latest value was compared against:
    /// `baseline - nsigma*scale` for [`Direction::Higher`],
    /// `baseline + nsigma*scale` for [`Direction::Lower`].
    pub bound: f64,
    /// Did the latest value cross the bound on the bad side?
    pub regressed: bool,
}

/// Judge the last value of `values` against the (up to) `policy.window`
/// values preceding it. Returns `None` when there are fewer than two
/// values (nothing to compare against).
pub fn check_latest(values: &[f64], policy: &RegressionPolicy) -> Option<Verdict> {
    let (&latest, history) = values.split_last()?;
    if history.is_empty() {
        return None;
    }
    let start = history.len().saturating_sub(policy.window);
    let window = &history[start..];
    let baseline = median(window)?;
    let window_mad = mad(window)?;
    let scale = policy.scale(baseline, window_mad);
    let (bound, regressed) = match policy.direction {
        Direction::Higher => {
            let b = baseline - policy.nsigma * scale;
            (b, latest < b)
        }
        Direction::Lower => {
            let b = baseline + policy.nsigma * scale;
            (b, latest > b)
        }
    };
    Some(Verdict {
        n: window.len(),
        baseline,
        mad: window_mad,
        scale,
        latest,
        bound,
        regressed,
    })
}

/// A point in the series that departed from its trailing window.
#[derive(Debug, Clone, Copy)]
pub struct ChangePoint {
    /// Index into the input series.
    pub index: usize,
    /// The departing value.
    pub value: f64,
    /// Median of the trailing window it departed from.
    pub baseline: f64,
    /// Robust z-score (signed: negative means below baseline).
    pub z: f64,
}

/// Scan the whole series for values more than `policy.nsigma` scale
/// units from the median of their trailing window (two-sided — a trend
/// report wants to see improvements shift the level too, not just
/// regressions). Each value needs at least two predecessors in-window
/// to be judged.
pub fn change_points(values: &[f64], policy: &RegressionPolicy) -> Vec<ChangePoint> {
    let mut out = Vec::new();
    for i in 2..values.len() {
        let start = i.saturating_sub(policy.window);
        let window = &values[start..i];
        let (baseline, window_mad) = match (median(window), mad(window)) {
            (Some(m), Some(d)) => (m, d),
            _ => continue,
        };
        let scale = policy.scale(baseline, window_mad);
        if scale <= 0.0 {
            continue;
        }
        let z = (values[i] - baseline) / scale;
        if z.abs() >= policy.nsigma {
            out.push(ChangePoint {
                index: i,
                value: values[i],
                baseline,
                z,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(mad(&[1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 100.0]), Some(1.0));
        // Non-finite entries are ignored, not poisonous.
        assert_eq!(median(&[1.0, f64::INFINITY, 3.0]), Some(2.0));
    }

    #[test]
    fn clean_series_passes() {
        let vals = [0.20, 0.21, 0.205, 0.198, 0.202, 0.207];
        let v = check_latest(&vals, &RegressionPolicy::default()).expect("verdict");
        assert!(!v.regressed, "steady series must not flag: {v:?}");
    }

    #[test]
    fn collapse_is_flagged_for_higher_is_better() {
        let vals = [0.20, 0.21, 0.205, 0.198, 0.202, 0.10];
        let v = check_latest(&vals, &RegressionPolicy::default()).expect("verdict");
        assert!(v.regressed, "50% throughput drop must flag: {v:?}");
        assert_eq!(v.latest, 0.10);
        assert_eq!(v.n, 5);
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let vals = [0.20, 0.21, 0.205, 0.198, 0.202, 0.40];
        let v = check_latest(&vals, &RegressionPolicy::default()).expect("verdict");
        assert!(!v.regressed, "doubling throughput is not a regression");
    }

    #[test]
    fn lower_is_better_flags_rises() {
        let policy = RegressionPolicy {
            direction: Direction::Lower,
            ..RegressionPolicy::default()
        };
        let steady = [1.0, 1.05, 0.98, 1.02, 1.01];
        assert!(!check_latest(&steady, &policy).expect("verdict").regressed);
        let spike = [1.0, 1.05, 0.98, 1.02, 2.5];
        assert!(check_latest(&spike, &policy).expect("verdict").regressed);
    }

    #[test]
    fn zero_mad_window_uses_relative_floor() {
        // Identical history: MAD = 0. A 1% wobble sits inside the 5%
        // relative floor; a 40% collapse does not.
        let wobble = [0.2, 0.2, 0.2, 0.2, 0.202];
        let policy = RegressionPolicy {
            nsigma: 1.0,
            ..RegressionPolicy::default()
        };
        assert!(!check_latest(&wobble, &policy).expect("verdict").regressed);
        let crash = [0.2, 0.2, 0.2, 0.2, 0.12];
        assert!(check_latest(&crash, &policy).expect("verdict").regressed);
    }

    #[test]
    fn window_bounds_history() {
        // Old slow era outside the window must not mask a fresh drop.
        let policy = RegressionPolicy {
            window: 4,
            ..RegressionPolicy::default()
        };
        let vals = [0.05, 0.05, 0.30, 0.31, 0.29, 0.30, 0.15];
        let v = check_latest(&vals, &policy).expect("verdict");
        assert_eq!(v.n, 4);
        assert!(v.regressed, "drop vs recent window must flag: {v:?}");
    }

    #[test]
    fn too_short_series_is_none() {
        assert!(check_latest(&[], &RegressionPolicy::default()).is_none());
        assert!(check_latest(&[0.2], &RegressionPolicy::default()).is_none());
    }

    #[test]
    fn change_points_find_the_step() {
        let vals = [0.20, 0.205, 0.198, 0.202, 0.31, 0.305, 0.31, 0.308];
        let cps = change_points(&vals, &RegressionPolicy::default());
        assert!(
            cps.iter().any(|c| c.index == 4 && c.z > 0.0),
            "step up at index 4 must appear: {cps:?}"
        );
        let flat = [0.20, 0.205, 0.198, 0.202, 0.201, 0.199];
        assert!(change_points(&flat, &RegressionPolicy::default()).is_empty());
    }
}
