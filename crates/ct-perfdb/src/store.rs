//! The append-only JSONL trajectory store and its query filter.
//!
//! A store is just a file of [`RunRecord`] lines. Append never rewrites
//! (concurrent producers interleave whole lines; a torn final line from
//! a crashed producer is reported with its line number on load, not
//! silently skipped), and queries load the whole file — trajectories
//! are thousands of records at most, not millions.

use std::io::Write as _;
use std::path::Path;

use crate::record::RunRecord;

/// An in-memory view of a trajectory store: the records in file order
/// (which is append order, i.e. chronological per producer).
#[derive(Debug, Clone, Default)]
pub struct PerfDb {
    /// All records, in file (append) order.
    pub records: Vec<RunRecord>,
}

impl PerfDb {
    /// Parse a JSONL text. Blank lines are allowed (trailing newline,
    /// hand-edited gaps); a malformed line fails the whole load with
    /// its 1-based line number, because a perf gate that silently drops
    /// records can silently stop gating.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = RunRecord::from_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            records.push(rec);
        }
        Ok(Self { records })
    }

    /// Load a store from disk. A missing file is an error here; callers
    /// that want "empty until first append" semantics check existence
    /// first (the `perfscope` bin maps this to its *unreadable* exit).
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Append records to the store file, creating it (and its parent
    /// directory) if needed. Each record is one line; the file is
    /// opened in append mode so existing history is never rewritten.
    pub fn append(path: &Path, records: &[RunRecord]) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut buf = String::new();
        for r in records {
            buf.push_str(&r.to_json());
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())
    }

    /// Records matching `filter`, in store order.
    pub fn select<'a>(&'a self, filter: &Filter) -> Vec<&'a RunRecord> {
        self.records.iter().filter(|r| filter.matches(r)).collect()
    }
}

/// A conjunctive record filter: every set field must match. The
/// `perfscope` CLI flags map onto this one-to-one.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Producing tool (`gups`, `tracereport`, `monitor`, `distributed`).
    pub source: Option<String>,
    /// Machine fingerprint (16 hex chars, [`crate::MachineInfo::fingerprint`]).
    pub fingerprint: Option<String>,
    /// Kernel name from the run config.
    pub kernel: Option<String>,
    /// Projection layout from the run config.
    pub layout: Option<String>,
    /// Thread / rank count from the run config.
    pub threads: Option<u64>,
    /// Problem-size string from the run config.
    pub problem: Option<String>,
}

impl Filter {
    /// Does `r` pass every set field?
    pub fn matches(&self, r: &RunRecord) -> bool {
        if let Some(want) = &self.source {
            if &r.source != want {
                return false;
            }
        }
        if let Some(want) = &self.fingerprint {
            if &r.fingerprint() != want {
                return false;
            }
        }
        if let Some(want) = &self.kernel {
            if &r.config.kernel != want {
                return false;
            }
        }
        if let Some(want) = &self.layout {
            if &r.config.layout != want {
                return false;
            }
        }
        if let Some(want) = self.threads {
            if r.config.threads != want {
                return false;
            }
        }
        if let Some(want) = &self.problem {
            if &r.config.problem != want {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineInfo;

    fn rec(source: &str, kernel: &str, threads: u64, gups: f64) -> RunRecord {
        let mut r = RunRecord::new(
            source,
            1_754_600_000_000,
            MachineInfo {
                cpu_model: "Test CPU".into(),
                cpu_flags: vec!["avx2".into()],
                logical_cpus: 4,
            },
        );
        r.config.kernel = kernel.to_string();
        r.config.threads = threads;
        r.set_metric("gups_median", gups);
        r
    }

    #[test]
    fn jsonl_round_trip_preserves_order() {
        let records = vec![
            rec("gups", "lanes", 1, 0.21),
            rec("gups", "warp", 1, 0.15),
            rec("monitor", "", 0, 0.0),
        ];
        let text: String = records
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let db = PerfDb::from_jsonl(&text).expect("parses");
        assert_eq!(db.records, records);
    }

    #[test]
    fn blank_lines_ok_malformed_line_is_numbered() {
        let good = rec("gups", "lanes", 1, 0.2).to_json();
        let text = format!("{good}\n\n{good}\n{{not json\n");
        let err = PerfDb::from_jsonl(&text).expect_err("malformed line fails");
        assert!(err.contains("line 4"), "error carries line number: {err}");
    }

    #[test]
    fn append_creates_and_extends() {
        let dir = std::env::temp_dir().join("ct-perfdb-test-append");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("traj.jsonl");
        PerfDb::append(&path, &[rec("gups", "lanes", 1, 0.2)]).expect("first append");
        PerfDb::append(&path, &[rec("gups", "lanes", 1, 0.22)]).expect("second append");
        let db = PerfDb::load(&path).expect("loads");
        assert_eq!(db.records.len(), 2);
        assert_eq!(db.records[1].metric("gups_median"), Some(0.22));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = PerfDb::load(Path::new("/nonexistent/ct-perfdb.jsonl"))
            .expect_err("missing file fails");
        assert!(err.contains("ct-perfdb.jsonl"), "error names path: {err}");
    }

    #[test]
    fn filter_is_conjunctive() {
        let db = PerfDb {
            records: vec![
                rec("gups", "lanes", 1, 0.21),
                rec("gups", "lanes", 4, 0.6),
                rec("gups", "warp", 1, 0.15),
                rec("monitor", "", 0, 0.0),
            ],
        };
        assert_eq!(db.select(&Filter::default()).len(), 4);
        let f = Filter {
            source: Some("gups".into()),
            kernel: Some("lanes".into()),
            ..Filter::default()
        };
        assert_eq!(db.select(&f).len(), 2);
        let f = Filter {
            threads: Some(1),
            ..f
        };
        let got = db.select(&f);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].metric("gups_median"), Some(0.21));
        let f = Filter {
            fingerprint: Some("0000000000000000".into()),
            ..Filter::default()
        };
        assert!(db.select(&f).is_empty());
        let fp = db.records[0].fingerprint();
        let f = Filter {
            fingerprint: Some(fp),
            ..Filter::default()
        };
        assert_eq!(db.select(&f).len(), 4);
    }
}
