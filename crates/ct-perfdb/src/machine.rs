//! Machine provenance: what hardware produced a measurement.
//!
//! Lived in `ifdk_bench::gups` originally (stamped into `BENCH_gups.json`
//! headers); promoted here so every trajectory producer (`gups`,
//! `perfscope`, `benchdiff`, the distributed example) shares one probe
//! and one [`fingerprint`](MachineInfo::fingerprint) definition — the
//! key the perf trajectory is partitioned by.

/// Provenance of the machine a measurement ran on. The fields are
/// deliberately coarse: the CPU model string, the vector-ISA flags that
/// change what the autovectorizer can emit, and the logical CPU count.
/// Together they identify "comparable hardware" without tracking
/// anything volatile (frequency governors, load averages).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineInfo {
    /// CPU model string (`model name` from `/proc/cpuinfo`).
    pub cpu_model: String,
    /// SIMD-relevant ISA flags the CPU advertises (filtered from the
    /// `flags` line: sse4.2/avx/avx2/fma/avx512f and friends).
    pub cpu_flags: Vec<String>,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
}

impl MachineInfo {
    /// Flags worth recording for a back-projection kernel: the vector
    /// ISA levels that change what the autovectorizer can emit.
    const INTERESTING_FLAGS: [&'static str; 8] = [
        "sse4_1", "sse4_2", "avx", "avx2", "fma", "avx512f", "avx512vl", "neon",
    ];

    /// Detect the current machine. Falls back to `"unknown"` fields on
    /// platforms without `/proc/cpuinfo`.
    pub fn detect() -> Self {
        let logical_cpus = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let field = |name: &str| -> Option<String> {
            cpuinfo.lines().find_map(|l| {
                let (k, v) = l.split_once(':')?;
                (k.trim() == name).then(|| v.trim().to_string())
            })
        };
        let cpu_model = field("model name")
            .or_else(|| field("Processor"))
            .unwrap_or_else(|| "unknown".to_string());
        let cpu_flags = field("flags")
            .or_else(|| field("Features"))
            .map(|f| {
                let have: Vec<&str> = f.split_whitespace().collect();
                Self::INTERESTING_FLAGS
                    .iter()
                    .filter(|want| have.contains(want))
                    .map(|s| s.to_string())
                    .collect()
            })
            .unwrap_or_default();
        Self {
            cpu_model,
            cpu_flags,
            logical_cpus,
        }
    }

    /// A stable 16-hex-digit fingerprint of this machine's provenance:
    /// FNV-1a over the model string, the sorted flag set and the logical
    /// CPU count. Two records with the same fingerprint are "the same
    /// machine" as far as the trajectory analytics are concerned —
    /// comparing GUPS across fingerprints compares hardware, not code.
    pub fn fingerprint(&self) -> String {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.cpu_model.as_bytes());
        eat(&[0x1f]);
        // Order-independent: detect() preserves INTERESTING_FLAGS order,
        // but hand-built records should not depend on it.
        let mut flags: Vec<&str> = self.cpu_flags.iter().map(String::as_str).collect();
        flags.sort_unstable();
        for f in flags {
            eat(f.as_bytes());
            eat(&[0x1e]);
        }
        eat(&[0x1f]);
        eat(&self.logical_cpus.to_le_bytes());
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_reports_cpus() {
        assert!(MachineInfo::detect().logical_cpus >= 1);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = MachineInfo {
            cpu_model: "Example CPU".into(),
            cpu_flags: vec!["avx2".into(), "fma".into()],
            logical_cpus: 8,
        };
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
        // Flag order does not matter...
        let reordered = MachineInfo {
            cpu_flags: vec!["fma".into(), "avx2".into()],
            ..a.clone()
        };
        assert_eq!(a.fingerprint(), reordered.fingerprint());
        // ...but every field's value does.
        for other in [
            MachineInfo {
                cpu_model: "Other CPU".into(),
                ..a.clone()
            },
            MachineInfo {
                cpu_flags: vec!["avx2".into()],
                ..a.clone()
            },
            MachineInfo {
                logical_cpus: 16,
                ..a.clone()
            },
        ] {
            assert_ne!(a.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn flag_concatenation_cannot_collide() {
        // ["ab", "c"] and ["a", "bc"] must hash differently (the 0x1e
        // separator between flags).
        let x = MachineInfo {
            cpu_model: "m".into(),
            cpu_flags: vec!["ab".into(), "c".into()],
            logical_cpus: 1,
        };
        let y = MachineInfo {
            cpu_flags: vec!["a".into(), "bc".into()],
            ..x.clone()
        };
        assert_ne!(x.fingerprint(), y.fingerprint());
    }
}
