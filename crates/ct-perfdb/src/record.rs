//! The versioned run record: one measurement outcome, annotated with
//! enough provenance to compare it against past and future runs.
//!
//! Serialization is hand-rolled on `ct_obs::jsonw` / `ct_obs::chrome::json`
//! like every other machine-readable artifact in the workspace. The
//! schema string is the compatibility contract:
//!
//! * [`to_json`](RunRecord::to_json) always emits every field, so
//!   `from_json(to_json(r)) == r` exactly;
//! * [`from_json`](RunRecord::from_json) ignores unknown fields
//!   (forward compatibility: a v1 reader skips what a v1.x writer adds)
//!   and tolerates missing optional sections (machine/config/metrics
//!   default), but rejects a missing or different `schema` outright —
//!   silently misreading records from a future incompatible schema is
//!   how trend analytics go quietly wrong.

use std::collections::BTreeMap;

use crate::machine::MachineInfo;
use ct_obs::chrome::json::{self, Value};
use ct_obs::jsonw::{arr, Obj};

/// Schema identifier stamped into every record. Bump the trailing
/// version only for incompatible changes; additive fields do not need a
/// bump (readers skip unknown fields).
pub const SCHEMA: &str = "ifdk-run/v1";

/// What was run: the knobs that make two measurements comparable (or
/// not). Producers fill what they know and leave the rest defaulted —
/// `gups` has no grid, the distributed example has no tile string.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// Back-projection kernel name (`scalar`, `lanes`, `lanes-fma`, ...).
    pub kernel: String,
    /// Projection memory layout (`standard`, `transposed`).
    pub layout: String,
    /// Worker threads (or ranks, for the distributed pipeline).
    pub threads: u64,
    /// Process-grid rows (distributed runs; 0 when not applicable).
    pub grid_rows: u64,
    /// Process-grid columns (distributed runs; 0 when not applicable).
    pub grid_cols: u64,
    /// Tile / blocking shape as a display string (e.g. `"8x64"`).
    pub tile: String,
    /// Problem-size description (e.g. `"256^3"`, `"64^3 x 192p"`).
    pub problem: String,
}

/// One appended trajectory entry: who measured (source bin), when
/// (unix milliseconds), where ([`MachineInfo`]), what ([`RunConfig`])
/// and the outcome metrics by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Producing tool: `gups`, `tracereport`, `monitor`, `distributed`.
    pub source: String,
    /// Wall-clock timestamp in unix milliseconds
    /// (`ct_obs::clock::unix_millis`).
    pub t_unix_ms: u64,
    /// Machine provenance; its fingerprint keys the trajectory.
    pub machine: MachineInfo,
    /// Run configuration.
    pub config: RunConfig,
    /// Outcome metrics by name (`gups_median`, `overlap_efficiency`,
    /// `stage.bp.p95_ns`, ...). BTreeMap so serialization order — and
    /// therefore the JSONL bytes — is deterministic.
    pub metrics: BTreeMap<String, f64>,
}

impl RunRecord {
    /// Start a record for `source` measured at `t_unix_ms` on `machine`.
    pub fn new(source: &str, t_unix_ms: u64, machine: MachineInfo) -> Self {
        Self {
            source: source.to_string(),
            t_unix_ms,
            machine,
            ..Self::default()
        }
    }

    /// Set an outcome metric. Non-finite values are dropped rather than
    /// stored: the JSON writer would clamp them to `0`, and a silent
    /// zero in a throughput trajectory reads as a catastrophic
    /// regression instead of a broken probe.
    pub fn set_metric(&mut self, name: &str, value: f64) -> &mut Self {
        if value.is_finite() {
            self.metrics.insert(name.to_string(), value);
        }
        self
    }

    /// Look up an outcome metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Serialize to one line of compact JSON (a JSONL record). Every
    /// field is always emitted so the round trip through
    /// [`from_json`](Self::from_json) is exact.
    pub fn to_json(&self) -> String {
        let mut machine = Obj::new();
        machine
            .field_str("cpu_model", &self.machine.cpu_model)
            .field_raw(
                "cpu_flags",
                &arr(self
                    .machine
                    .cpu_flags
                    .iter()
                    .map(|f| ct_obs::jsonw::str_lit(f))),
            )
            .field_u64("logical_cpus", self.machine.logical_cpus as u64);

        let mut config = Obj::new();
        config
            .field_str("kernel", &self.config.kernel)
            .field_str("layout", &self.config.layout)
            .field_u64("threads", self.config.threads)
            .field_u64("grid_rows", self.config.grid_rows)
            .field_u64("grid_cols", self.config.grid_cols)
            .field_str("tile", &self.config.tile)
            .field_str("problem", &self.config.problem);

        let metrics = arr(self.metrics.iter().map(|(name, value)| {
            let mut m = Obj::new();
            m.field_str("name", name).field_f64("value", *value);
            m.finish()
        }));

        let mut o = Obj::new();
        o.field_str("schema", SCHEMA)
            .field_str("source", &self.source)
            .field_u64("t_unix_ms", self.t_unix_ms)
            .field_str("fingerprint", &self.machine.fingerprint())
            .field_raw("machine", &machine.finish())
            .field_raw("config", &config.finish())
            .field_raw("metrics", &metrics);
        o.finish()
    }

    /// Parse one JSONL line. Rejects missing/foreign `schema` values
    /// with an error naming what was found; tolerates unknown fields
    /// and missing optional sections (see module docs).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("run record missing \"schema\" field")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported run-record schema {schema:?} (this reader understands {SCHEMA:?})"
            ));
        }
        let source = v
            .get("source")
            .and_then(Value::as_str)
            .ok_or("run record missing \"source\" field")?
            .to_string();
        let t_unix_ms =
            v.get("t_unix_ms")
                .and_then(Value::as_f64)
                .ok_or("run record missing numeric \"t_unix_ms\" field")? as u64;

        let mut machine = MachineInfo::default();
        if let Some(m) = v.get("machine") {
            if let Some(model) = m.get("cpu_model").and_then(Value::as_str) {
                machine.cpu_model = model.to_string();
            }
            if let Some(flags) = m.get("cpu_flags").and_then(Value::as_array) {
                machine.cpu_flags = flags
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect();
            }
            if let Some(n) = m.get("logical_cpus").and_then(Value::as_f64) {
                machine.logical_cpus = n as usize;
            }
        }

        let mut config = RunConfig::default();
        if let Some(c) = v.get("config") {
            if let Some(s) = c.get("kernel").and_then(Value::as_str) {
                config.kernel = s.to_string();
            }
            if let Some(s) = c.get("layout").and_then(Value::as_str) {
                config.layout = s.to_string();
            }
            if let Some(n) = c.get("threads").and_then(Value::as_f64) {
                config.threads = n as u64;
            }
            if let Some(n) = c.get("grid_rows").and_then(Value::as_f64) {
                config.grid_rows = n as u64;
            }
            if let Some(n) = c.get("grid_cols").and_then(Value::as_f64) {
                config.grid_cols = n as u64;
            }
            if let Some(s) = c.get("tile").and_then(Value::as_str) {
                config.tile = s.to_string();
            }
            if let Some(s) = c.get("problem").and_then(Value::as_str) {
                config.problem = s.to_string();
            }
        }

        let mut metrics = BTreeMap::new();
        if let Some(list) = v.get("metrics").and_then(Value::as_array) {
            for entry in list {
                let name = entry.get("name").and_then(Value::as_str);
                let value = entry.get("value").and_then(Value::as_f64);
                if let (Some(name), Some(value)) = (name, value) {
                    metrics.insert(name.to_string(), value);
                }
            }
        }

        Ok(Self {
            source,
            t_unix_ms,
            machine,
            config,
            metrics,
        })
    }

    /// The machine fingerprint this record is keyed by.
    pub fn fingerprint(&self) -> String {
        self.machine.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut r = RunRecord::new(
            "gups",
            1_754_600_000_123,
            MachineInfo {
                cpu_model: "Example CPU @ 3.00GHz".into(),
                cpu_flags: vec!["avx2".into(), "fma".into()],
                logical_cpus: 8,
            },
        );
        r.config = RunConfig {
            kernel: "lanes".into(),
            layout: "transposed".into(),
            threads: 4,
            grid_rows: 0,
            grid_cols: 0,
            tile: "8x64".into(),
            problem: "64^3".into(),
        };
        r.set_metric("gups_median", 0.2125)
            .set_metric("gups_mad", 0.003)
            .set_metric("secs_median", 1.5);
        r
    }

    #[test]
    fn exact_round_trip() {
        let r = sample();
        let parsed = RunRecord::from_json(&r.to_json()).expect("round trip parses");
        assert_eq!(parsed, r);
        // And the serialized bytes themselves are stable.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let line = sample().to_json();
        let with_extra =
            line.replacen("\"source\"", "\"future_field\":{\"a\":[1,2]},\"source\"", 1);
        let parsed = RunRecord::from_json(&with_extra).expect("extra fields tolerated");
        assert_eq!(parsed, sample());
    }

    #[test]
    fn missing_sections_default() {
        let line = r#"{"schema":"ifdk-run/v1","source":"monitor","t_unix_ms":12}"#;
        let parsed = RunRecord::from_json(line).expect("minimal record parses");
        assert_eq!(parsed.source, "monitor");
        assert_eq!(parsed.t_unix_ms, 12);
        assert_eq!(parsed.machine, MachineInfo::default());
        assert_eq!(parsed.config, RunConfig::default());
        assert!(parsed.metrics.is_empty());
    }

    #[test]
    fn wrong_schema_is_rejected_with_clear_error() {
        let line = sample().to_json().replace("ifdk-run/v1", "ifdk-run/v9");
        let err = RunRecord::from_json(&line).expect_err("wrong schema must fail");
        assert!(
            err.contains("ifdk-run/v9"),
            "error names found schema: {err}"
        );
        assert!(err.contains(SCHEMA), "error names supported schema: {err}");

        let no_schema = r#"{"source":"gups","t_unix_ms":1}"#;
        let err = RunRecord::from_json(no_schema).expect_err("missing schema must fail");
        assert!(err.contains("schema"), "error mentions schema: {err}");
    }

    #[test]
    fn non_finite_metrics_are_dropped() {
        let mut r = sample();
        r.set_metric("bad", f64::NAN)
            .set_metric("worse", f64::INFINITY);
        assert_eq!(r.metric("bad"), None);
        assert_eq!(r.metric("worse"), None);
        assert_eq!(r.metric("gups_median"), Some(0.2125));
    }

    #[test]
    fn fingerprint_field_matches_machine() {
        let r = sample();
        let line = r.to_json();
        let v = ct_obs::chrome::json::parse(&line).expect("parses");
        assert_eq!(
            v.get("fingerprint").and_then(Value::as_str),
            Some(r.machine.fingerprint().as_str())
        );
    }
}
