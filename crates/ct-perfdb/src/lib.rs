//! # ct-perfdb — the cross-run performance trajectory store
//!
//! Everything else in the workspace measures a *single* run: `gups`
//! sweeps the kernel, `tracereport` scores pipeline overlap (Eqs. 8-19),
//! `monitor` gates live stall telemetry. This crate is the memory those
//! measurements were missing: a versioned run-record schema
//! ([`RunRecord`], `ifdk-run/v1`) capturing machine provenance
//! ([`MachineInfo`] with a stable [`MachineInfo::fingerprint`]), run
//! configuration ([`RunConfig`]: kernel, threads, grid R×C, tile shape,
//! problem size) and outcome metrics (named `f64`s: GUPS median+MAD,
//! overlap efficiency, stage quantiles, watchdog trips), appended to an
//! append-only JSONL store ([`PerfDb`]) keyed by machine fingerprint.
//!
//! On top of the store sit the analytics the ROADMAP's self-tuning item
//! needs ([`analytics`]): robust [`analytics::median`]/[`analytics::mad`]
//! statistics, MAD-based change-point and latest-run regression
//! detection over a configurable window, and median-of-last-K
//! auto-baseline selection so perf gates can follow the trajectory
//! instead of a hand-regenerated pinned file. The `perfscope` bench bin
//! is the query front-end; `gups`, `tracereport`, `monitor` and the
//! distributed example are the producers (`--record <path>`).
//!
//! The crate is serde-free by design: records serialize through
//! [`ct_obs::jsonw`] and parse through `ct_obs::chrome::json`, the same
//! hand-rolled pair the live-metrics frames use, so the store works in
//! the zero-registry-dependency substrate.
//!
//! ```
//! use ct_perfdb::{MachineInfo, RunConfig, RunRecord};
//!
//! let mut r = RunRecord::new("gups", 1_700_000_000_000, MachineInfo::detect());
//! r.config = RunConfig {
//!     kernel: "lanes".into(),
//!     layout: "transposed".into(),
//!     threads: 1,
//!     ..RunConfig::default()
//! };
//! r.set_metric("gups_median", 0.21);
//! let parsed = RunRecord::from_json(&r.to_json()).expect("round trip");
//! assert_eq!(parsed, r);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytics;
pub mod machine;
pub mod record;
pub mod store;

pub use analytics::{ChangePoint, Direction, RegressionPolicy, Verdict};
pub use machine::MachineInfo;
pub use record::{RunConfig, RunRecord, SCHEMA};
pub use store::{Filter, PerfDb};
