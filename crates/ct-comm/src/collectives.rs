//! MPI-style collectives over [`crate::Comm`], implemented with the real
//! distributed algorithms so message counts and volumes match an MPI
//! library's:
//!
//! * [`Comm::barrier`] — dissemination barrier, `ceil(log2 p)` rounds.
//! * [`Comm::broadcast`] — binomial tree, `ceil(log2 p)` rounds.
//! * [`Comm::all_gather`] — ring algorithm, `p - 1` steps each moving one
//!   block (the collective iFDK issues once per projection within each
//!   column group, Section 4.1.3).
//! * [`Comm::reduce`] / [`Comm::reduce_sum_f32`] — binomial tree toward
//!   the root (the single volume reduction per row group, Figure 4b).
//! * [`Comm::gather`], [`Comm::scatter`], [`Comm::all_reduce_sum_f32`].
//!
//! Every collective is *collective*: all members must call it in the same
//! program order. Tags are namespaced per algorithm; pairwise FIFO then
//! keeps back-to-back collectives on one communicator from interleaving.

use crate::Comm;

// Tag namespace for collective traffic (user tags live below this).
const TAG_BARRIER: u64 = 1 << 60;
const TAG_BCAST: u64 = 2 << 60;
const TAG_GATHER: u64 = 3 << 60;
const TAG_ALLGATHER: u64 = 4 << 60;
const TAG_REDUCE: u64 = 5 << 60;
const TAG_SCATTER: u64 = 6 << 60;

impl Comm {
    /// Dissemination barrier: after it returns, every member has entered.
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let me = self.rank();
        let mut k = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist % p) % p;
            self.send(to, TAG_BARRIER + k as u64, ());
            let () = self.recv(from, TAG_BARRIER + k as u64);
            dist *= 2;
            k += 1;
        }
    }

    /// Binomial-tree broadcast of `value` from `root` to every member.
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let p = self.size();
        assert!(root < p, "root out of range");
        let me = self.rank();
        let vr = (me + p - root) % p; // virtual rank: root becomes 0
        let mut have: Option<T> = if me == root {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        // Receive phase: the lowest set bit of vr identifies the parent.
        if vr != 0 {
            let lsb = vr & vr.wrapping_neg();
            let parent = (vr - lsb + root) % p;
            have = Some(self.recv(parent, TAG_BCAST + lsb as u64));
        }
        // Send phase: forward to children at descending power-of-two
        // offsets below our own lowest set bit (the root covers all of
        // them).
        let v = have.expect("value present after receive phase");
        let mut mask = if vr == 0 {
            p.next_power_of_two() / 2
        } else {
            (vr & vr.wrapping_neg()) >> 1
        };
        while mask >= 1 {
            if vr + mask < p {
                let child = (vr + mask + root) % p;
                self.send(child, TAG_BCAST + mask as u64, v.clone());
            }
            mask >>= 1;
        }
        v
    }

    /// Gather each member's block at `root` (rank order). Non-roots get
    /// `None`.
    pub fn gather<T: Clone + Send + 'static>(
        &self,
        root: usize,
        block: &[T],
    ) -> Option<Vec<Vec<T>>> {
        let p = self.size();
        assert!(root < p, "root out of range");
        let me = self.rank();
        if me == root {
            let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
            for r in 0..p {
                if r == me {
                    out.push(block.to_vec());
                } else {
                    out.push(self.recv(r, TAG_GATHER + r as u64));
                }
            }
            Some(out)
        } else {
            self.send_vec(root, TAG_GATHER + me as u64, block.to_vec());
            None
        }
    }

    /// Scatter `blocks` (one per member, only meaningful at `root`) so
    /// each member receives its own block.
    pub fn scatter<T: Clone + Send + 'static>(
        &self,
        root: usize,
        blocks: Option<Vec<Vec<T>>>,
    ) -> Vec<T> {
        let p = self.size();
        assert!(root < p, "root out of range");
        let me = self.rank();
        if me == root {
            let blocks = blocks.expect("root must supply blocks");
            assert_eq!(blocks.len(), p, "one block per member");
            let mut mine = Vec::new();
            for (r, b) in blocks.into_iter().enumerate() {
                if r == me {
                    mine = b;
                } else {
                    self.send_vec(r, TAG_SCATTER + r as u64, b);
                }
            }
            mine
        } else {
            self.recv(root, TAG_SCATTER + me as u64)
        }
    }

    /// Ring AllGather: every member contributes `block` and receives the
    /// concatenation of all members' blocks in rank order. All blocks must
    /// have equal length.
    pub fn all_gather<T: Clone + Send + 'static>(&self, block: &[T]) -> Vec<T> {
        let p = self.size();
        let me = self.rank();
        let blen = block.len();
        let mut pieces: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        pieces[me] = Some(block.to_vec());
        if p == 1 {
            return block.to_vec();
        }
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        // Step t: pass along the block that originated at (me - t).
        for t in 0..p - 1 {
            let send_origin = (me + p - t) % p;
            let send_piece = pieces[send_origin]
                .clone()
                .expect("piece received in an earlier step");
            self.send_vec(right, TAG_ALLGATHER + t as u64, send_piece);
            let recv_origin = (me + p - t - 1) % p;
            let got: Vec<T> = self.recv(left, TAG_ALLGATHER + t as u64);
            assert_eq!(got.len(), blen, "AllGather requires equal block sizes");
            pieces[recv_origin] = Some(got);
        }
        let mut out = Vec::with_capacity(p * blen);
        for piece in pieces.into_iter() {
            out.extend(piece.expect("all pieces collected"));
        }
        out
    }

    /// Binomial-tree reduction toward `root` with a caller-supplied
    /// element-wise combine (`acc`, `incoming`). Returns `Some(result)` at
    /// the root, `None` elsewhere.
    pub fn reduce<T, F>(&self, root: usize, data: &[T], combine: F) -> Option<Vec<T>>
    where
        T: Clone + Send + 'static,
        F: Fn(&mut [T], &[T]),
    {
        let p = self.size();
        assert!(root < p, "root out of range");
        let me = self.rank();
        let vr = (me + p - root) % p;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = (vr - mask + root) % p;
                self.send_vec(parent, TAG_REDUCE + mask as u64, acc);
                return None;
            }
            if vr + mask < p {
                let child = (vr + mask + root) % p;
                let incoming: Vec<T> = self.recv(child, TAG_REDUCE + mask as u64);
                assert_eq!(incoming.len(), acc.len(), "reduce length mismatch");
                combine(&mut acc, &incoming);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Element-wise sum reduction of `f32` buffers to `root` — the
    /// framework's sub-volume reduction (`MPI_Reduce`, Figure 4b).
    pub fn reduce_sum_f32(&self, root: usize, data: &[f32]) -> Option<Vec<f32>> {
        self.reduce(root, data, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                *a += *b;
            }
        })
    }

    /// AllReduce (sum) = binomial reduce to rank 0 + binomial broadcast.
    pub fn all_reduce_sum_f32(&self, data: &[f32]) -> Vec<f32> {
        let reduced = self.reduce_sum_f32(0, data);
        self.broadcast(0, reduced)
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn barrier_completes_at_many_sizes() {
        for p in [1usize, 2, 3, 5, 8] {
            Universe::run(p, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for p in [1usize, 2, 3, 6, 9] {
            for root in 0..p {
                let out = Universe::run(p, |c| {
                    let v = if c.rank() == root {
                        Some(format!("hello-{root}"))
                    } else {
                        None
                    };
                    c.broadcast(root, v)
                })
                .unwrap();
                assert!(out.iter().all(|s| s == &format!("hello-{root}")), "p={p}");
            }
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        for p in [1usize, 2, 3, 4, 7] {
            let out = Universe::run(p, |c| {
                let block = vec![c.rank() as u32 * 10, c.rank() as u32 * 10 + 1];
                c.all_gather(&block)
            })
            .unwrap();
            let expect: Vec<u32> = (0..p as u32).flat_map(|r| [r * 10, r * 10 + 1]).collect();
            for got in out {
                assert_eq!(got, expect, "p={p}");
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1usize, 2, 5, 8] {
            for root in [0, p - 1] {
                let out = Universe::run(p, |c| {
                    let data = vec![c.rank() as f32, 1.0];
                    c.reduce_sum_f32(root, &data)
                })
                .unwrap();
                let total: f32 = (0..p).map(|r| r as f32).sum();
                for (r, res) in out.iter().enumerate() {
                    if r == root {
                        assert_eq!(res.as_deref(), Some(&[total, p as f32][..]));
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn gather_collects_rank_order() {
        let out = Universe::run(4, |c| c.gather(2, &[c.rank() as i64])).unwrap();
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(
                    res.as_deref(),
                    Some(&[vec![0i64], vec![1], vec![2], vec![3]][..])
                );
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let out = Universe::run(3, |c| {
            let blocks = if c.rank() == 0 {
                Some(vec![vec![10u8], vec![20], vec![30]])
            } else {
                None
            };
            c.scatter(0, blocks)
        })
        .unwrap();
        assert_eq!(out, vec![vec![10u8], vec![20], vec![30]]);
    }

    #[test]
    fn all_reduce_gives_everyone_the_sum() {
        let out = Universe::run(5, |c| c.all_reduce_sum_f32(&[c.rank() as f32])).unwrap();
        for v in out {
            assert_eq!(v, vec![10.0]);
        }
    }

    #[test]
    fn collectives_on_split_groups() {
        // Columns of a 2x3 grid AllGather independently; rows reduce.
        let out = Universe::run(6, |c| {
            let row = c.rank() / 3;
            let col = c.rank() % 3;
            let col_comm = c.split(col as u64, row as u64);
            let gathered = col_comm.all_gather(&[c.rank() as f32]);
            let row_comm = c.split(10 + row as u64, col as u64);
            let reduced = row_comm.reduce_sum_f32(0, &[c.rank() as f32]);
            (gathered, reduced)
        })
        .unwrap();
        // Column of col=1 contains global ranks 1 and 4.
        assert_eq!(out[1].0, vec![1.0, 4.0]);
        assert_eq!(out[4].0, vec![1.0, 4.0]);
        // Row 0 = ranks 0,1,2 reduced at its rank 0 (global 0): 3.0.
        assert_eq!(out[0].1.as_deref(), Some(&[3.0f32][..]));
        assert!(out[1].1.is_none());
        // Row 1 = ranks 3,4,5: 12.0 at global rank 3.
        assert_eq!(out[3].1.as_deref(), Some(&[12.0f32][..]));
    }

    #[test]
    fn ring_allgather_message_count_matches_algorithm() {
        // p ranks, p-1 steps, one message per rank per step; totals are
        // sampled after every rank terminates.
        let p = 4;
        let (_, stats) = Universe::default()
            .launch_with_stats(p, |c| {
                let _ = c.all_gather(&[0u8; 16]);
            })
            .unwrap();
        let ag_msgs = (p * (p - 1)) as u64;
        assert_eq!(stats.messages_sent, ag_msgs);
        // Each allgather message carries 16 bytes.
        assert_eq!(stats.bytes_sent, ag_msgs * 16);
    }
}
