//! The message fabric: per-rank mailboxes with MPI-style matching.
//!
//! Every rank owns an unbounded inbox. A receive matches on
//! `(communicator, source, tag)`; non-matching arrivals park in the rank's
//! *unexpected-message queue* (exactly how MPI implementations handle
//! early arrivals), preserving per-(src, tag) FIFO order.

use crate::stats::{StatsCell, TrafficStats};
use ct_obs::clock;
use ct_sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ct_sync::Mutex;
use std::any::Any;
use std::time::Duration;

/// Type-erased message payload.
pub type Payload = Box<dyn Any + Send>;

/// An in-flight message.
struct Envelope {
    src: usize,
    comm: u64,
    tag: u64,
    payload: Payload,
}

/// Receive failure modes.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the timeout.
    Timeout,
}

struct Mailbox {
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
    /// Early arrivals that did not match an outstanding receive.
    pending: Mutex<Vec<Envelope>>,
}

/// The shared routing fabric for one universe of ranks.
pub struct Fabric {
    boxes: Vec<Mailbox>,
    stats: StatsCell,
}

impl Fabric {
    /// Create a fabric for `size` global ranks.
    pub fn new(size: usize) -> Self {
        let boxes = (0..size)
            .map(|_| {
                let (tx, rx) = unbounded();
                Mailbox {
                    tx,
                    rx,
                    pending: Mutex::new(Vec::new()),
                }
            })
            .collect();
        Self {
            boxes,
            stats: StatsCell::new(),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.boxes.len()
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.snapshot()
    }

    /// Deliver a message (never blocks; inboxes are unbounded).
    pub fn send(
        &self,
        src: usize,
        dst: usize,
        comm: u64,
        tag: u64,
        payload: Payload,
        bytes: usize,
    ) {
        self.stats.record_send(bytes);
        self.boxes[dst]
            .tx
            .send(Envelope {
                src,
                comm,
                tag,
                payload,
            })
            .expect("inbox receiver lives as long as the fabric");
    }

    /// Blocking matched receive for global rank `me`.
    pub fn recv(
        &self,
        me: usize,
        src: usize,
        comm: u64,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, RecvError> {
        let mbox = &self.boxes[me];
        // First, search the unexpected-message queue.
        {
            let mut pending = mbox.pending.lock();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.src == src && e.comm == comm && e.tag == tag)
            {
                return Ok(pending.remove(pos).payload);
            }
        }
        // Then drain the inbox until a match arrives or time runs out.
        let deadline = clock::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(clock::now());
            match mbox.rx.recv_timeout(remaining) {
                Ok(env) => {
                    if env.src == src && env.comm == comm && env.tag == tag {
                        return Ok(env.payload);
                    }
                    // analyze: allow(lock, reason = "Vec::push on the pending buffer guarded by its own temp lock; matches the blocking RingBuffer::push only by method-name over-approximation (DESIGN 6c)")
                    mbox.pending.lock().push(env);
                }
                Err(RecvTimeoutError::Timeout) => return Err(RecvError::Timeout),
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("fabric owns a sender for every inbox")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn direct_delivery() {
        let f = Fabric::new(2);
        f.send(0, 1, 0, 42, Box::new(5u8), 1);
        let p = f.recv(1, 0, 0, 42, T).unwrap();
        assert_eq!(*p.downcast::<u8>().unwrap(), 5);
    }

    #[test]
    fn matching_skips_unrelated_messages() {
        let f = Fabric::new(2);
        f.send(0, 1, 0, 1, Box::new("a"), 1);
        f.send(0, 1, 0, 2, Box::new("b"), 1);
        f.send(0, 1, 9, 1, Box::new("other comm"), 1);
        let p = f.recv(1, 0, 0, 2, T).unwrap();
        assert_eq!(*p.downcast::<&str>().unwrap(), "b");
        // The skipped messages are still retrievable.
        let p = f.recv(1, 0, 0, 1, T).unwrap();
        assert_eq!(*p.downcast::<&str>().unwrap(), "a");
        let p = f.recv(1, 0, 9, 1, T).unwrap();
        assert_eq!(*p.downcast::<&str>().unwrap(), "other comm");
    }

    #[test]
    fn fifo_order_per_src_tag() {
        let f = Fabric::new(2);
        for i in 0..10u32 {
            f.send(0, 1, 0, 7, Box::new(i), 4);
        }
        for i in 0..10u32 {
            let p = f.recv(1, 0, 0, 7, T).unwrap();
            assert_eq!(*p.downcast::<u32>().unwrap(), i);
        }
    }

    #[test]
    fn timeout_when_no_message() {
        let f = Fabric::new(1);
        let r = f.recv(0, 0, 0, 0, Duration::from_millis(20));
        assert_eq!(r.unwrap_err(), RecvError::Timeout);
    }

    #[test]
    fn stats_accumulate() {
        let f = Fabric::new(2);
        f.send(0, 1, 0, 0, Box::new(0u64), 100);
        f.send(1, 0, 0, 0, Box::new(0u64), 28);
        let s = f.stats();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.bytes_sent, 128);
    }
}
