//! Alternative collective algorithms.
//!
//! MPI libraries switch collective algorithms by message size and rank
//! count; iFDK's two collectives sit at opposite corners (AllGather:
//! many medium messages, latency-tolerant; Reduce: one huge message,
//! bandwidth-bound), so the substrate carries the textbook alternatives
//! and the benchmarks compare them:
//!
//! * AllGather: **ring** (default; `p-1` steps, bandwidth-optimal) vs
//!   **Bruck** (`ceil(log2 p)` steps, latency-optimal, doubling block
//!   sizes) vs **gather+broadcast** (naive baseline).
//! * Reduce: **binomial tree** (default) vs **flat** (all-to-root, the
//!   naive baseline).

use crate::Comm;

const TAG_BRUCK: u64 = 7 << 60;
const TAG_FLAT: u64 = 8 << 60;

/// AllGather algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllGatherAlgorithm {
    /// Ring: `p-1` steps of one block (bandwidth optimal).
    Ring,
    /// Bruck: `ceil(log2 p)` steps of doubling block counts.
    Bruck,
    /// Gather to rank 0 then broadcast (naive).
    GatherBroadcast,
}

/// Reduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceAlgorithm {
    /// Binomial tree (log depth).
    Binomial,
    /// Every rank sends to the root directly (flat).
    Flat,
}

impl Comm {
    /// AllGather with an explicit algorithm (the default [`Comm::all_gather`]
    /// is the ring).
    pub fn all_gather_with<T: Clone + Send + 'static>(
        &self,
        algo: AllGatherAlgorithm,
        block: &[T],
    ) -> Vec<T> {
        match algo {
            AllGatherAlgorithm::Ring => self.all_gather(block),
            AllGatherAlgorithm::Bruck => self.all_gather_bruck(block),
            AllGatherAlgorithm::GatherBroadcast => {
                let gathered = self.gather(0, block);
                let flat: Option<Vec<T>> =
                    gathered.map(|blocks| blocks.into_iter().flatten().collect());
                self.broadcast(0, flat)
            }
        }
    }

    /// Bruck's AllGather: in round `k` send the `min(2^k, p - 2^k)` blocks
    /// you hold to `(rank - 2^k) mod p` and receive as many from
    /// `(rank + 2^k) mod p`; finish by rotating into rank order.
    fn all_gather_bruck<T: Clone + Send + 'static>(&self, block: &[T]) -> Vec<T> {
        let p = self.size();
        let me = self.rank();
        let blen = block.len();
        if p == 1 {
            return block.to_vec();
        }
        // Working set starts with our own block; after round k it holds
        // blocks of origins me, me+1, ..., me+2^k-1 (mod p), concatenated.
        let mut have: Vec<T> = block.to_vec();
        let mut count = 1usize; // blocks held
        let mut step = 1usize;
        let mut round = 0u64;
        while count < p {
            let send_blocks = count.min(p - count);
            let dst = (me + p - step) % p;
            let src = (me + step) % p;
            let payload: Vec<T> = have[..send_blocks * blen].to_vec();
            self.send_vec(dst, TAG_BRUCK + round, payload);
            let incoming: Vec<T> = self.recv(src, TAG_BRUCK + round);
            assert_eq!(
                incoming.len(),
                send_blocks * blen,
                "Bruck requires equal block sizes"
            );
            have.extend(incoming);
            count += send_blocks;
            step *= 2;
            round += 1;
        }
        // `have` holds blocks of origins me, me+1, ..., me+p-1 (mod p);
        // origin 0 sits at block (p - me) % p. Rotate left to rank order.
        let split = (p - me) % p * blen;
        let mut out = Vec::with_capacity(p * blen);
        out.extend_from_slice(&have[split..]);
        out.extend_from_slice(&have[..split]);
        out
    }

    /// Reduce with an explicit algorithm (the default [`Comm::reduce`] is
    /// the binomial tree).
    pub fn reduce_sum_f32_with(
        &self,
        algo: ReduceAlgorithm,
        root: usize,
        data: &[f32],
    ) -> Option<Vec<f32>> {
        match algo {
            ReduceAlgorithm::Binomial => self.reduce_sum_f32(root, data),
            ReduceAlgorithm::Flat => {
                let p = self.size();
                assert!(root < p, "root out of range");
                if self.rank() == root {
                    let mut acc = data.to_vec();
                    // Deterministic: combine in rank order.
                    for r in 0..p {
                        if r == root {
                            continue;
                        }
                        let inc: Vec<f32> = self.recv(r, TAG_FLAT + r as u64);
                        assert_eq!(inc.len(), acc.len(), "reduce length mismatch");
                        for (a, b) in acc.iter_mut().zip(inc.iter()) {
                            *a += *b;
                        }
                    }
                    Some(acc)
                } else {
                    self.send_vec(root, TAG_FLAT + self.rank() as u64, data.to_vec());
                    None
                }
            }
        }
    }
}

const TAG_RS: u64 = 9 << 60;

impl Comm {
    /// Ring reduce-scatter (sum): every member contributes `data`, split
    /// into `counts[r]` elements per member (must sum to `data.len()`);
    /// member `r` returns its fully reduced block `r`.
    ///
    /// Bandwidth-optimal: `p - 1` steps, each moving one block — the same
    /// total traffic as a Reduce but with the result (and any follow-up
    /// work, like storing volume slices) spread across the group.
    pub fn reduce_scatter_sum_f32(&self, data: &[f32], counts: &[usize]) -> Vec<f32> {
        let p = self.size();
        assert_eq!(counts.len(), p, "one count per member");
        assert_eq!(
            counts.iter().sum::<usize>(),
            data.len(),
            "counts must partition the buffer"
        );
        let me = self.rank();
        if p == 1 {
            return data.to_vec();
        }
        // Block offsets.
        let mut offsets = Vec::with_capacity(p + 1);
        let mut acc = 0;
        for &c in counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        let block = |buf: &[f32], b: usize| buf[offsets[b]..offsets[b + 1]].to_vec();

        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut work = data.to_vec();
        // Step s: send block (me - 1 - s), receive and accumulate block
        // (me - 2 - s); after p-1 steps block `me` is complete here.
        for s in 0..p - 1 {
            let send_b = (me + 2 * p - 1 - s) % p;
            let recv_b = (me + 2 * p - 2 - s) % p;
            self.send_vec(right, TAG_RS + s as u64, block(&work, send_b));
            let incoming: Vec<f32> = self.recv(left, TAG_RS + s as u64);
            let dst = &mut work[offsets[recv_b]..offsets[recv_b + 1]];
            assert_eq!(incoming.len(), dst.len(), "reduce-scatter block mismatch");
            for (a, b) in dst.iter_mut().zip(incoming.iter()) {
                *a += *b;
            }
        }
        block(&work, me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn bruck_matches_ring_at_many_sizes() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 11] {
            let out = Universe::run(p, |c| {
                let block = vec![c.rank() as u32 * 100, c.rank() as u32 * 100 + 1];
                let ring = c.all_gather_with(AllGatherAlgorithm::Ring, &block);
                let bruck = c.all_gather_with(AllGatherAlgorithm::Bruck, &block);
                let naive = c.all_gather_with(AllGatherAlgorithm::GatherBroadcast, &block);
                (ring, bruck, naive)
            })
            .unwrap();
            let expect: Vec<u32> = (0..p as u32).flat_map(|r| [r * 100, r * 100 + 1]).collect();
            for (rank, (ring, bruck, naive)) in out.into_iter().enumerate() {
                assert_eq!(ring, expect, "ring p={p} rank={rank}");
                assert_eq!(bruck, expect, "bruck p={p} rank={rank}");
                assert_eq!(naive, expect, "naive p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn bruck_uses_logarithmic_rounds() {
        // 8 ranks: Bruck needs 3 rounds (one message per rank per round)
        // = 24 messages; the ring needs 7 steps = 56. Totals are sampled
        // after every rank has terminated (no in-flight races).
        let p = 8;
        let uni = Universe::default();
        let (_, bruck) = uni
            .launch_with_stats(p, |c| {
                let _ = c.all_gather_with(AllGatherAlgorithm::Bruck, &[0u8; 4]);
            })
            .unwrap();
        assert_eq!(bruck.messages_sent, (p * 3) as u64);
        let (_, ring) = uni
            .launch_with_stats(p, |c| {
                let _ = c.all_gather_with(AllGatherAlgorithm::Ring, &[0u8; 4]);
            })
            .unwrap();
        assert_eq!(ring.messages_sent, (p * (p - 1)) as u64);
        assert!(bruck.messages_sent < ring.messages_sent);
    }

    #[test]
    fn reduce_scatter_matches_serial_sum() {
        for p in [1usize, 2, 3, 5, 8] {
            // Uneven blocks: rank r owns r+1 elements.
            let counts: Vec<usize> = (0..p).map(|r| r + 1).collect();
            let total: usize = counts.iter().sum();
            let out = Universe::run(p, |c| {
                let data: Vec<f32> = (0..total).map(|i| (i * (c.rank() + 1)) as f32).collect();
                c.reduce_scatter_sum_f32(&data, &counts)
            })
            .unwrap();
            // Expected full sum: sum over ranks of i*(r+1) = i * p(p+1)/2.
            let factor = (p * (p + 1) / 2) as f32;
            let mut offset = 0;
            for (r, blockv) in out.iter().enumerate() {
                assert_eq!(blockv.len(), counts[r], "p={p} rank {r}");
                for (j, &x) in blockv.iter().enumerate() {
                    let expect = ((offset + j) as f32) * factor;
                    assert_eq!(x, expect, "p={p} rank {r} elem {j}");
                }
                offset += counts[r];
            }
        }
    }

    #[test]
    fn reduce_scatter_traffic_is_p_minus_1_blocks() {
        let p = 4;
        let (_, stats) = Universe::default()
            .launch_with_stats(p, |c| {
                let data = vec![1.0f32; 64];
                c.reduce_scatter_sum_f32(&data, &[16; 4])
            })
            .unwrap();
        assert_eq!(stats.messages_sent, (p * (p - 1)) as u64);
        assert_eq!(stats.bytes_sent, (p * (p - 1) * 16 * 4) as u64);
    }

    #[test]
    fn flat_reduce_matches_binomial() {
        for p in [1usize, 2, 5, 8] {
            let out = Universe::run(p, |c| {
                let data = vec![c.rank() as f32 + 1.0; 3];
                let a = c.reduce_sum_f32_with(ReduceAlgorithm::Binomial, 0, &data);
                c.barrier();
                let b = c.reduce_sum_f32_with(ReduceAlgorithm::Flat, 0, &data);
                (a, b)
            })
            .unwrap();
            let total: f32 = (1..=p).map(|r| r as f32).sum();
            assert_eq!(out[0].0.as_deref(), Some(&[total, total, total][..]));
            assert_eq!(out[0].1.as_deref(), Some(&[total, total, total][..]));
            for (a, b) in out.iter().skip(1) {
                assert!(a.is_none() && b.is_none());
            }
        }
    }

    #[test]
    fn flat_reduce_non_zero_root() {
        let out = Universe::run(4, |c| {
            c.reduce_sum_f32_with(ReduceAlgorithm::Flat, 2, &[c.rank() as f32])
        })
        .unwrap();
        assert_eq!(out[2].as_deref(), Some(&[6.0f32][..]));
        assert!(out[0].is_none());
    }
}
