//! Traffic accounting for the fabric.
//!
//! The paper's performance model needs communication volumes
//! (`T_AllGather`, `T_reduce`, Eqs. 10 and 15); these counters let tests
//! and benchmarks verify that the collective algorithms move exactly the
//! traffic the model assumes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Interior-mutable counters shared by a fabric.
#[derive(Debug, Default)]
pub struct StatsCell {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl StatsCell {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sent message of `bytes` payload bytes.
    #[inline]
    pub fn record_send(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Take a snapshot.
    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            messages_sent: self.messages.load(Ordering::Relaxed),
            bytes_sent: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of fabric traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Total messages sent through the fabric.
    pub messages_sent: u64,
    /// Total payload bytes sent through the fabric.
    pub bytes_sent: u64,
}

impl TrafficStats {
    /// Difference of two snapshots, conventionally with `self` the later
    /// one. Saturating: if the snapshots were taken out of order (or from
    /// different cells), each component clamps to zero instead of
    /// underflowing — a misordered diff reads as "no traffic", never as a
    /// near-`u64::MAX` garbage value.
    pub fn since(&self, earlier: TrafficStats) -> TrafficStats {
        TrafficStats {
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let c = StatsCell::new();
        c.record_send(10);
        let a = c.snapshot();
        c.record_send(20);
        c.record_send(30);
        let b = c.snapshot();
        assert_eq!(a.messages_sent, 1);
        assert_eq!(b.bytes_sent, 60);
        let d = b.since(a);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.bytes_sent, 50);
    }

    #[test]
    fn since_saturates_on_out_of_order_snapshots() {
        let c = StatsCell::new();
        c.record_send(10);
        let earlier = c.snapshot();
        c.record_send(20);
        let later = c.snapshot();
        // Arguments swapped: the "earlier" snapshot is actually ahead.
        let d = earlier.since(later);
        assert_eq!(d, TrafficStats::default(), "must clamp, not underflow");
        // Partial misordering (messages ahead, bytes behind) clamps
        // componentwise.
        let a = TrafficStats {
            messages_sent: 5,
            bytes_sent: 100,
        };
        let b = TrafficStats {
            messages_sent: 3,
            bytes_sent: 200,
        };
        let d = a.since(b);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.bytes_sent, 0);
    }
}
