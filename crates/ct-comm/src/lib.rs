//! # ct-comm — in-process message-passing substrate with MPI-style
//! collectives
//!
//! iFDK structures its distributed computation as a 2D grid of MPI ranks
//! with two collectives on sub-communicators: **AllGather** of filtered
//! projections within each *column* and a single **Reduce** of partial
//! sub-volumes within each *row* (paper Section 4.1, Figure 3). This crate
//! is the substrate that carries that structure when no MPI installation
//! is available (see DESIGN.md): ranks are OS threads, point-to-point
//! messages are typed envelopes matched MPI-style by
//! `(communicator, source, tag)`, and the collectives are the *real
//! algorithms* (ring AllGather, binomial-tree Reduce/Bcast, dissemination
//! barrier), so message counts and traffic volumes match what an MPI
//! implementation would put on the wire.
//!
//! ```
//! use ct_comm::Universe;
//!
//! let sums = Universe::run(4, |comm| {
//!     let mine = vec![comm.rank() as f32];
//!     let all = comm.all_gather(&mine);       // ring algorithm
//!     all.iter().sum::<f32>()
//! }).unwrap();
//! assert_eq!(sums, vec![6.0; 4]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod collectives;
pub mod fabric;
pub mod stats;

pub use algorithms::{AllGatherAlgorithm, ReduceAlgorithm};

use fabric::{Fabric, RecvError};
use stats::TrafficStats;
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced by the communication runtime.
#[derive(Debug)]
pub enum CommError {
    /// One or more ranks panicked; the payloads are the panic messages.
    RankPanicked {
        /// `(rank, message)` for each panicked rank.
        failures: Vec<(usize, String)>,
    },
    /// A receive timed out (likely deadlock or a dead peer).
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// Human-readable description of what it waited for.
        waiting_for: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankPanicked { failures } => {
                write!(f, "{} rank(s) panicked: ", failures.len())?;
                for (r, m) in failures {
                    write!(f, "[rank {r}: {m}] ")?;
                }
                Ok(())
            }
            CommError::Timeout { rank, waiting_for } => {
                write!(f, "rank {rank} timed out waiting for {waiting_for}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// The launcher: spawns `n` ranks as threads and hands each a
/// world [`Comm`].
#[derive(Debug, Clone)]
pub struct Universe {
    /// Receive timeout applied to every blocking receive; a deadlocked
    /// rank fails fast instead of hanging the process.
    pub recv_timeout: Duration,
}

impl Default for Universe {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_secs(60),
        }
    }
}

impl Universe {
    /// Run `f` on `size` ranks with default settings, returning the
    /// per-rank results in rank order.
    pub fn run<R, F>(size: usize, f: F) -> Result<Vec<R>, CommError>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        Universe::default().launch(size, f)
    }

    /// Run `f` on `size` ranks with this universe's settings.
    pub fn launch<R, F>(&self, size: usize, f: F) -> Result<Vec<R>, CommError>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        self.launch_with_stats(size, f).map(|(r, _)| r)
    }

    /// Like [`Universe::launch`], also returning the fabric's final
    /// traffic totals (sampled after every rank has terminated, so the
    /// counts are complete).
    pub fn launch_with_stats<R, F>(
        &self,
        size: usize,
        f: F,
    ) -> Result<(Vec<R>, stats::TrafficStats), CommError>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        assert!(size > 0, "need at least one rank");
        let fabric = Arc::new(Fabric::new(size));
        let timeout = self.recv_timeout;
        let results: Vec<std::thread::Result<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let fabric = Arc::clone(&fabric);
                    let f = &f;
                    s.spawn(move || {
                        let comm = Comm {
                            fabric,
                            ranks: (0..size).collect(),
                            my_index: rank,
                            comm_id: 0,
                            next_split_id: std::cell::Cell::new(1),
                            timeout,
                            local_stats: stats::StatsCell::new(),
                        };
                        f(&comm)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut ok = Vec::with_capacity(size);
        let mut failures = Vec::new();
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => ok.push(v),
                Err(p) => {
                    let msg = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    failures.push((rank, msg));
                }
            }
        }
        if failures.is_empty() {
            Ok((ok, fabric.stats()))
        } else {
            Err(CommError::RankPanicked { failures })
        }
    }

    /// Traffic statistics accumulated by all communicators of a run are
    /// returned through [`Comm::stats`] snapshots taken inside the ranks.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            recv_timeout: timeout,
        }
    }
}

/// A communicator: a named, ordered group of ranks sharing a message
///-matching space. Clone-free; obtain sub-communicators via
/// [`Comm::split`].
pub struct Comm {
    fabric: Arc<Fabric>,
    /// Global rank of each member, indexed by communicator rank.
    ranks: Vec<usize>,
    /// This rank's index within `ranks`.
    my_index: usize,
    /// Communicator identity used for message matching.
    comm_id: u64,
    /// Per-rank counter making split-derived communicator ids consistent
    /// (every member executes the same sequence of collective calls).
    next_split_id: std::cell::Cell<u64>,
    timeout: Duration,
    /// Traffic sent by *this* rank through *this* communicator — unlike
    /// the fabric-global [`Comm::stats`], these counters attribute bytes
    /// to a rank and a collective group, which is what per-span
    /// observability needs.
    local_stats: stats::StatsCell,
}

impl Comm {
    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The receive timeout in effect.
    #[inline]
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Global (world) rank of communicator member `r`.
    #[inline]
    pub fn global_rank(&self, r: usize) -> usize {
        self.ranks[r]
    }

    /// Snapshot of the fabric-wide traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.fabric.stats()
    }

    /// Snapshot of the traffic *this rank* has sent through *this*
    /// communicator. Collectives route every transfer through
    /// [`Comm::send`]/[`Comm::send_vec`], so diffing two snapshots around
    /// a collective yields that call's outbound traffic — the bridge from
    /// the fabric's accounting into per-span observability attributes.
    pub fn local_stats(&self) -> TrafficStats {
        self.local_stats.snapshot()
    }

    /// Send `value` to communicator rank `dst` with `tag`.
    ///
    /// Buffered/asynchronous: never blocks.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        assert!(dst < self.size(), "destination {dst} out of range");
        let bytes = std::mem::size_of::<T>();
        self.local_stats.record_send(bytes);
        self.fabric.send(
            self.ranks[self.my_index],
            self.ranks[dst],
            self.comm_id,
            tag,
            Box::new(value),
            bytes,
        );
    }

    /// Send a slice-like payload, accounting its true byte size.
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, value: Vec<T>) {
        assert!(dst < self.size(), "destination {dst} out of range");
        let bytes = std::mem::size_of::<T>() * value.len();
        self.local_stats.record_send(bytes);
        self.fabric.send(
            self.ranks[self.my_index],
            self.ranks[dst],
            self.comm_id,
            tag,
            Box::new(value),
            bytes,
        );
    }

    /// Blocking receive of a `T` from communicator rank `src` with `tag`.
    ///
    /// # Panics
    /// Panics on timeout (converted to [`CommError::RankPanicked`] by the
    /// launcher) or if the arriving payload has a different type.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(src < self.size(), "source {src} out of range");
        match self.fabric.recv(
            self.ranks[self.my_index],
            self.ranks[src],
            self.comm_id,
            tag,
            self.timeout,
        ) {
            Ok(boxed) => *boxed.downcast::<T>().unwrap_or_else(|_| {
                panic!(
                    "rank {}: type mismatch receiving tag {tag} from {src}",
                    self.my_index
                )
            }),
            Err(RecvError::Timeout) => panic!(
                "rank {}: receive timeout (src {src}, tag {tag}, comm {})",
                self.my_index, self.comm_id
            ),
        }
    }

    /// Split into sub-communicators by `color`; ranks sharing a color form
    /// a new communicator ordered by `(key, old rank)` — the semantics of
    /// `MPI_Comm_split`.
    ///
    /// Collective: every member must call it with its own `(color, key)`.
    pub fn split(&self, color: u64, key: u64) -> Comm {
        // Exchange (color, key) among all members via the existing
        // all_gather, then derive membership deterministically.
        let mine = vec![(self.my_index, color, key)];
        let all = self.all_gather(&mine);
        let split_seq = self.next_split_id.get();
        self.next_split_id.set(split_seq + 1);
        let mut members: Vec<(u64, usize)> = all
            .iter()
            .filter(|(_, c, _)| *c == color)
            .map(|&(r, _, k)| (k, r))
            .collect();
        members.sort_unstable();
        let ranks: Vec<usize> = members.iter().map(|&(_, r)| self.ranks[r]).collect();
        let my_global = self.ranks[self.my_index];
        let my_index = ranks
            .iter()
            .position(|&g| g == my_global)
            .expect("caller is a member of its own color group");
        // Deterministic id: same on every member because split_seq and
        // color are identical across the group.
        let comm_id = self
            .comm_id
            .wrapping_mul(1_000_003)
            .wrapping_add(split_seq)
            .wrapping_mul(1_000_033)
            .wrapping_add(color.wrapping_add(1));
        Comm {
            fabric: Arc::clone(&self.fabric),
            ranks,
            my_index,
            comm_id,
            next_split_id: std::cell::Cell::new(1),
            timeout: self.timeout,
            local_stats: stats::StatsCell::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            7
        })
        .unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, 123u32);
                c.recv::<u32>(1, 6)
            } else {
                let x = c.recv::<u32>(0, 5);
                c.send(0, 6, x * 2);
                x
            }
        })
        .unwrap();
        assert_eq!(out, vec![246, 123]);
    }

    #[test]
    fn messages_match_by_tag_not_arrival_order() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, "first".to_string());
                c.send(1, 2, "second".to_string());
                String::new()
            } else {
                // Receive in the opposite order they were sent.
                let b = c.recv::<String>(0, 2);
                let a = c.recv::<String>(0, 1);
                format!("{a}-{b}")
            }
        })
        .unwrap();
        assert_eq!(out[1], "first-second");
    }

    #[test]
    fn rank_panic_is_reported() {
        let err = Universe::run(3, |c| {
            if c.rank() == 1 {
                panic!("boom at rank one");
            }
            c.rank()
        })
        .unwrap_err();
        match err {
            CommError::RankPanicked { failures } => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].0, 1);
                assert!(failures[0].1.contains("boom"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn recv_timeout_fails_fast() {
        let uni = Universe::with_timeout(Duration::from_millis(50));
        let err = uni
            .launch(2, |c| {
                if c.rank() == 0 {
                    // Wait for a message nobody sends.
                    let _: u32 = c.recv(1, 99);
                }
                0
            })
            .unwrap_err();
        assert!(matches!(err, CommError::RankPanicked { .. }));
    }

    #[test]
    fn split_forms_row_and_column_groups() {
        // 6 ranks as a 2x3 grid: color by row, key by column.
        let out = Universe::run(6, |c| {
            let row = c.rank() / 3;
            let col = c.rank() % 3;
            let row_comm = c.split(row as u64, col as u64);
            let col_comm = c.split(col as u64, row as u64);
            (
                row_comm.size(),
                row_comm.rank(),
                col_comm.size(),
                col_comm.rank(),
            )
        })
        .unwrap();
        for (rank, &(rs, rr, cs, cr)) in out.iter().enumerate() {
            assert_eq!(rs, 3);
            assert_eq!(rr, rank % 3);
            assert_eq!(cs, 2);
            assert_eq!(cr, rank / 3);
        }
    }

    #[test]
    fn split_subcomms_are_isolated() {
        // Messages in one sub-communicator must not leak into a sibling.
        let out = Universe::run(4, |c| {
            let half = c.rank() / 2; // {0,1} and {2,3}
            let sub = c.split(half as u64, c.rank() as u64);
            if sub.rank() == 0 {
                sub.send(1, 7, c.rank() as u32);
                0
            } else {
                sub.recv::<u32>(0, 7)
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 0, 0, 2]);
    }

    #[test]
    fn local_stats_attribute_traffic_per_rank_and_comm() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 0, vec![1.0f32; 64]);
            } else {
                let v: Vec<f32> = c.recv(0, 0);
                assert_eq!(v.len(), 64);
            }
            c.local_stats()
        })
        .unwrap();
        // Only the sender's own communicator counts the 256 bytes;
        // fabric-global stats (send_vec_accounts_bytes) cannot tell the
        // ranks apart.
        assert_eq!(out[0].messages_sent, 1);
        assert_eq!(out[0].bytes_sent, 256);
        assert_eq!(out[1], TrafficStats::default());
    }

    #[test]
    fn split_comms_count_their_own_traffic() {
        let out = Universe::run(2, |c| {
            let sub = c.split(0, c.rank() as u64);
            let before = sub.local_stats();
            if sub.rank() == 0 {
                sub.send_vec(1, 9, vec![0u8; 100]);
            } else {
                let _: Vec<u8> = sub.recv(0, 9);
            }
            sub.local_stats().since(before).bytes_sent
        })
        .unwrap();
        // The split() exchange itself went through the parent comm, so
        // the sub-communicator's delta is exactly the payload.
        assert_eq!(out, vec![100, 0]);
    }

    #[test]
    fn send_vec_accounts_bytes() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_vec(1, 0, vec![1.0f32; 256]);
            } else {
                let v: Vec<f32> = c.recv(0, 0);
                assert_eq!(v.len(), 256);
            }
            c.stats().bytes_sent
        })
        .unwrap();
        // At least 1 KiB was counted somewhere (stats are fabric-global).
        assert!(out.iter().any(|&b| b >= 1024), "{out:?}");
    }
}
