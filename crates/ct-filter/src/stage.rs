//! The filtering stage driver (paper Algorithm 1) — cosine weighting plus
//! per-row ramp convolution, parallelised over projections.

use crate::cosine::CosineTable;
use crate::parker::ParkerWeights;
use crate::ramp::{ramp_kernel, RampKind};
use ct_core::geometry::CbctGeometry;
use ct_core::projection::{ProjectionImage, ProjectionStack};
use ct_fft::conv::RowConvolver;
use ct_par::Pool;

/// Configuration of the filtering stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Ramp window (Section 2.2.2: shape affects quality, not cost).
    pub ramp: RampKind,
    /// Half-width of the spatial ramp kernel in taps; `None` uses the full
    /// `Nu` taps (exact band-limited filter for the detector width).
    pub kernel_half_width: Option<usize>,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            ramp: RampKind::RamLak,
            kernel_half_width: None,
        }
    }
}

/// A ready-to-run filtering stage: the cosine table, the ramp kernel's
/// spectrum, and the FFT plan, all built once per geometry.
#[derive(Debug, Clone)]
pub struct Filterer {
    cosine: CosineTable,
    parker: Option<ParkerWeights>,
    convolver: RowConvolver,
    nu: usize,
    nv: usize,
    /// Physical tap spacing used (virtual-detector pitch).
    tau: f64,
}

impl Filterer {
    /// Build the stage for a geometry. For short-scan geometries the
    /// Parker redundancy weights are built in and applied between the
    /// cosine weighting and the ramp convolution (pre-weighting order) by
    /// [`Filterer::filter_indexed`].
    pub fn new(geo: &CbctGeometry, cfg: FilterConfig) -> Self {
        let nu = geo.detector.nu;
        let nv = geo.detector.nv;
        let tau = geo.virtual_pitch_u();
        let half = cfg.kernel_half_width.unwrap_or(nu);
        let mut kernel = ramp_kernel(cfg.ramp, half, tau);
        // Fold the Riemann-sum factor `tau` of the convolution integral
        // into the kernel so the per-row work is a pure convolution.
        for k in &mut kernel {
            *k *= tau;
        }
        let parker = if geo.is_full_scan() {
            None
        } else {
            Some(ParkerWeights::new(geo).expect("validated short-scan geometry"))
        };
        Self {
            cosine: CosineTable::new(geo),
            parker,
            convolver: RowConvolver::new(nu, &kernel),
            nu,
            nv,
            tau,
        }
    }

    /// True when this filterer carries short-scan Parker weights.
    pub fn is_short_scan(&self) -> bool {
        self.parker.is_some()
    }

    /// Detector tap spacing (virtual-detector pitch) in use.
    #[inline]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Filter a single projection in place (Algorithm 1 body for one
    /// `i`), without short-scan weighting — use
    /// [`Filterer::filter_indexed`] on short-scan geometries.
    pub fn filter_in_place(&self, img: &mut ProjectionImage) {
        self.filter_in_place_indexed(None, img);
    }

    fn filter_in_place_indexed(&self, index: Option<usize>, img: &mut ProjectionImage) {
        assert_eq!(img.dims().nu, self.nu, "detector width mismatch");
        assert_eq!(img.dims().nv, self.nv, "detector height mismatch");
        // Line 2: point-wise cosine weighting.
        self.cosine.apply(img.data_mut());
        // Short-scan redundancy weighting belongs BEFORE the ramp: it
        // modulates the measured data, not the filtered result.
        if let Some(p) = &self.parker {
            let i = index.expect("short-scan filtering needs the projection index");
            p.apply(i, img);
        }
        // Lines 3-5: ramp-convolve every row — adjacent rows in pairs
        // through one complex FFT (the two-for-one trick; exact because
        // the kernel is real).
        let mut scratch = self.convolver.make_scratch();
        let mut v = 0;
        while v + 1 < self.nv {
            let (top, bottom) = img.data_mut().split_at_mut((v + 1) * self.nu);
            let row_a = &mut top[v * self.nu..];
            let row_b = &mut bottom[..self.nu];
            self.convolver
                .convolve_row_pair_f32(row_a, row_b, &mut scratch);
            v += 2;
        }
        if v < self.nv {
            self.convolver
                .convolve_row_f32(img.row_mut(v), &mut scratch);
        }
    }

    /// Filter one projection, returning the filtered copy `Q_i`
    /// (full-scan path; panics on short-scan filterers, which need the
    /// index).
    pub fn filter(&self, img: &ProjectionImage) -> ProjectionImage {
        assert!(
            self.parker.is_none(),
            "short-scan geometry: use filter_indexed(i, img)"
        );
        let mut out = img.clone();
        self.filter_in_place(&mut out);
        out
    }

    /// Filter projection `i` (applies Parker weights on short scans).
    pub fn filter_indexed(&self, i: usize, img: &ProjectionImage) -> ProjectionImage {
        let mut out = img.clone();
        self.filter_in_place_indexed(Some(i), &mut out);
        out
    }

    /// Filter an entire stack in parallel, one projection per task — the
    /// per-rank CPU workload of iFDK's Filtering thread (Section 4.1.3).
    pub fn filter_stack(&self, pool: &Pool, stack: &ProjectionStack) -> ProjectionStack {
        let n = stack.len();
        let images: Vec<ProjectionImage> = pool
            .parallel_map(n, 1, |i| Some(self.filter_indexed(i, stack.get(i))))
            .into_iter()
            .map(|img| img.expect("every index produced an image"))
            .collect();
        ProjectionStack::from_images(stack.dims(), images).expect("filtered images preserve shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::problem::{Dims2, Dims3};

    fn geo() -> CbctGeometry {
        CbctGeometry::standard(Dims2::new(64, 32), 8, Dims3::cube(32))
    }

    fn impulse_image(g: &CbctGeometry) -> ProjectionImage {
        let mut img = ProjectionImage::zeros(g.detector);
        img.set(32, 16, 1.0);
        img
    }

    #[test]
    fn filter_preserves_shape() {
        let g = geo();
        let f = Filterer::new(&g, FilterConfig::default());
        let q = f.filter(&impulse_image(&g));
        assert_eq!(q.dims(), g.detector);
    }

    #[test]
    fn impulse_response_matches_kernel_shape() {
        // Filtering an impulse reproduces the (cosine-weighted, tau-scaled)
        // ramp kernel along the row through the impulse.
        let g = geo();
        let f = Filterer::new(&g, FilterConfig::default());
        let q = f.filter(&impulse_image(&g));
        let tau = g.virtual_pitch_u();
        let w = CosineTable::new(&g).get(32, 16);
        // Centre tap: w * tau * 1/(4 tau^2) = w / (4 tau).
        let expect_center = w as f64 * tau * (1.0 / (4.0 * tau * tau));
        assert!(
            (q.get(32, 16) as f64 - expect_center).abs() < 1e-3 * expect_center.abs(),
            "{} vs {}",
            q.get(32, 16),
            expect_center
        );
        // Immediate neighbours are negative (ramp side lobes).
        assert!(q.get(31, 16) < 0.0);
        assert!(q.get(33, 16) < 0.0);
        // Rows away from the impulse stay zero (row-separable filter).
        for u in 0..64 {
            assert_eq!(q.get(u, 10), 0.0);
        }
    }

    #[test]
    fn constant_rows_are_suppressed() {
        // The ramp filter strongly suppresses DC: a constant projection
        // filters to (near) zero away from the row ends.
        let g = geo();
        let f = Filterer::new(&g, FilterConfig::default());
        let mut img = ProjectionImage::zeros(g.detector);
        img.data_mut().iter_mut().for_each(|p| *p = 1.0);
        let q = f.filter(&img);
        let tau = g.virtual_pitch_u();
        let peak = 1.0 / (4.0 * tau); // scale of the filtered impulse
                                      // Interior samples must be tiny relative to the impulse peak.
        let mid = q.get(32, 16).abs() as f64;
        assert!(mid < 0.02 * peak, "mid {mid} vs peak {peak}");
    }

    #[test]
    fn parallel_matches_serial() {
        let g = geo();
        let f = Filterer::new(&g, FilterConfig::default());
        let mut stack = ProjectionStack::new(g.detector);
        for i in 0..6 {
            let mut img = ProjectionImage::zeros(g.detector);
            for v in 0..32 {
                for u in 0..64 {
                    img.set(u, v, ((u * 7 + v * 3 + i) % 13) as f32);
                }
            }
            stack.push(img).unwrap();
        }
        let serial = f.filter_stack(&Pool::serial(), &stack);
        let parallel = f.filter_stack(&Pool::new(4), &stack);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn window_choice_changes_output() {
        let g = geo();
        let ramlak = Filterer::new(&g, FilterConfig::default());
        let hann = Filterer::new(
            &g,
            FilterConfig {
                ramp: RampKind::Hann,
                kernel_half_width: None,
            },
        );
        let img = impulse_image(&g);
        let a = ramlak.filter(&img);
        let b = hann.filter(&img);
        // Hann softens the peak.
        assert!(b.get(32, 16) < a.get(32, 16));
    }

    #[test]
    fn truncated_kernel_approximates_full() {
        let g = geo();
        let full = Filterer::new(&g, FilterConfig::default());
        let trunc = Filterer::new(
            &g,
            FilterConfig {
                ramp: RampKind::RamLak,
                kernel_half_width: Some(32),
            },
        );
        let img = impulse_image(&g);
        let a = full.filter(&img);
        let b = trunc.filter(&img);
        // Near the impulse the truncation is invisible.
        for u in 28..37 {
            let x = a.get(u, 16);
            let y = b.get(u, 16);
            assert!(
                (x - y).abs() <= 1e-4 * x.abs().max(1.0),
                "u={u}: {x} vs {y}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_shape() {
        let g = geo();
        let f = Filterer::new(&g, FilterConfig::default());
        let mut img = ProjectionImage::zeros(Dims2::new(32, 32));
        f.filter_in_place(&mut img);
    }
}
