//! Ramp-filter construction (the `Framp` of paper Algorithm 1).
//!
//! The band-limited ramp (Ram-Lak) filter has the classic closed-form
//! spatial taps (Kak & Slaney Eq. 3.29, tap spacing `tau`):
//!
//! ```text
//! h[0]      = 1 / (4 tau^2)
//! h[n even] = 0
//! h[n odd]  = -1 / (pi^2 n^2 tau^2)
//! ```
//!
//! Softer variants are produced by windowing the ramp's frequency response
//! (Shepp-Logan has its own closed form; Hann/Hamming/Cosine are applied in
//! the frequency domain). The filter's shape trades resolution against
//! noise; it does not change the compute cost (paper Section 2.2.2).

use ct_fft::{fft_any, ifft_any, Complex};

/// The classic ramp-filter window choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RampKind {
    /// Pure band-limited ramp (Ram-Lak), sharpest and noisiest.
    RamLak,
    /// Shepp-Logan window (`sinc`-weighted ramp) — the paper's namesake
    /// phantom authors' filter.
    SheppLogan,
    /// Cosine window.
    Cosine,
    /// Hamming window.
    Hamming,
    /// Hann window.
    Hann,
}

impl RampKind {
    /// All variants (for sweeps and tests).
    pub const ALL: [RampKind; 5] = [
        RampKind::RamLak,
        RampKind::SheppLogan,
        RampKind::Cosine,
        RampKind::Hamming,
        RampKind::Hann,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            RampKind::RamLak => "ram-lak",
            RampKind::SheppLogan => "shepp-logan",
            RampKind::Cosine => "cosine",
            RampKind::Hamming => "hamming",
            RampKind::Hann => "hann",
        }
    }
}

/// Build the spatial-domain ramp kernel with `half` taps on each side of
/// the centre (total length `2*half + 1`) for detector tap spacing `tau`.
///
/// The returned kernel is symmetric and already includes the `1/tau^2`
/// scaling; the filtering stage multiplies the convolution by `tau` to
/// complete the discrete approximation of the continuous filter integral.
pub fn ramp_kernel(kind: RampKind, half: usize, tau: f64) -> Vec<f64> {
    assert!(tau > 0.0, "tap spacing must be positive");
    let len = 2 * half + 1;
    match kind {
        RampKind::RamLak => {
            let mut h = vec![0.0; len];
            let t2 = tau * tau;
            for (idx, tap) in h.iter_mut().enumerate() {
                let n = idx as isize - half as isize;
                *tap = if n == 0 {
                    1.0 / (4.0 * t2)
                } else if n % 2 == 0 {
                    0.0
                } else {
                    -1.0 / (std::f64::consts::PI * std::f64::consts::PI * (n * n) as f64 * t2)
                };
            }
            h
        }
        RampKind::SheppLogan => {
            // h[n] = -2 / (pi^2 tau^2 (4 n^2 - 1))  (Shepp & Logan 1974)
            let mut h = vec![0.0; len];
            let c = -2.0 / (std::f64::consts::PI * std::f64::consts::PI * tau * tau);
            for (idx, tap) in h.iter_mut().enumerate() {
                let n = (idx as isize - half as isize) as f64;
                *tap = c / (4.0 * n * n - 1.0);
            }
            h
        }
        RampKind::Cosine | RampKind::Hamming | RampKind::Hann => windowed_ramp(kind, half, tau),
    }
}

/// Window the Ram-Lak frequency response, returning spatial taps.
fn windowed_ramp(kind: RampKind, half: usize, tau: f64) -> Vec<f64> {
    let base = ramp_kernel(RampKind::RamLak, half, tau);
    let n = base.len().next_power_of_two() * 2;
    let mut buf = vec![Complex::ZERO; n];
    // Centre the kernel at index 0 (wrap negative taps) so the spectrum is
    // real and the windowing does not shift the filter.
    for (idx, &v) in base.iter().enumerate() {
        let shift = (idx + n - half) % n;
        buf[shift] = Complex::from_real(v);
    }
    let mut spec = fft_any(&buf);
    for (k, c) in spec.iter_mut().enumerate() {
        // Normalised frequency in [0, 1], mirrored above Nyquist.
        let f = k.min(n - k) as f64 / (n as f64 / 2.0);
        let w = match kind {
            RampKind::Cosine => (std::f64::consts::FRAC_PI_2 * f).cos(),
            RampKind::Hamming => 0.54 + 0.46 * (std::f64::consts::PI * f).cos(),
            RampKind::Hann => 0.5 * (1.0 + (std::f64::consts::PI * f).cos()),
            _ => 1.0,
        };
        *c = c.scale(w);
    }
    let time = ifft_any(&spec);
    let mut out = vec![0.0; base.len()];
    for (idx, o) in out.iter_mut().enumerate() {
        let shift = (idx + n - half) % n;
        *o = time[shift].re;
    }
    out
}

/// DC gain of a kernel (sum of taps). The ideal ramp suppresses DC
/// entirely; the band-limited versions leave a small positive residual.
pub fn dc_gain(kernel: &[f64]) -> f64 {
    kernel.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramlak_closed_form_values() {
        let tau = 1.0;
        let h = ramp_kernel(RampKind::RamLak, 4, tau);
        assert_eq!(h.len(), 9);
        assert!((h[4] - 0.25).abs() < 1e-15); // centre = 1/4
        assert_eq!(h[3], h[5]); // symmetric
        assert!((h[5] + 1.0 / (std::f64::consts::PI.powi(2))).abs() < 1e-15);
        assert_eq!(h[2], 0.0); // even taps vanish
        assert_eq!(h[6], 0.0);
    }

    #[test]
    fn tau_scaling_is_inverse_square() {
        let h1 = ramp_kernel(RampKind::RamLak, 8, 1.0);
        let h2 = ramp_kernel(RampKind::RamLak, 8, 2.0);
        for (a, b) in h1.iter().zip(h2.iter()) {
            assert!((a - b * 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_kernels_are_symmetric() {
        for kind in RampKind::ALL {
            let h = ramp_kernel(kind, 16, 0.5);
            let n = h.len();
            for i in 0..n / 2 {
                assert!(
                    (h[i] - h[n - 1 - i]).abs() < 1e-9,
                    "{:?} asymmetric at {i}",
                    kind
                );
            }
        }
    }

    #[test]
    fn shepp_logan_closed_form() {
        let h = ramp_kernel(RampKind::SheppLogan, 3, 1.0);
        let pi2 = std::f64::consts::PI * std::f64::consts::PI;
        assert!((h[3] - 2.0 / pi2).abs() < 1e-15); // n=0: -2/(pi^2 * -1)
        assert!((h[2] + 2.0 / (3.0 * pi2)).abs() < 1e-15); // n=1: -2/(pi^2*3)
    }

    #[test]
    fn dc_suppression_ordering() {
        // Every ramp variant strongly suppresses DC relative to its peak.
        for kind in RampKind::ALL {
            let h = ramp_kernel(kind, 64, 1.0);
            let peak = h.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(
                dc_gain(&h).abs() < 0.05 * peak,
                "{:?}: dc {} vs peak {}",
                kind,
                dc_gain(&h),
                peak
            );
        }
    }

    #[test]
    fn windowed_kernels_are_softer_than_ramlak() {
        // Window functions reduce the centre tap (high-frequency gain).
        let ramlak = ramp_kernel(RampKind::RamLak, 32, 1.0);
        for kind in [RampKind::Cosine, RampKind::Hamming, RampKind::Hann] {
            let h = ramp_kernel(kind, 32, 1.0);
            assert!(
                h[32] < ramlak[32],
                "{:?} centre {} !< ramlak {}",
                kind,
                h[32],
                ramlak[32]
            );
            assert!(h[32] > 0.0);
        }
        // Hann is the softest of the three.
        let hann = ramp_kernel(RampKind::Hann, 32, 1.0);
        let hamming = ramp_kernel(RampKind::Hamming, 32, 1.0);
        assert!(hann[32] < hamming[32]);
    }

    #[test]
    fn frequency_response_approximates_abs_omega() {
        // The DFT of the Ram-Lak taps should approximate |f| up to Nyquist.
        let half = 256;
        let tau = 1.0;
        let h = ramp_kernel(RampKind::RamLak, half, tau);
        let n = 1024;
        let mut buf = vec![Complex::ZERO; n];
        for (idx, &v) in h.iter().enumerate() {
            let shift = (idx + n - half) % n;
            buf[shift] = Complex::from_real(v);
        }
        let spec = fft_any(&buf);
        // At normalised frequency f (cycles/sample), |H| ~ f for f << 0.5.
        for &k in &[16usize, 32, 64, 128] {
            let f = k as f64 / n as f64;
            let mag = spec[k].abs();
            let expect = f; // ramp |omega|/(2*pi) in cycles-per-tau units
            assert!(
                (mag - expect).abs() < 0.05 * expect.max(0.02),
                "bin {k}: {mag} vs {expect}"
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = RampKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RampKind::ALL.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_tau() {
        ramp_kernel(RampKind::RamLak, 4, 0.0);
    }
}
