//! The 2-D cosine weighting table (`Fcos` of paper Algorithm 1).
//!
//! Each detector pixel is weighted by the cosine of the angle between its
//! ray and the central ray (Feldkamp's pre-weighting, Kak & Slaney
//! Eq. 3.84):
//!
//! ```text
//! Fcos(u, v) = d / sqrt(d^2 + a^2 + b^2)
//! ```
//!
//! where `(a, b)` are the pixel's physical coordinates on the *virtual
//! detector* through the isocentre (real detector coordinates scaled by
//! `d/D`). The table depends only on the geometry, so it is computed once
//! and shared across all projections — exactly the `Fcos` table of size
//! `(Nv, Nu)` in the paper's Table 1.

use ct_core::geometry::CbctGeometry;
use ct_core::problem::Dims2;

/// Precomputed cosine weighting table.
#[derive(Debug, Clone, PartialEq)]
pub struct CosineTable {
    dims: Dims2,
    weights: Vec<f32>,
}

impl CosineTable {
    /// Build the table for a geometry.
    pub fn new(geo: &CbctGeometry) -> Self {
        let dims = geo.detector;
        let (cu, cv) = ((dims.nu as f64 - 1.0) / 2.0, (dims.nv as f64 - 1.0) / 2.0);
        let (pu, pv) = (geo.virtual_pitch_u(), geo.virtual_pitch_v());
        let d2 = geo.d * geo.d;
        let mut weights = Vec::with_capacity(dims.len());
        for v in 0..dims.nv {
            let b = (v as f64 - cv) * pv;
            for u in 0..dims.nu {
                let a = (u as f64 - cu) * pu;
                weights.push((geo.d / (d2 + a * a + b * b).sqrt()) as f32);
            }
        }
        Self { dims, weights }
    }

    /// Detector dimensions the table was built for.
    #[inline]
    pub fn dims(&self) -> Dims2 {
        self.dims
    }

    /// Weight at pixel `(u, v)`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> f32 {
        self.weights[v * self.dims.nu + u]
    }

    /// The raw row-major table.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.weights
    }

    /// Apply the table point-wise to a row-major projection buffer
    /// (Algorithm 1 line 2: `E~_i <- E_i . Fcos`).
    pub fn apply(&self, pixels: &mut [f32]) {
        assert_eq!(
            pixels.len(),
            self.weights.len(),
            "projection shape mismatch"
        );
        for (p, &w) in pixels.iter_mut().zip(self.weights.iter()) {
            *p *= w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::problem::Dims3;

    fn geo() -> CbctGeometry {
        CbctGeometry::standard(Dims2::new(33, 17), 8, Dims3::cube(16))
    }

    #[test]
    fn center_weight_is_one() {
        let t = CosineTable::new(&geo());
        // Odd-sized detector: the exact centre pixel exists.
        assert!((t.get(16, 8) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn weights_decrease_away_from_center() {
        let t = CosineTable::new(&geo());
        let c = t.get(16, 8);
        assert!(t.get(0, 8) < c);
        assert!(t.get(16, 0) < c);
        assert!(t.get(0, 0) < t.get(0, 8));
        // All weights are in (0, 1].
        assert!(t.data().iter().all(|&w| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn table_is_symmetric() {
        let t = CosineTable::new(&geo());
        for v in 0..17 {
            for u in 0..33 {
                let mu = 32 - u;
                let mv = 16 - v;
                assert!((t.get(u, v) - t.get(mu, v)).abs() < 1e-7);
                assert!((t.get(u, v) - t.get(u, mv)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn apply_multiplies_pointwise() {
        let t = CosineTable::new(&geo());
        let mut px = vec![2.0f32; 33 * 17];
        t.apply(&mut px);
        for (i, &p) in px.iter().enumerate() {
            assert!((p - 2.0 * t.data()[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn matches_explicit_angle_cosine() {
        // The weight must equal the cosine of the angle between the pixel
        // ray and the central ray, which is independent of the
        // virtual-vs-real detector scaling.
        let g = geo();
        let t = CosineTable::new(&g);
        let beta = 0.0;
        let src = g.source_position(beta);
        let center = g.detector_pixel_position(beta, 16.0, 8.0);
        for (u, v) in [(0usize, 0usize), (5, 12), (30, 3)] {
            let pix = g.detector_pixel_position(beta, u as f64, v as f64);
            let a = (pix - src).normalized();
            let b = (center - src).normalized();
            let cosang = a.dot(b);
            assert!(
                (t.get(u, v) as f64 - cosang).abs() < 1e-6,
                "({u},{v}): {} vs {cosang}",
                t.get(u, v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn apply_checks_shape() {
        let t = CosineTable::new(&geo());
        t.apply(&mut [0.0f32; 10]);
    }
}
