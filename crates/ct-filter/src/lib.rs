//! # ct-filter — the FDK filtering stage (paper Algorithm 1)
//!
//! The filtering (convolution) stage weights each raw projection with the
//! 2-D cosine table `Fcos` and convolves every detector row with the 1-D
//! ramp filter `Framp`:
//!
//! ```text
//! for i in 0..Np:
//!     E~_i = E_i . Fcos          (point-wise)
//!     for each row j: Q_i(j,:) = E~_i(j,:) (*) Framp
//! ```
//!
//! iFDK runs this stage on the *CPUs*, overlapped with GPU back-projection
//! (paper Section 3.1); here it runs on a [`ct_par::Pool`], one projection
//! per task, with each row convolved through a cached FFT plan
//! ([`ct_fft::conv::RowConvolver`]).
//!
//! The ramp-filter discretisation follows Kak & Slaney Chapter 3, with the
//! detector rescaled to the *virtual detector* through the isocentre so
//! that, combined with the `W = 1/z^2` distance weighting of the
//! back-projection kernels and the global `d^2 * delta_beta / 2` constant
//! applied by the framework, reconstructed voxel values reproduce the
//! phantom's absolute densities. "The shape of the `Framp` filter deeply
//! affects the final image quality, yet it has no effect on the compute
//! intensity of the filtering stage" (Section 2.2.2) — all five classic
//! window choices are provided.
//!
//! ```
//! use ct_core::{CbctGeometry, Dims2, Dims3};
//! use ct_core::projection::ProjectionImage;
//! use ct_filter::{FilterConfig, Filterer};
//!
//! let geo = CbctGeometry::standard(Dims2::new(64, 32), 8, Dims3::cube(32));
//! let filterer = Filterer::new(&geo, FilterConfig::default());
//! let mut raw = ProjectionImage::zeros(geo.detector);
//! raw.set(32, 16, 1.0);
//! let filtered = filterer.filter(&raw);          // cosine + ramp
//! assert!(filtered.get(32, 16) > 0.0);           // positive centre tap
//! assert!(filtered.get(31, 16) < 0.0);           // negative side lobes
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cosine;
pub mod parker;
pub mod ramp;
pub mod stage;

pub use cosine::CosineTable;
pub use parker::ParkerWeights;
pub use ramp::{ramp_kernel, RampKind};
pub use stage::{FilterConfig, Filterer};
