//! Parker weighting for short scans.
//!
//! The paper's trajectory is a full circle, where every ray family is
//! measured twice and the redundancy folds into a global constant 1/2.
//! Practical gantries often stop after the minimal short scan
//! `pi + 2*delta` (`delta` = half fan angle); there the redundancy is
//! *partial* — some ray families appear twice, some once — and must be
//! fixed per ray with Parker's smooth weights (Parker, Med. Phys. 1982):
//!
//! ```text
//! beta in [0, 2(delta + gamma))            w = sin^2( pi/4 * beta / (delta + gamma) )
//! beta in [2(delta + gamma), pi + 2 gamma) w = 1
//! beta in [pi + 2 gamma, pi + 2 delta]     w = sin^2( pi/4 * (pi + 2 delta - beta) / (delta - gamma) )
//! ```
//!
//! where `gamma` is the signed fan angle of the ray's detector column in
//! the convention where the conjugate of `(beta, gamma)` is
//! `(beta + pi - 2 gamma, -gamma)`; our geometry's rotation sense pairs
//! `(beta, gamma_ours)` with `(beta + pi + 2 gamma_ours, -gamma_ours)`,
//! so the table is built with `gamma = -gamma_ours`.
//! The weights depend on `(beta, u)` only, so they are precomputed as one
//! `Np x Nu` table and applied row-wise after the cosine weighting.

use ct_core::error::{CtError, Result};
use ct_core::geometry::CbctGeometry;
use ct_core::projection::ProjectionImage;

/// Precomputed Parker weight table for a short-scan geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct ParkerWeights {
    nu: usize,
    np: usize,
    /// `np` rows of `nu` weights.
    table: Vec<f32>,
}

impl ParkerWeights {
    /// Build the table. Fails on full-circle geometries (no partial
    /// redundancy to correct — use the global 1/2 instead).
    pub fn new(geo: &CbctGeometry) -> Result<Self> {
        geo.validate()?;
        if geo.is_full_scan() {
            return Err(CtError::InvalidConfig(
                "Parker weights apply to short scans; full scans use the global 1/2".into(),
            ));
        }
        let delta = geo.fan_half_angle();
        let nu = geo.detector.nu;
        let np = geo.num_projections;
        let mut table = Vec::with_capacity(np * nu);
        for i in 0..np {
            let beta = geo.angle(i);
            for u in 0..nu {
                // Sign flip: see the module docs on conventions.
                let gamma = -geo.fan_angle_of_column(u as f64);
                table.push(parker_weight(beta, gamma, delta) as f32);
            }
        }
        Ok(Self { nu, np, table })
    }

    /// Weight of detector column `u` in projection `i`.
    #[inline]
    pub fn get(&self, i: usize, u: usize) -> f32 {
        debug_assert!(i < self.np && u < self.nu);
        self.table[i * self.nu + u]
    }

    /// Apply the weights of projection `i` to a row-major image in place.
    pub fn apply(&self, i: usize, img: &mut ProjectionImage) {
        assert!(i < self.np, "projection index {i} out of range");
        assert_eq!(img.dims().nu, self.nu, "detector width mismatch");
        let row_w = &self.table[i * self.nu..(i + 1) * self.nu];
        for v in 0..img.dims().nv {
            for (p, &w) in img.row_mut(v).iter_mut().zip(row_w.iter()) {
                *p *= w;
            }
        }
    }
}

/// The Parker weight for gantry angle `beta`, ray fan angle `gamma`,
/// half fan angle `delta` (all radians; `beta` in `[0, pi + 2*delta]`).
pub fn parker_weight(beta: f64, gamma: f64, delta: f64) -> f64 {
    use std::f64::consts::{FRAC_PI_4, PI};
    let first_end = 2.0 * (delta + gamma);
    let plateau_end = PI + 2.0 * gamma;
    let scan_end = PI + 2.0 * delta;
    if beta < 0.0 || beta > scan_end {
        0.0
    } else if beta < first_end {
        let denom = delta + gamma;
        if denom <= 1e-12 {
            1.0
        } else {
            (FRAC_PI_4 * beta / denom).sin().powi(2)
        }
    } else if beta < plateau_end {
        1.0
    } else {
        let denom = delta - gamma;
        if denom <= 1e-12 {
            1.0
        } else {
            (FRAC_PI_4 * (scan_end - beta) / denom).sin().powi(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::problem::{Dims2, Dims3};

    fn short_geo() -> CbctGeometry {
        CbctGeometry::standard_short_scan(Dims2::new(64, 32), 180, Dims3::cube(24))
    }

    #[test]
    fn rejects_full_scan() {
        let full = CbctGeometry::standard(Dims2::new(32, 32), 16, Dims3::cube(16));
        assert!(ParkerWeights::new(&full).is_err());
        assert!(ParkerWeights::new(&short_geo()).is_ok());
    }

    #[test]
    fn weights_bounded_and_continuous_in_beta() {
        let delta = 0.3;
        for &gamma in &[-0.29, -0.1, 0.0, 0.1, 0.29] {
            let mut prev = parker_weight(0.0, gamma, delta);
            let steps = 40_000;
            let end = std::f64::consts::PI + 2.0 * delta;
            for t in 1..=steps {
                let beta = end * t as f64 / steps as f64;
                let w = parker_weight(beta, gamma, delta);
                assert!((0.0..=1.0 + 1e-12).contains(&w), "w({beta},{gamma}) = {w}");
                // The steepest ramp has slope ~ (pi/4)/(delta -+ gamma);
                // at 40k steps that bounds per-step change by ~0.008.
                assert!(
                    (w - prev).abs() < 0.01,
                    "discontinuity at beta {beta}, gamma {gamma}: {prev} -> {w}"
                );
                prev = w;
            }
        }
    }

    #[test]
    fn weight_starts_and_ends_at_zero() {
        let delta = 0.25;
        for &gamma in &[-0.2, 0.0, 0.2] {
            assert!(parker_weight(0.0, gamma, delta) < 1e-12);
            let end = std::f64::consts::PI + 2.0 * delta;
            assert!(parker_weight(end, gamma, delta) < 1e-9);
        }
    }

    #[test]
    fn integral_over_beta_is_pi_for_every_ray_family() {
        // The defining property of the Parker weights: for each gamma the
        // weighted angular coverage integrates to exactly pi.
        let delta = 0.3;
        let end = std::f64::consts::PI + 2.0 * delta;
        let n = 200_000;
        let h = end / n as f64;
        for &gamma in &[-0.29, -0.15, 0.0, 0.07, 0.28] {
            let mut acc = 0.0;
            for t in 0..n {
                let beta = (t as f64 + 0.5) * h;
                acc += parker_weight(beta, gamma, delta) * h;
            }
            assert!(
                (acc - std::f64::consts::PI).abs() < 1e-3,
                "gamma {gamma}: integral {acc}"
            );
        }
    }

    #[test]
    fn conjugate_rays_share_unit_weight() {
        // Rays (beta, gamma) and (beta + pi - 2*gamma, -gamma) measure the
        // same line; their weights must sum to 1 wherever both exist.
        let delta = 0.3;
        let end = std::f64::consts::PI + 2.0 * delta;
        for &gamma in &[-0.2, -0.05, 0.1, 0.25] {
            for t in 0..500 {
                let beta = end * t as f64 / 500.0;
                let beta2 = beta + std::f64::consts::PI - 2.0 * gamma;
                if !(0.0..=end).contains(&beta2) {
                    continue;
                }
                let w1 = parker_weight(beta, gamma, delta);
                let w2 = parker_weight(beta2, -gamma, delta);
                assert!(
                    (w1 + w2 - 1.0).abs() < 1e-9,
                    "gamma {gamma}, beta {beta}: {w1} + {w2} != 1"
                );
            }
        }
    }

    #[test]
    fn table_matches_pointwise_formula() {
        let geo = short_geo();
        let w = ParkerWeights::new(&geo).unwrap();
        let delta = geo.fan_half_angle();
        for &(i, u) in &[(0usize, 0usize), (30, 10), (90, 32), (179, 63)] {
            let expect = parker_weight(geo.angle(i), -geo.fan_angle_of_column(u as f64), delta);
            assert!((w.get(i, u) as f64 - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_scales_rows_uniformly_in_v() {
        let geo = short_geo();
        let w = ParkerWeights::new(&geo).unwrap();
        let mut img = ProjectionImage::zeros(geo.detector);
        img.data_mut().iter_mut().for_each(|p| *p = 1.0);
        w.apply(40, &mut img);
        for v in 0..geo.detector.nv {
            for u in 0..geo.detector.nu {
                assert_eq!(img.get(u, v), w.get(40, u));
            }
        }
    }
}
