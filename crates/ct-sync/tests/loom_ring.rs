//! Exhaustive model checking of `RingBuffer` under `--cfg loom`.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --manifest-path crates/ct-sync/Cargo.toml \
//!     --release --test loom_ring
//! ```
//!
//! Each test body runs under *every* thread interleaving within the
//! configured preemption bound (default 2, `CT_LOOM_PREEMPTIONS` to
//! deepen). The checked invariants are the ones the iFDK pipeline leans
//! on: FIFO order, blocking push/pop never deadlock at tiny capacities,
//! closing wakes blocked peers (no lost wakeups), and the stall counters
//! stay consistent under every schedule.

#![cfg(loom)]

use ct_sync::model::model;
use ct_sync::ring::RingBuffer;
use ct_sync::thread;

#[test]
fn spsc_capacity_one_preserves_fifo() {
    model(|| {
        let rb = RingBuffer::new(1);
        let producer = {
            let rb = rb.clone();
            thread::spawn(move || {
                for i in 0..3u32 {
                    rb.push(i).expect("ring is never closed");
                }
            })
        };
        for expect in 0..3u32 {
            assert_eq!(rb.pop(), Some(expect), "FIFO order violated");
        }
        producer.join().expect("producer thread");
    });
}

#[test]
fn spsc_capacity_two_preserves_fifo() {
    model(|| {
        let rb = RingBuffer::new(2);
        let producer = {
            let rb = rb.clone();
            thread::spawn(move || {
                for i in 0..3u32 {
                    rb.push(i).expect("ring is never closed");
                }
                rb.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = rb.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2]);
        producer.join().expect("producer thread");
    });
}

#[test]
fn close_wakes_blocked_producer() {
    // A producer parked on a full ring MUST observe close() — if the
    // close path ever dropped the not_full notification, this model
    // would abort with a deadlock ("lost wakeup") under the schedule
    // where the producer blocks first.
    model(|| {
        let rb = RingBuffer::new(1);
        rb.push(1u32).expect("ring starts open");
        let producer = {
            let rb = rb.clone();
            thread::spawn(move || rb.push(2))
        };
        rb.close();
        let outcome = producer.join().expect("producer thread");
        // Depending on the schedule the producer either reached the full
        // ring before close (blocked, then woken into Err) or after
        // (immediate Err) — it must never succeed and never hang.
        assert_eq!(outcome, Err(2));
        assert_eq!(rb.pop(), Some(1), "queued item survives close");
        assert_eq!(rb.pop(), None, "drained closed ring terminates");
    });
}

#[test]
fn close_wakes_blocked_consumer() {
    // The mirror image: a consumer parked on an empty ring must observe
    // close() under every schedule, drain the in-flight item, then end.
    model(|| {
        let rb = RingBuffer::new(1);
        let consumer = {
            let rb = rb.clone();
            thread::spawn(move || (rb.pop(), rb.pop()))
        };
        rb.push(7u32).expect("ring starts open");
        rb.close();
        let (first, second) = consumer.join().expect("consumer thread");
        assert_eq!(first, Some(7), "in-flight item must not be lost");
        assert_eq!(second, None, "closed+drained ring must terminate");
    });
}

#[test]
fn mpmc_two_by_two_transfers_every_item_exactly_once() {
    model(|| {
        let rb = RingBuffer::new(1);
        let p0 = {
            let rb = rb.clone();
            thread::spawn(move || rb.push(10u32).expect("ring is never closed"))
        };
        let p1 = {
            let rb = rb.clone();
            thread::spawn(move || rb.push(20u32).expect("ring is never closed"))
        };
        let c0 = {
            let rb = rb.clone();
            thread::spawn(move || rb.pop().expect("two items for two pops"))
        };
        let c1 = {
            let rb = rb.clone();
            thread::spawn(move || rb.pop().expect("two items for two pops"))
        };
        p0.join().expect("producer 0");
        p1.join().expect("producer 1");
        let mut got = vec![
            c0.join().expect("consumer 0"),
            c1.join().expect("consumer 1"),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "each item delivered exactly once");
    });
}

#[test]
fn stall_counters_are_monotone_and_consistent() {
    model(|| {
        let rb = RingBuffer::new(1);
        rb.push(1u32).expect("ring starts open");
        let producer = {
            let rb = rb.clone();
            thread::spawn(move || rb.push(2u32).expect("ring is never closed"))
        };
        let mid = rb.metrics();
        assert_eq!(rb.pop(), Some(1));
        assert_eq!(rb.pop(), Some(2));
        producer.join().expect("producer thread");
        let end = rb.metrics();
        // Monotonicity across the two snapshots, under every schedule.
        assert!(end.push_stalls >= mid.push_stalls);
        assert!(end.pop_stalls >= mid.pop_stalls);
        assert!(end.push_stall_ns >= mid.push_stall_ns);
        // The producer stalled at most once (it is one push call), and
        // each stall put exactly one sample in the histogram.
        assert!(end.push_stalls <= 1);
        assert_eq!(end.push_stall_hist.count(), end.push_stalls);
        assert_eq!(end.pop_stall_hist.count(), end.pop_stalls);
        assert_eq!(end.high_water, 1, "capacity-1 ring never exceeds 1");
    });
}

#[test]
fn pop_batch_drains_without_deadlock() {
    model(|| {
        let rb = RingBuffer::new(2);
        let producer = {
            let rb = rb.clone();
            thread::spawn(move || {
                for i in 0..3u32 {
                    rb.push(i).expect("ring is never closed");
                }
                rb.close();
            })
        };
        let mut got = Vec::new();
        loop {
            let batch = rb.pop_batch(2);
            if batch.is_empty() {
                break;
            }
            got.extend(batch);
        }
        producer.join().expect("producer thread");
        assert_eq!(got, vec![0, 1, 2], "batched drain preserves FIFO");
    });
}
