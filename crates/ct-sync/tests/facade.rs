//! Cross-module smoke tests of the production (`cfg(not(loom))`) facade:
//! the same `ct_sync::{Mutex, Condvar, thread, atomic}` paths the loom
//! build swaps out, exercised together the way pipeline code uses them.

#![cfg(not(loom))]

use ct_sync::atomic::{AtomicUsize, Ordering};
use ct_sync::channel;
use ct_sync::cursor::ChunkCursor;
use ct_sync::ring::RingBuffer;
use ct_sync::{thread, Condvar, Mutex};
use std::sync::Arc;

#[test]
fn mutex_condvar_barrier_releases_all_waiters() {
    let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
    let workers = 4;
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let (count, cv) = &*shared;
                let mut n = count.lock();
                *n += 1;
                if *n == workers {
                    cv.notify_all();
                }
                while *n < workers {
                    cv.wait(&mut n);
                }
                *n
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("barrier worker"), workers);
    }
}

#[test]
fn ring_and_channel_pipeline_stages_compose() {
    // Stage 1 feeds a bounded ring (back-pressured), stage 2 forwards
    // into an unbounded channel — the shape of an iFDK rank's
    // load -> filter -> transfer chain.
    let ring = RingBuffer::new(2);
    let (tx, rx) = channel::unbounded();
    let producer = {
        let ring = ring.clone();
        thread::spawn(move || {
            for i in 0..100u64 {
                ring.push(i).expect("ring stays open");
            }
            ring.close();
        })
    };
    let forwarder = {
        let ring = ring.clone();
        thread::spawn(move || {
            while let Some(v) = ring.pop() {
                tx.send(v * 2).expect("receiver outlives forwarder");
            }
            // tx drops here: receiver sees the disconnect.
        })
    };
    let mut got = Vec::new();
    while let Ok(v) = rx.recv() {
        got.push(v);
    }
    producer.join().expect("producer");
    forwarder.join().expect("forwarder");
    assert_eq!(got, (0..100u64).map(|i| i * 2).collect::<Vec<_>>());
}

#[test]
fn cursor_fans_work_across_facade_threads() {
    let n = 257;
    let cursor = Arc::new(ChunkCursor::new(n, 16));
    let claimed = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let claimed = Arc::clone(&claimed);
            thread::spawn(move || {
                while let Some(range) = cursor.claim() {
                    claimed.fetch_add(range.len(), Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("claim worker");
    }
    assert_eq!(claimed.load(Ordering::Relaxed), n);
}
