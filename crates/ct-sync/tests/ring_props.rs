//! Property tests of `RingBuffer` close/drain semantics at randomized
//! capacities, thread counts and close timings.
//!
//! The generator is a hand-rolled xorshift PRNG with fixed seeds rather
//! than a registry property-testing crate, keeping the verified
//! substrate free of external dependencies; every run therefore explores
//! the same case set, and a failing case prints its full configuration
//! so it can be replayed directly.
//!
//! The property: for any (capacity, producers, consumers, items,
//! close-point) configuration, the multiset of items accepted by `push`
//! equals the multiset of items returned by `pop` — nothing is lost,
//! nothing is duplicated, and a closed buffer rejects exactly the
//! remainder. Metrics must stay consistent: one histogram sample per
//! stall, monotone counters.

#![cfg(not(loom))]

use ct_sync::ring::RingBuffer;
use std::collections::BTreeMap;
use std::sync::Arc;

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw from `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

#[derive(Debug, Clone, Copy)]
struct Case {
    capacity: usize,
    producers: u64,
    consumers: u64,
    items_per_producer: u64,
    /// Close the buffer after this many items have been popped in total
    /// (`None`: producers close it after sending everything).
    close_after_pops: Option<u64>,
}

fn multiset(values: impl IntoIterator<Item = u64>) -> BTreeMap<u64, usize> {
    let mut m = BTreeMap::new();
    for v in values {
        *m.entry(v).or_insert(0) += 1;
    }
    m
}

/// Run one configuration; returns (accepted, rejected, popped) counts
/// after asserting the conservation property.
fn run_case(case: Case) -> (usize, usize, usize) {
    let rb = Arc::new(RingBuffer::new(case.capacity));
    let popped_total = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let producer_handles: Vec<_> = (0..case.producers)
        .map(|p| {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut rejected = Vec::new();
                for i in 0..case.items_per_producer {
                    let item = p * 1_000_000 + i;
                    match rb.push(item) {
                        Ok(()) => accepted.push(item),
                        Err(returned) => {
                            assert_eq!(returned, item, "push must return the rejected item");
                            rejected.push(item);
                        }
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();

    let consumer_handles: Vec<_> = (0..case.consumers)
        .map(|_| {
            let rb = Arc::clone(&rb);
            let popped_total = Arc::clone(&popped_total);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = rb.pop() {
                    got.push(item);
                    let so_far =
                        popped_total.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    if case.close_after_pops == Some(so_far) {
                        rb.close();
                    }
                }
                got
            })
        })
        .collect();

    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for h in producer_handles {
        let (a, r) = h.join().expect("producer thread");
        accepted.extend(a);
        rejected.extend(r);
    }
    if case.close_after_pops.is_none() {
        rb.close();
    } else {
        // Close may never have triggered (fewer items than the threshold);
        // close now so consumers drain out.
        rb.close();
    }
    let mut popped = Vec::new();
    for h in consumer_handles {
        popped.extend(h.join().expect("consumer thread"));
    }

    // Conservation: accepted multiset == popped multiset, and together
    // with rejections every produced item is accounted for exactly once.
    assert_eq!(
        multiset(accepted.iter().copied()),
        multiset(popped.iter().copied()),
        "accepted != popped for {case:?}"
    );
    assert_eq!(
        accepted.len() + rejected.len(),
        (case.producers * case.items_per_producer) as usize,
        "lost track of items in {case:?}"
    );

    // A drained, closed buffer stays terminal.
    assert_eq!(rb.pop(), None, "post-drain pop must stay None for {case:?}");
    assert_eq!(
        rb.push(u64::MAX),
        Err(u64::MAX),
        "closed buffer must reject pushes for {case:?}"
    );

    // Metrics consistency.
    let m = rb.metrics();
    assert_eq!(m.capacity, case.capacity);
    assert_eq!(m.len, 0, "drained buffer reports items for {case:?}");
    assert!(
        m.high_water <= case.capacity,
        "high water above capacity for {case:?}: {m:?}"
    );
    assert_eq!(
        m.push_stall_hist.count(),
        m.push_stalls,
        "one histogram sample per push stall for {case:?}"
    );
    assert_eq!(
        m.pop_stall_hist.count(),
        m.pop_stalls,
        "one histogram sample per pop stall for {case:?}"
    );

    (accepted.len(), rejected.len(), popped.len())
}

#[test]
fn conservation_across_randomized_configurations() {
    let mut rng = Rng(0x1FDC_2019_0D15_7A17);
    for round in 0..60 {
        let total_items;
        let case = {
            let producers = rng.range(1, 4);
            let items_per_producer = rng.range(0, 40);
            total_items = producers * items_per_producer;
            Case {
                capacity: rng.range(1, 8) as usize,
                producers,
                consumers: rng.range(1, 4),
                items_per_producer,
                // Mostly graceful closes; every third round closes early
                // somewhere inside the stream to race close against
                // blocked producers and consumers.
                close_after_pops: if round % 3 == 2 && total_items > 0 {
                    Some(rng.range(1, total_items))
                } else {
                    None
                },
            }
        };
        let (accepted, rejected, popped) = run_case(case);
        assert_eq!(accepted, popped);
        if case.close_after_pops.is_none() {
            assert_eq!(
                rejected, 0,
                "graceful close must not reject anything: {case:?}"
            );
            assert_eq!(accepted as u64, total_items);
        }
    }
}

#[test]
fn capacity_one_under_maximum_contention() {
    // The tightest configuration — every push and most pops stall — run
    // at several thread counts.
    for threads in 1..=4u64 {
        let case = Case {
            capacity: 1,
            producers: threads,
            consumers: threads,
            items_per_producer: 25,
            close_after_pops: None,
        };
        let (accepted, rejected, popped) = run_case(case);
        assert_eq!(accepted as u64, threads * 25);
        assert_eq!(rejected, 0);
        assert_eq!(popped as u64, threads * 25);
    }
}

#[test]
fn immediate_close_rejects_everything() {
    let rb = RingBuffer::<u64>::new(4);
    rb.close();
    for i in 0..10 {
        assert_eq!(rb.push(i), Err(i));
    }
    assert_eq!(rb.pop(), None);
    assert_eq!(rb.metrics().push_stalls, 0, "closed pushes never stall");
}
