//! Exhaustive model checking of the `ct_par` work-claiming protocol
//! under `--cfg loom`.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --manifest-path crates/ct-sync/Cargo.toml \
//!     --release --test loom_cursor
//! ```
//!
//! `ct_par::Pool::parallel_chunks_mut_indexed` hands each mutable chunk
//! of a slice to exactly one worker: workers race on a shared
//! [`ChunkCursor`] for the next index, then `take()` the chunk out of a
//! per-index mutex slot. The two models here check both halves of that
//! protocol under every bounded-preemption interleaving: claims cover
//! the index space exactly once, and the slot handoff never yields the
//! same chunk to two workers.

#![cfg(loom)]

use ct_sync::cursor::ChunkCursor;
use ct_sync::model::model;
use ct_sync::{thread, Mutex};
use std::sync::Arc;

#[test]
fn ranged_claims_partition_the_index_space() {
    model(|| {
        let cursor = Arc::new(ChunkCursor::new(5, 2));
        let worker = |cursor: Arc<ChunkCursor>| {
            thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(range) = cursor.claim() {
                    mine.push(range);
                }
                mine
            })
        };
        let a = worker(Arc::clone(&cursor));
        let b = worker(cursor);
        let mut all: Vec<_> = a
            .join()
            .expect("worker a")
            .into_iter()
            .chain(b.join().expect("worker b"))
            .collect();
        all.sort_by_key(|r| r.start);
        // Exact disjoint cover of 0..5 under every interleaving.
        let mut expect_next = 0;
        for range in &all {
            assert_eq!(
                range.start, expect_next,
                "gap or overlap in claims: {all:?}"
            );
            assert!(!range.is_empty(), "empty claim in {all:?}");
            expect_next = range.end;
        }
        assert_eq!(expect_next, 5, "claims must cover the whole space: {all:?}");
    });
}

#[test]
fn chunk_slot_handoff_is_exactly_once() {
    // The full ct_par protocol in miniature: index claim via the cursor,
    // payload handoff via Mutex<Option<..>> slots. If two workers could
    // ever claim the same index, one of them would find its slot already
    // emptied — the expect() below turns that into a model failure.
    model(|| {
        let n = 3;
        let cursor = Arc::new(ChunkCursor::new(n, 1));
        let slots: Arc<Vec<Mutex<Option<u64>>>> =
            Arc::new((0..n).map(|i| Mutex::new(Some(100 + i as u64))).collect());
        let worker = |cursor: Arc<ChunkCursor>, slots: Arc<Vec<Mutex<Option<u64>>>>| {
            thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(idx) = cursor.claim_one() {
                    let payload = slots[idx]
                        .lock()
                        .take()
                        .expect("an index is claimed by exactly one worker");
                    sum += payload;
                }
                sum
            })
        };
        let a = worker(Arc::clone(&cursor), Arc::clone(&slots));
        let b = worker(Arc::clone(&cursor), Arc::clone(&slots));
        let total = a.join().expect("worker a") + b.join().expect("worker b");
        assert_eq!(total, 100 + 101 + 102, "every chunk processed once");
        assert!(
            slots.iter().all(|s| s.lock().is_none()),
            "every slot must have been taken"
        );
    });
}

#[test]
fn cursor_with_grain_zero_still_terminates() {
    // grain 0 is clamped to 1; under the model this also proves the
    // claim loop cannot livelock (the step bound would trip otherwise).
    model(|| {
        let cursor = Arc::new(ChunkCursor::new(2, 0));
        let a = {
            let cursor = Arc::clone(&cursor);
            thread::spawn(move || {
                let mut count = 0;
                while let Some(r) = cursor.claim() {
                    count += r.len();
                }
                count
            })
        };
        let mut count = 0;
        while let Some(r) = cursor.claim() {
            count += r.len();
        }
        count += a.join().expect("worker");
        assert_eq!(count, 2, "both indices claimed across the two threads");
    });
}
