//! Negative controls for the model checker itself: seeded concurrency
//! bugs that `model()` MUST flag. A checker that cannot fail proves
//! nothing — if any of these stops panicking, the explorer has lost its
//! teeth (e.g. a scheduling change stopped interleaving atomics, or
//! deadlock detection regressed).

#![cfg(loom)]

use ct_sync::atomic::{AtomicUsize, Ordering};
use ct_sync::model::model;
use ct_sync::{thread, Condvar, Mutex};
use std::sync::Arc;

#[test]
#[should_panic(expected = "lost-update race")]
fn detects_unsynchronised_read_modify_write() {
    // Classic lost update: two threads increment via separate load/store
    // instead of fetch_add. Under the schedule where both load before
    // either stores, the final value is 1 — the model must find it.
    model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let bump = |counter: Arc<AtomicUsize>| {
            thread::spawn(move || {
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            })
        };
        let a = bump(Arc::clone(&counter));
        let b = bump(Arc::clone(&counter));
        a.join().expect("bumper a");
        b.join().expect("bumper b");
        assert_eq!(
            counter.load(Ordering::SeqCst),
            2,
            "lost-update race: an increment vanished"
        );
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn detects_lost_wakeup() {
    // The flag is set without notifying the condvar: the waiter parks
    // forever. The explorer reaches the schedule where the waiter checks
    // the flag before it is set, parks, and is never woken — and must
    // report it as a deadlock instead of hanging.
    model(|| {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let (flag, cv) = &*shared;
                let mut set = flag.lock();
                while !*set {
                    cv.wait(&mut set);
                }
            })
        };
        {
            let (flag, _cv) = &*shared;
            *flag.lock() = true;
            // BUG under test: no notify_one() here.
        }
        waiter.join().expect("waiter thread");
    });
}

#[test]
#[should_panic(expected = "live threads")]
fn detects_leaked_thread() {
    // Returning from the model body with a spawned thread unjoined is a
    // model bug (its interleavings were not fully explored).
    model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let counter2 = Arc::clone(&counter);
        let _unjoined = thread::spawn(move || {
            counter2.fetch_add(1, Ordering::SeqCst);
        });
    });
}
