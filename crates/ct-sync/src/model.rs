//! The exhaustive-schedule test driver for `--cfg loom` builds.
//!
//! [`model`] runs a closure repeatedly, once per distinct bounded-
//! preemption thread schedule, using the depth-first path enumeration in
//! [`crate::engine`]. A test written against the `ct_sync` facade needs
//! no changes beyond being wrapped:
//!
//! ```ignore
//! ct_sync::model::model(|| {
//!     let ring = std::sync::Arc::new(RingBuffer::new(1));
//!     // spawn ct_sync::thread threads, assert invariants...
//! });
//! ```
//!
//! Any panic (assertion failure, detected deadlock, lost wakeup, leaked
//! thread) under any explored schedule is replayed out of `model` after
//! printing which schedule failed.

use crate::engine::{set_current, Ctx, Execution, Limits, Node};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration bounds. The defaults are tuned so every model in
/// `tests/loom_*.rs` finishes in seconds; override via environment for
/// deeper sweeps (`CT_LOOM_PREEMPTIONS`, `CT_LOOM_MAX_SCHEDULES`,
/// `CT_LOOM_MAX_STEPS`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum involuntary context switches per execution. 2 covers the
    /// overwhelming majority of real concurrency bugs while keeping the
    /// schedule count tractable.
    pub preemptions: usize,
    /// Abort the whole model if more schedules than this are explored.
    pub max_schedules: usize,
    /// Abort one execution if it passes more schedule points than this
    /// (livelock guard).
    pub max_steps: usize,
}

impl Config {
    /// Defaults, overridable from the environment.
    pub fn from_env() -> Self {
        fn read(name: &str, default: usize) -> usize {
            match std::env::var(name) {
                Ok(v) => v
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} must be a non-negative integer, got {v:?}")),
                Err(_) => default,
            }
        }
        Self {
            preemptions: read("CT_LOOM_PREEMPTIONS", 2),
            max_schedules: read("CT_LOOM_MAX_SCHEDULES", 100_000),
            max_steps: read("CT_LOOM_MAX_STEPS", 100_000),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Run `f` under every distinct thread schedule within the environment-
/// configured bounds. Panics if `f` panics (or deadlocks, loses a
/// wakeup, or leaks a thread) under any of them.
pub fn model<F: Fn()>(f: F) {
    model_with(Config::from_env(), f);
}

/// [`model`] with explicit bounds.
pub fn model_with<F: Fn()>(config: Config, f: F) {
    assert!(
        !crate::engine::has_current(),
        "model() does not nest: already inside a model execution"
    );
    let mut path: Vec<Node> = Vec::new();
    let mut schedules: usize = 0;
    loop {
        schedules += 1;
        assert!(
            schedules <= config.max_schedules,
            "explored {} schedules without exhausting the space — \
             simplify the model or raise CT_LOOM_MAX_SCHEDULES",
            config.max_schedules
        );
        let exec = Arc::new(Execution::new(
            Limits {
                preemption_bound: config.preemptions,
                max_steps: config.max_steps,
            },
            path,
        ));
        set_current(Some(Ctx {
            exec: Arc::clone(&exec),
            tid: 0,
        }));
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        match outcome {
            Ok(()) => exec.finish_main(),
            Err(payload) => exec.abort_with(payload),
        }
        set_current(None);
        exec.join_os_threads();
        if let Some(payload) = exec.take_abort() {
            eprintln!(
                "ct-sync model: failing schedule found after {schedules} \
                 execution(s); decision path: {:?}",
                exec.final_path()
            );
            resume_unwind(payload);
        }
        path = exec.final_path();
        if !advance(&mut path) {
            break;
        }
    }
    eprintln!("ct-sync model: {schedules} schedule(s) explored, all passed");
}

/// Advance the decision path to the next unexplored schedule, DFS-style:
/// bump the deepest decision that still has an untried alternative and
/// drop everything after it. Returns `false` when the space is exhausted.
fn advance(path: &mut Vec<Node>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.alts {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}
