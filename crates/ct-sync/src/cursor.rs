//! Lock-free work-claiming cursor for data-parallel loops.
//!
//! `ct_par` fans a pool of workers over `n` items (or chunks); each
//! worker repeatedly claims the next unclaimed range until the cursor is
//! exhausted. The protocol's whole correctness burden — every index
//! claimed exactly once, no index skipped, workers never deadlock — sits
//! in this one type, which is why it lives in the facade where the loom
//! build can exhaustively check it (`tests/loom_cursor.rs`).

use crate::atomic::{AtomicUsize, Ordering};
use std::ops::Range;

/// A monotone claim cursor over `0..n` in strides of `grain`.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    n: usize,
    grain: usize,
}

impl ChunkCursor {
    /// Cursor over `0..n`, claiming up to `grain` items at a time.
    /// A `grain` of 0 is treated as 1.
    pub fn new(n: usize, grain: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            n,
            grain: grain.max(1),
        }
    }

    /// Total number of items the cursor covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cursor covers no items at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Claim the next unclaimed range, or `None` once `0..n` is covered.
    ///
    /// `fetch_add` makes each claim unique: two workers can never
    /// receive overlapping ranges, and the union of all returned ranges
    /// is exactly `0..n`. `Relaxed` suffices because the returned range
    /// is the only communication — workers touch disjoint data.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.grain, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(start..self.n.min(start + self.grain))
    }

    /// Claim a single index; equivalent to `claim()` with a grain of 1
    /// (use one style per cursor, not both).
    pub fn claim_one(&self) -> Option<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        (idx < self.n).then_some(idx)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn claims_cover_exactly_once() {
        let cursor = ChunkCursor::new(10, 3);
        let mut seen = vec![0u32; 10];
        while let Some(range) = cursor.claim() {
            for i in range {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index claimed once: {seen:?}"
        );
    }

    #[test]
    fn zero_grain_behaves_as_one() {
        let cursor = ChunkCursor::new(2, 0);
        assert_eq!(cursor.claim(), Some(0..1));
        assert_eq!(cursor.claim(), Some(1..2));
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn empty_cursor_yields_nothing() {
        let cursor = ChunkCursor::new(0, 4);
        assert!(cursor.is_empty());
        assert_eq!(cursor.claim(), None);
        assert_eq!(cursor.claim_one(), None);
    }

    #[test]
    fn concurrent_claims_are_disjoint() {
        use std::sync::Arc;
        let cursor = Arc::new(ChunkCursor::new(1000, 7));
        let counts = Arc::new(
            (0..1000)
                .map(|_| std::sync::atomic::AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                let counts = Arc::clone(&counts);
                std::thread::spawn(move || {
                    while let Some(range) = cursor.claim() {
                        for i in range {
                            counts[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("claim worker");
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "index {i} claimed exactly once"
            );
        }
    }
}
