//! # ct-sync — the synchronisation facade of iFDK-rs
//!
//! Every blocking primitive the pipeline relies on lives behind this one
//! crate: the mutex/condvar pair coupling the three threads of a rank,
//! the bounded [`ring::RingBuffer`] between them (paper Section 4.1.3,
//! Figure 4a), the atomic [`cursor::ChunkCursor`] that `ct-par` steals
//! work through, and the unbounded [`channel`] under `ct-comm`'s message
//! fabric.
//!
//! The facade exists so the *same* code can be compiled two ways:
//!
//! * **Normally** (`cfg(not(loom))`): thin zero-cost wrappers over
//!   `std::sync` with a `parking_lot`-style API — `lock()` returns the
//!   guard directly, poisoning is swallowed (a panicking pipeline thread
//!   already aborts the run; its peers must still be able to drain).
//! * **Under `RUSTFLAGS="--cfg loom"`**: the primitives are replaced by
//!   the in-repo [`model`] checker, which runs a test closure under
//!   *every* bounded-preemption thread interleaving and fails on
//!   deadlocks, lost wakeups and violated assertions. See
//!   `tests/loom_ring.rs` and `tests/loom_cursor.rs`.
//!
//! The model engine is implemented here rather than pulled from the
//! `loom` crate so the whole verification story — like the rest of this
//! workspace's substrate crates — has no registry dependencies and runs
//! offline. Its scope is narrower than loom's (sequentially consistent
//! exploration only, FIFO condvar wakeups, no spurious wakeups, no
//! modelled timeouts); DESIGN.md §"Verification" spells out what that
//! does and does not prove.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod cursor;
pub mod ring;

#[cfg(not(loom))]
mod std_sync;
#[cfg(not(loom))]
pub use std_sync::{Condvar, Mutex, MutexGuard};

/// Atomic integer types with interleaving-aware loom replacements.
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning, routed through the model scheduler under loom.
#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::{spawn, JoinHandle};
}

#[cfg(loom)]
mod engine;
#[cfg(loom)]
pub mod model;
#[cfg(loom)]
pub use engine::atomic;
#[cfg(loom)]
pub use engine::sync::{Condvar, Mutex, MutexGuard};
#[cfg(loom)]
pub use engine::thread;
