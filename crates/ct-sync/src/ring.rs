//! Bounded circular buffers — the inter-thread queues of an iFDK rank.
//!
//! "Those threads ... execute independently and exchange data with each
//! other using circular buffers" (paper Section 4.1.3, Figure 4a). The
//! buffer is a classic bounded MPMC queue: producers block when it is
//! full (back-pressure keeps the filtering stage from racing ahead of the
//! GPU), consumers block when it is empty, and closing it wakes everyone
//! so pipelines drain cleanly.
//!
//! Stalls are first-class observations, not just counters: every blocked
//! push or pop records its wait *duration* into a log2 histogram (read it
//! back with [`RingBuffer::metrics`]), and a buffer built with
//! [`RingBuffer::with_wait_spans`] additionally emits a timed
//! `<name>.push_wait` / `<name>.pop_wait` span on the waiting thread's
//! ambient [`ct_obs::current`] track — which is how
//! `ct_obs::analysis` attributes pipeline stalls to specific buffers.
//!
//! The buffer lives in `ct-sync` (re-exported as `ifdk::ring`) so that it
//! is written against the facade's [`Mutex`]/[`Condvar`]: the `--cfg
//! loom` build swaps those for model-checked primitives and
//! `tests/loom_ring.rs` explores every bounded-preemption interleaving of
//! push/pop/close.

use crate::{Condvar, Mutex};
use ct_obs::clock::{self, Instant};
use ct_obs::Hist;
use std::collections::VecDeque;
use std::sync::Arc;

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Largest queue length ever reached (occupancy high-water mark).
    high_water: usize,
    /// Push calls that found the buffer full and had to wait at least
    /// once (back-pressure on the producer).
    push_stalls: u64,
    /// Pop calls that found the buffer empty and had to wait at least
    /// once (starvation of the consumer).
    pop_stalls: u64,
    /// Summed nanoseconds producers spent blocked in `push`.
    push_stall_ns: u64,
    /// Summed nanoseconds consumers spent blocked in `pop`.
    pop_stall_ns: u64,
    /// Longest single completed push stall, nanoseconds.
    push_stall_max_ns: u64,
    /// Longest single completed pop stall, nanoseconds.
    pop_stall_max_ns: u64,
    /// log2 histogram of individual push-stall durations.
    push_stall_hist: Hist,
    /// log2 histogram of individual pop-stall durations.
    pop_stall_hist: Hist,
    /// Producers currently blocked inside `push`.
    blocked_pushers: usize,
    /// Consumers currently blocked inside `pop`.
    blocked_poppers: usize,
    /// When the *oldest* currently blocked producer started waiting.
    /// `None` while no producer is blocked. When one of several blocked
    /// producers completes, this conservatively resets to "now" — exact
    /// for the 1-producer/1-consumer rings the iFDK pipeline uses, an
    /// underestimate (never a false stall) otherwise.
    push_wait_since: Option<Instant>,
    /// Same, consumer side.
    pop_wait_since: Option<Instant>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    /// `(push_wait, pop_wait)` span names emitted on the ambient track of
    /// a blocked thread; `None` keeps waits as bare metrics.
    wait_spans: Option<(&'static str, &'static str)>,
}

/// A bounded blocking FIFO. Clones share the same buffer.
pub struct RingBuffer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for RingBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> RingBuffer<T> {
    /// Create a buffer holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// Create a buffer that, in addition to the stall metrics, records a
    /// timed span on the blocked thread's [`ct_obs::current`] track for
    /// every stall: `push_wait` names producer-side waits, `pop_wait`
    /// consumer-side ones. Spans carry the stall ordinal as their index.
    /// With no ambient track bound (or the recorder off) the spans cost
    /// nothing.
    pub fn with_wait_spans(
        capacity: usize,
        push_wait: &'static str,
        pop_wait: &'static str,
    ) -> Self {
        Self::build(capacity, Some((push_wait, pop_wait)))
    }

    fn build(capacity: usize, wait_spans: Option<(&'static str, &'static str)>) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::with_capacity(capacity),
                    closed: false,
                    high_water: 0,
                    push_stalls: 0,
                    pop_stalls: 0,
                    push_stall_ns: 0,
                    pop_stall_ns: 0,
                    push_stall_max_ns: 0,
                    pop_stall_max_ns: 0,
                    push_stall_hist: Hist::default(),
                    pop_stall_hist: Hist::default(),
                    blocked_pushers: 0,
                    blocked_poppers: 0,
                    push_wait_since: None,
                    pop_wait_since: None,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity,
                wait_spans,
            }),
        }
    }

    /// Capacity the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Current queue length (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// True when currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking push. Returns `Err(item)` if the buffer is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.shared.state.lock();
        let mut wait: Option<(Instant, ct_obs::Span)> = None;
        let result = loop {
            if st.closed {
                break Err(item);
            }
            if st.queue.len() < self.shared.capacity {
                // analyze: allow(alloc, reason = "bounded: storage reserved at construction and the len < capacity check above holds, so push_back never reallocates")
                st.queue.push_back(item);
                st.high_water = st.high_water.max(st.queue.len());
                break Ok(());
            }
            if wait.is_none() {
                st.push_stalls += 1;
                st.blocked_pushers += 1;
                let started = clock::now();
                if st.push_wait_since.is_none() {
                    st.push_wait_since = Some(started);
                }
                let span = match self.shared.wait_spans {
                    Some((name, _)) => ct_obs::current::span(name).with_index(st.push_stalls - 1),
                    None => ct_obs::Span::disabled(),
                };
                wait = Some((started, span));
            }
            self.shared.not_full.wait(&mut st);
        };
        if let Some((started, span)) = wait {
            let ns = started.elapsed().as_nanos() as u64;
            st.push_stall_ns += ns;
            st.push_stall_max_ns = st.push_stall_max_ns.max(ns);
            st.push_stall_hist.record(ns);
            st.blocked_pushers -= 1;
            st.push_wait_since = if st.blocked_pushers == 0 {
                None
            } else {
                Some(clock::now())
            };
            drop(span);
        }
        drop(st);
        if result.is_ok() {
            self.shared.not_empty.notify_one();
        }
        result
    }

    /// Blocking pop. Returns `None` once the buffer is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        let mut wait: Option<(Instant, ct_obs::Span)> = None;
        let result = loop {
            if let Some(item) = st.queue.pop_front() {
                break Some(item);
            }
            if st.closed {
                break None;
            }
            if wait.is_none() {
                st.pop_stalls += 1;
                st.blocked_poppers += 1;
                let started = clock::now();
                if st.pop_wait_since.is_none() {
                    st.pop_wait_since = Some(started);
                }
                let span = match self.shared.wait_spans {
                    Some((_, name)) => ct_obs::current::span(name).with_index(st.pop_stalls - 1),
                    None => ct_obs::Span::disabled(),
                };
                wait = Some((started, span));
            }
            self.shared.not_empty.wait(&mut st);
        };
        if let Some((started, span)) = wait {
            let ns = started.elapsed().as_nanos() as u64;
            st.pop_stall_ns += ns;
            st.pop_stall_max_ns = st.pop_stall_max_ns.max(ns);
            st.pop_stall_hist.record(ns);
            st.blocked_poppers -= 1;
            st.pop_wait_since = if st.blocked_poppers == 0 {
                None
            } else {
                Some(clock::now())
            };
            drop(span);
        }
        drop(st);
        if result.is_some() {
            self.shared.not_full.notify_one();
        }
        result
    }

    /// Pop up to `max` items in one call (at least one unless the stream
    /// is finished) — how the BP thread assembles projection batches.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        match self.pop() {
            Some(first) => out.push(first),
            None => return out,
        }
        // Opportunistically take whatever else is already queued.
        let mut st = self.shared.state.lock();
        while out.len() < max {
            match st.queue.pop_front() {
                // analyze: allow(lock, reason = "Vec::push on the local batch buffer; matches the blocking RingBuffer::push only by method-name over-approximation (DESIGN 6c)")
                Some(item) => out.push(item),
                None => break,
            }
        }
        drop(st);
        self.shared.not_full.notify_all();
        out
    }

    /// Close the buffer: producers fail, consumers drain then see `None`.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        st.closed = true;
        drop(st);
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }

    /// Snapshot of the buffer's occupancy and stall statistics. These are
    /// what an observability layer reads once per pipeline run — the
    /// counters themselves are maintained inside the existing critical
    /// sections, so tracking them costs no extra synchronisation.
    pub fn metrics(&self) -> RingMetrics {
        let st = self.shared.state.lock();
        RingMetrics {
            capacity: self.shared.capacity,
            len: st.queue.len(),
            high_water: st.high_water,
            push_stalls: st.push_stalls,
            pop_stalls: st.pop_stalls,
            push_stall_ns: st.push_stall_ns,
            pop_stall_ns: st.pop_stall_ns,
            max_push_stall_ns: st.push_stall_max_ns,
            max_pop_stall_ns: st.pop_stall_max_ns,
            push_stall_hist: st.push_stall_hist.clone(),
            pop_stall_hist: st.pop_stall_hist.clone(),
        }
    }

    /// Live-telemetry snapshot: the [`RingBuffer::metrics`] counters
    /// plus the *in-flight* waits — how long the currently blocked
    /// producer/consumer (if any) has already been waiting. Completed
    /// stalls only show up in the histograms after the waiter wakes; a
    /// deadlocked or throttled lane never wakes, so a stall watchdog
    /// must see the wait *while it is happening*. This is what
    /// [`RingBuffer::live_probe`] samples.
    pub fn live_state(&self) -> ct_obs::live::RingLiveState {
        let st = self.shared.state.lock();
        let now = clock::now();
        let cur = |since: Option<Instant>| -> u64 {
            since.map_or(0, |s| now.saturating_duration_since(s).as_nanos() as u64)
        };
        ct_obs::live::RingLiveState {
            capacity: self.shared.capacity,
            len: st.queue.len(),
            high_water: st.high_water,
            push_stalls: st.push_stalls,
            pop_stalls: st.pop_stalls,
            push_stall_ns: st.push_stall_ns,
            pop_stall_ns: st.pop_stall_ns,
            max_push_stall_ns: st.push_stall_max_ns,
            max_pop_stall_ns: st.pop_stall_max_ns,
            cur_push_wait_ns: cur(st.push_wait_since),
            cur_pop_wait_ns: cur(st.pop_wait_since),
        }
    }
}

impl<T: Send + 'static> RingBuffer<T> {
    /// A named [`ct_obs::live::RingProbe`] over this buffer, ready for
    /// [`ct_obs::live::LiveRegistry::watch_ring`]. The probe holds a
    /// clone of the buffer (shared state, not data), so it keeps the
    /// ring's metrics alive for the sampler even after the pipeline
    /// drops its handles.
    pub fn live_probe(&self, name: impl Into<String>) -> ct_obs::live::RingProbe {
        let rb = self.clone();
        ct_obs::live::RingProbe::new(name, move || rb.live_state())
    }
}

/// A point-in-time view of a buffer's occupancy statistics.
///
/// `high_water` close to `capacity` plus a large `push_stalls` means the
/// consumer is the bottleneck (the paper's back-pressure case: filtering
/// races ahead of back-projection); a large `pop_stalls` with a low
/// high-water mark means the producer is. The `*_stall_ns` totals and
/// histograms say how *costly* those stalls were, not just how frequent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RingMetrics {
    /// Configured capacity.
    pub capacity: usize,
    /// Queue length at snapshot time.
    pub len: usize,
    /// Largest queue length ever reached.
    pub high_water: usize,
    /// Push calls that blocked on a full buffer at least once.
    pub push_stalls: u64,
    /// Pop calls that blocked on an empty buffer at least once.
    pub pop_stalls: u64,
    /// Summed nanoseconds producers spent blocked.
    pub push_stall_ns: u64,
    /// Summed nanoseconds consumers spent blocked.
    pub pop_stall_ns: u64,
    /// Longest single completed push stall, nanoseconds.
    pub max_push_stall_ns: u64,
    /// Longest single completed pop stall, nanoseconds.
    pub max_pop_stall_ns: u64,
    /// log2 histogram of individual push-stall durations.
    pub push_stall_hist: Hist,
    /// log2 histogram of individual pop-stall durations.
    pub pop_stall_hist: Hist,
}

impl RingMetrics {
    /// Summed producer blocked time in seconds.
    pub fn push_stall_secs(&self) -> f64 {
        self.push_stall_ns as f64 / 1e9
    }

    /// Summed consumer blocked time in seconds.
    pub fn pop_stall_secs(&self) -> f64 {
        self.pop_stall_ns as f64 / 1e9
    }

    /// Longest single completed push stall in seconds.
    pub fn max_push_stall_secs(&self) -> f64 {
        self.max_push_stall_ns as f64 / 1e9
    }

    /// Longest single completed pop stall in seconds.
    pub fn max_pop_stall_secs(&self) -> f64 {
        self.max_pop_stall_ns as f64 / 1e9
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Deterministic handshake: spin (yielding) until `cond` holds. The
    /// ring's stall counters increment *before* the thread parks, so
    /// "peer has stalled" is observable without sleeping — the tests
    /// below use this instead of `thread::sleep` so they cannot flake on
    /// a loaded machine and waste no wall-clock when the peer is fast.
    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = clock::now() + Duration::from_secs(30);
        while !cond() {
            assert!(clock::now() < deadline, "timed out waiting until {what}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn fifo_order() {
        let rb = RingBuffer::new(4);
        rb.push(1).expect("open buffer accepts");
        rb.push(2).expect("open buffer accepts");
        rb.push(3).expect("open buffer accepts");
        assert_eq!(rb.pop(), Some(1));
        assert_eq!(rb.pop(), Some(2));
        assert_eq!(rb.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let rb = RingBuffer::new(4);
        rb.push("a").expect("open buffer accepts");
        rb.close();
        assert_eq!(rb.push("b"), Err("b"));
        assert_eq!(rb.pop(), Some("a"));
        assert_eq!(rb.pop(), None);
    }

    #[test]
    fn producer_blocks_until_consumed() {
        let rb = RingBuffer::new(1);
        rb.push(0u32).expect("open buffer accepts");
        let rb2 = rb.clone();
        let handle = std::thread::spawn(move || {
            // This push must block until the main thread pops.
            rb2.push(1).expect("buffer never closes");
        });
        wait_until("producer stalls on the full buffer", || {
            rb.metrics().push_stalls == 1
        });
        assert_eq!(rb.len(), 1, "blocked producer must not have pushed");
        assert_eq!(rb.pop(), Some(0));
        handle.join().expect("producer thread");
        assert_eq!(rb.pop(), Some(1));
    }

    #[test]
    fn consumer_blocks_until_produced() {
        let rb = RingBuffer::<u64>::new(2);
        let rb2 = rb.clone();
        let handle = std::thread::spawn(move || rb2.pop());
        wait_until("consumer stalls on the empty buffer", || {
            rb.metrics().pop_stalls == 1
        });
        rb.push(99).expect("open buffer accepts");
        assert_eq!(handle.join().expect("consumer thread"), Some(99));
    }

    #[test]
    fn pop_batch_takes_available() {
        let rb = RingBuffer::new(8);
        for i in 0..5 {
            rb.push(i).expect("open buffer accepts");
        }
        let batch = rb.pop_batch(3);
        assert_eq!(batch, vec![0, 1, 2]);
        let batch = rb.pop_batch(10);
        assert_eq!(batch, vec![3, 4]);
        rb.close();
        assert!(rb.pop_batch(4).is_empty());
        assert!(rb.pop_batch(0).is_empty());
    }

    #[test]
    fn pipeline_transfers_everything() {
        let rb = RingBuffer::new(3);
        let producer = rb.clone();
        let n = 1000u32;
        let handle = std::thread::spawn(move || {
            for i in 0..n {
                producer.push(i).expect("buffer never closes early");
            }
            producer.close();
        });
        let mut got = Vec::new();
        while let Some(x) = rb.pop() {
            got.push(x);
        }
        handle.join().expect("producer thread");
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer_multi_consumer() {
        let rb = RingBuffer::new(4);
        let total: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let rb = rb.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        rb.push(t * 1000 + i).expect("buffer never closes");
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rb = rb.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        let mut count = 0;
                        while count < 200 {
                            if let Some(x) = rb.pop() {
                                sum += x;
                                count += 1;
                            }
                        }
                        sum
                    })
                })
                .collect();
            consumers
                .into_iter()
                .map(|c| c.join().expect("consumer thread"))
                .sum()
        });
        let expect: u64 = (0..4u64)
            .map(|t| (0..100).map(|i| t * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let rb = RingBuffer::new(8);
        assert_eq!(
            rb.metrics(),
            RingMetrics {
                capacity: 8,
                ..RingMetrics::default()
            }
        );
        rb.push(1).expect("open buffer accepts");
        rb.push(2).expect("open buffer accepts");
        rb.push(3).expect("open buffer accepts");
        assert_eq!(rb.metrics().high_water, 3);
        // Draining does not lower the mark.
        assert!(rb.pop().is_some());
        assert!(rb.pop().is_some());
        assert_eq!(rb.metrics().len, 1);
        assert_eq!(rb.metrics().high_water, 3);
        rb.push(4).expect("open buffer accepts");
        assert_eq!(rb.metrics().high_water, 3, "peak was 3, now only 2 queued");
    }

    #[test]
    fn push_stalls_and_pop_stalls_are_counted_once_per_call() {
        let rb = RingBuffer::new(1);

        // Unblocked traffic: no stalls, no waits.
        rb.push(0u32).expect("open buffer accepts");
        assert_eq!(rb.pop(), Some(0));
        let m = rb.metrics();
        assert_eq!((m.push_stalls, m.pop_stalls), (0, 0));
        assert_eq!((m.push_stall_ns, m.pop_stall_ns), (0, 0));

        // A push into a full buffer stalls exactly once, even though the
        // condvar may wake it spuriously several times.
        rb.push(1).expect("open buffer accepts");
        let rb2 = rb.clone();
        let producer = std::thread::spawn(move || rb2.push(2).expect("buffer never closes"));
        wait_until("producer stalls on the full buffer", || {
            rb.metrics().push_stalls == 1
        });
        assert_eq!(rb.pop(), Some(1));
        producer.join().expect("producer thread");
        assert_eq!(rb.metrics().push_stalls, 1);

        // A pop from an empty buffer waits exactly once.
        assert_eq!(rb.pop(), Some(2));
        let rb2 = rb.clone();
        let consumer = std::thread::spawn(move || rb2.pop());
        wait_until("consumer stalls on the empty buffer", || {
            rb.metrics().pop_stalls == 1
        });
        rb.push(3).expect("open buffer accepts");
        assert_eq!(consumer.join().expect("consumer thread"), Some(3));
        let m = rb.metrics();
        assert_eq!((m.push_stalls, m.pop_stalls), (1, 1));
        // Each stall parked on a condvar for at least one scheduler
        // round-trip; the durations must land in the totals and the
        // histograms (one sample each).
        assert!(m.push_stall_ns > 0, "push stall unrecorded: {m:?}");
        assert!(m.pop_stall_ns > 0, "pop stall unrecorded: {m:?}");
        assert_eq!(m.push_stall_hist.count(), 1);
        assert_eq!(m.pop_stall_hist.count(), 1);
        // The single stall is also the longest one so far.
        assert_eq!(m.max_push_stall_ns, m.push_stall_ns);
        assert_eq!(m.max_pop_stall_ns, m.pop_stall_ns);
        assert!((m.push_stall_secs() - m.push_stall_ns as f64 / 1e9).abs() < 1e-12);
        assert!(m.max_push_stall_secs() > 0.0);
    }

    #[test]
    fn backpressured_pipeline_reports_stalls() {
        // Fill the buffer, then start a producer that must stall; only
        // begin draining once the stall is visible in the metrics. The
        // buffer saturates (high_water == capacity) deterministically.
        let rb = RingBuffer::new(2);
        rb.push(0u32).expect("open buffer accepts");
        rb.push(1).expect("open buffer accepts");
        let producer = rb.clone();
        let handle = std::thread::spawn(move || {
            for i in 2..50u32 {
                producer.push(i).expect("buffer never closes early");
            }
            producer.close();
        });
        wait_until("producer stalls on the full buffer", || {
            rb.metrics().push_stalls > 0
        });
        let mut got = 0;
        while rb.pop().is_some() {
            got += 1;
        }
        handle.join().expect("producer thread");
        assert_eq!(got, 50);
        let m = rb.metrics();
        assert_eq!(m.high_water, 2);
        assert!(m.push_stalls > 0, "fast producer never stalled: {m:?}");
        assert_eq!(
            m.push_stall_hist.count(),
            m.push_stalls,
            "one histogram sample per stall"
        );
        assert!(m.push_stall_ns > 0);
    }

    #[test]
    fn live_state_exposes_in_flight_waits() {
        let rb = RingBuffer::new(1);
        rb.push(0u32).expect("open buffer accepts");

        // No one blocked: both in-flight waits read zero.
        let s = rb.live_state();
        assert_eq!((s.cur_push_wait_ns, s.cur_pop_wait_ns), (0, 0));
        assert_eq!(s.worst_wait_ns(), 0);

        // Block a producer; its wait must be visible *while it waits* —
        // before any histogram sample exists.
        let producer = {
            let rb = rb.clone();
            std::thread::spawn(move || rb.push(1).expect("buffer never closes"))
        };
        wait_until("producer stalls on the full buffer", || {
            rb.metrics().push_stalls == 1
        });
        wait_until("in-flight push wait becomes visible", || {
            rb.live_state().cur_push_wait_ns > 0
        });
        let s = rb.live_state();
        assert_eq!(s.push_stall_ns, 0, "stall has not completed yet");
        assert_eq!(s.push_stalls, 1, "but it is already counted");
        assert!(s.worst_wait_ns() >= s.cur_push_wait_ns);

        // Unblock; the in-flight wait clears and the completed maximum
        // takes over.
        assert_eq!(rb.pop(), Some(0));
        producer.join().expect("producer thread");
        let s = rb.live_state();
        assert_eq!(s.cur_push_wait_ns, 0);
        assert!(s.max_push_stall_ns > 0);
        assert_eq!(s.worst_wait_ns(), s.max_push_stall_ns);

        // The probe wraps the same state under a name.
        let probe = rb.live_probe("ring.test");
        assert_eq!(probe.name(), "ring.test");
        assert_eq!(probe.read(), rb.live_state());
    }

    #[test]
    fn wait_spans_land_on_the_ambient_track() {
        use ct_obs::{Recorder, ThreadRole};

        let rec = Recorder::trace();
        let rb = RingBuffer::with_wait_spans(1, "ring.test.push_wait", "ring.test.pop_wait");

        // Consumer (this thread) waits on an empty buffer with an ambient
        // track bound; the producer pushes only once the consumer's stall
        // is visible, so exactly one wait span is recorded.
        let producer = {
            let rb = rb.clone();
            std::thread::spawn(move || {
                wait_until("consumer stalls on the empty buffer", || {
                    rb.metrics().pop_stalls == 1
                });
                rb.push(7u32).expect("buffer never closes");
            })
        };
        {
            let track = rec.track(3, ThreadRole::Main);
            let _cur = ct_obs::current::set_current(&track);
            assert_eq!(rb.pop(), Some(7));
        }
        producer.join().expect("producer thread");

        let data = rec.collect();
        let waits: Vec<_> = data
            .events
            .iter()
            .filter(|e| e.name == "ring.test.pop_wait")
            .collect();
        assert_eq!(waits.len(), 1, "one stall, one span: {:?}", data.events);
        assert_eq!(waits[0].rank, 3);
        assert_eq!(waits[0].role, ThreadRole::Main);
        assert_eq!(waits[0].index, Some(0));
        assert!(waits[0].dur_ns > 0, "span must cover the wait");
        let m = rb.metrics();
        assert_eq!(m.pop_stalls, 1);
    }

    #[test]
    fn unnamed_buffers_record_no_spans() {
        use ct_obs::{Recorder, ThreadRole};

        let rec = Recorder::trace();
        let rb = RingBuffer::new(1);
        let producer = {
            let rb = rb.clone();
            std::thread::spawn(move || {
                wait_until("consumer stalls on the empty buffer", || {
                    rb.metrics().pop_stalls == 1
                });
                rb.push(1u32).expect("buffer never closes");
            })
        };
        {
            let track = rec.track(0, ThreadRole::Main);
            let _cur = ct_obs::current::set_current(&track);
            assert_eq!(rb.pop(), Some(1));
        }
        producer.join().expect("producer thread");
        assert!(
            rec.collect().events.is_empty(),
            "plain RingBuffer::new must stay span-silent"
        );
        assert_eq!(rb.metrics().pop_stalls, 1, "metrics still count the stall");
    }
}
