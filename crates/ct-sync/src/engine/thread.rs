//! Model-checked thread spawn/join.
//!
//! Each model thread is backed by a real OS thread, but it only executes
//! while it holds the scheduler's token, so spawning here is how a test
//! introduces concurrency *into the model* — the explorer interleaves it
//! against its peers at every schedule point.

use super::{current, set_current, Ctx, Execution};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
    exec: Arc<Execution>,
}

impl<T> JoinHandle<T> {
    /// Wait (in model terms) for the thread to finish and return its
    /// result. Mirrors [`std::thread::JoinHandle::join`]; a panic on the
    /// target thread aborts the whole model instead of surfacing as
    /// `Err`, so the `Err` arm is never constructed here.
    pub fn join(self) -> std::thread::Result<T> {
        self.exec.join_thread(self.tid);
        let result = self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("finished model thread stored its result");
        Ok(result)
    }
}

/// Spawn a model thread running `f`; a schedule point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = current();
    let exec = Arc::clone(&ctx.exec);
    let tid = exec.register_thread();
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("ct-loom-{tid}"))
        .spawn(move || {
            set_current(Some(Ctx {
                exec: Arc::clone(&exec2),
                tid,
            }));
            // Park until first scheduled; if the execution aborts before
            // that, skip the body entirely.
            if catch_unwind(AssertUnwindSafe(|| exec2.wait_for_token(tid))).is_err() {
                set_current(None);
                return;
            }
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                    exec2.finish_thread(tid);
                }
                Err(payload) => exec2.abort_with(payload),
            }
            set_current(None);
        })
        .expect("failed to spawn an OS thread for the model");
    exec.adopt_os_handle(os);
    // Registration itself is a visible action: give the scheduler the
    // chance to run the new thread (or anyone else) right away.
    exec.schedule_point();
    JoinHandle { tid, slot, exec }
}

/// A bare schedule point, for models that want to widen exploration
/// around a plain computation step.
pub fn yield_now() {
    current().exec.schedule_point();
}
