//! Model-checked `Mutex`/`Condvar`, API-identical to `crate::std_sync`.
//!
//! Mutual exclusion is enforced by the scheduler (only the token-holding
//! thread runs, and it only proceeds past `lock()` once it logically owns
//! the mutex), so the inner `std::sync::Mutex` protecting the data is
//! never contended — it exists to hand out `&mut T` without `unsafe`.

use super::{current, next_object_id, Execution};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, PoisonError};

/// A model-checked mutual-exclusion lock.
#[derive(Debug)]
pub struct Mutex<T> {
    id: u64,
    data: std::sync::Mutex<T>,
}

/// RAII guard for the model [`Mutex`].
pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    exec: Arc<Execution>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new model mutex.
    pub fn new(value: T) -> Self {
        Self {
            id: next_object_id(),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock; a schedule point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let ctx = current();
        ctx.exec.mutex_acquire(self.id);
        MutexGuard {
            mx: self,
            inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
            exec: ctx.exec,
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard slot is only empty inside Condvar::wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard slot is only empty inside Condvar::wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data guard before the logical unlock so the next
        // logical owner's `data.lock()` cannot contend.
        self.inner = None;
        self.exec.mutex_release(self.mx.id);
    }
}

/// A model-checked condition variable.
#[derive(Debug)]
pub struct Condvar {
    id: u64,
}

impl Condvar {
    /// Create a new model condvar.
    pub fn new() -> Self {
        Self {
            id: next_object_id(),
        }
    }

    /// Atomically release the guard's mutex and park until notified,
    /// reacquiring the mutex before returning. Model wakeups are FIFO
    /// and never spurious; callers still re-check their predicate in a
    /// loop, exactly as the production build requires.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let exec = Arc::clone(&guard.exec);
        guard.inner = None;
        exec.condvar_wait(self.id, guard.mx.id);
        guard.inner = Some(guard.mx.data.lock().unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake the longest-parked waiter, if any; a schedule point.
    pub fn notify_one(&self) {
        current().exec.condvar_notify_one(self.id);
    }

    /// Wake every waiter; a schedule point.
    pub fn notify_all(&self) {
        current().exec.condvar_notify_all(self.id);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
