//! The model-checking engine behind `--cfg loom` builds.
//!
//! One [`Execution`] runs the user's model closure once, under one
//! specific thread schedule. Model threads are real OS threads, but only
//! one ever executes at a time: every synchronisation operation (mutex
//! acquire, condvar wait/notify, atomic access, spawn/join/finish) is a
//! *schedule point* where the engine consults the recorded decision path
//! and hands the single execution token to the chosen thread. The
//! [`crate::model`] driver then enumerates decision paths depth-first,
//! so a test closure is re-run under every distinct bounded-preemption
//! interleaving.
//!
//! What the engine detects:
//!
//! * **Deadlocks / lost wakeups** — a state where no thread is runnable
//!   but not all have finished aborts the whole model with a per-thread
//!   state dump (a consumer parked on a condvar that nobody will ever
//!   notify shows up here).
//! * **Assertion failures** — a panic on any model thread under any
//!   explored schedule is replayed out of [`crate::model::model`].
//! * **Leaked threads** — the closure returning while spawned threads
//!   are still live is a model bug and fails fast.
//!
//! Deliberate simplifications versus the `loom` crate (documented in
//! DESIGN.md): interleavings are explored at sequential consistency
//! (`Ordering` arguments are accepted but not weakened), condvar wakeups
//! are FIFO and never spurious, and timeouts are not modelled.

pub mod atomic;
pub mod sync;
pub mod thread;

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Allocates process-unique ids for model mutexes and condvars.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// One decision in a schedule: which of `alts` runnable candidates was
/// chosen at a multi-way schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Index into the candidate list that was (or will be) taken.
    pub chosen: usize,
    /// Number of candidates that were available at this point.
    pub alts: usize,
}

/// Exploration limits; see [`crate::model::Config`] for the public face.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    pub preemption_bound: usize,
    pub max_steps: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// Schedulable.
    Ready,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(u64),
    /// Parked on the condvar with this id.
    BlockedCv(u64),
    /// Waiting for the thread with this index to finish.
    BlockedJoin(usize),
    /// Returned from its closure.
    Finished,
}

struct ExecState {
    threads: Vec<RunState>,
    /// The one thread holding the execution token.
    active: usize,
    /// Decision path: replayed prefix + decisions appended this run.
    path: Vec<Node>,
    /// Next index into `path` to replay.
    depth: usize,
    preemptions: usize,
    steps: usize,
    /// First panic payload; once set, every schedule point unwinds.
    abort: Option<Box<dyn Any + Send>>,
    /// Mutex id -> owning thread (if any).
    mutexes: BTreeMap<u64, Option<usize>>,
    /// Condvar id -> FIFO queue of parked thread ids.
    cv_waiters: BTreeMap<u64, Vec<usize>>,
}

enum Picked {
    /// A thread holds the token; keep going.
    Run,
    /// Every thread has finished; the execution is complete.
    Complete,
    /// No runnable thread but unfinished threads remain.
    Deadlock,
}

/// One run of the model closure under one schedule.
pub struct Execution {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
    limits: Limits,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The per-OS-thread binding to the execution it is acting in.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Ctx {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "ct-sync loom primitives used outside model(): \
             wrap the test body in ct_sync::model::model(|| ...)"
        )
    })
}

pub(crate) fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Whether the calling OS thread is already bound to an execution.
pub(crate) fn has_current() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl Execution {
    pub fn new(limits: Limits, path: Vec<Node>) -> Self {
        Self {
            st: StdMutex::new(ExecState {
                threads: vec![RunState::Ready],
                active: 0,
                path,
                depth: 0,
                preemptions: 0,
                steps: 0,
                abort: None,
                mutexes: BTreeMap::new(),
                cv_waiters: BTreeMap::new(),
            }),
            cv: StdCondvar::new(),
            limits,
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a panic payload (first one wins) and wake every thread so
    /// the whole execution unwinds.
    pub(crate) fn abort_with(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.lock_state();
        if st.abort.is_none() {
            st.abort = Some(payload);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn abort_message(&self, st: &mut ExecState, msg: String) {
        if st.abort.is_none() {
            st.abort = Some(Box::new(msg));
        }
    }

    /// Choose the next thread to hold the execution token. Called with
    /// the state lock held, by the thread that currently holds the token
    /// (or is giving it up).
    fn pick_next(&self, st: &mut ExecState) -> Picked {
        st.steps += 1;
        if st.steps > self.limits.max_steps {
            self.abort_message(
                st,
                format!(
                    "model exceeded {} schedule points in one execution — \
                     livelock in the model, or raise CT_LOOM_MAX_STEPS",
                    self.limits.max_steps
                ),
            );
            return Picked::Deadlock;
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, RunState::Ready))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().all(|s| matches!(s, RunState::Finished)) {
                return Picked::Complete;
            }
            let dump: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, s)| format!("thread {i}: {s:?}"))
                .collect();
            self.abort_message(
                st,
                format!(
                    "deadlock: no runnable thread (lost wakeup?) — {}",
                    dump.join(", ")
                ),
            );
            return Picked::Deadlock;
        }
        let prev = st.active;
        let prev_enabled = enabled.contains(&prev);
        // Preemption bounding: once the budget is spent, a thread that
        // can keep running does keep running. This is what makes the
        // schedule space finite-small while still covering every
        // "interrupted at the worst moment up to N times" scenario.
        let cands = if prev_enabled && st.preemptions >= self.limits.preemption_bound {
            vec![prev]
        } else {
            enabled
        };
        let chosen = if cands.len() == 1 {
            cands[0]
        } else {
            let idx = if st.depth < st.path.len() {
                let node = st.path[st.depth];
                if node.alts != cands.len() {
                    self.abort_message(
                        st,
                        format!(
                            "nondeterministic model: schedule point {} had {} \
                             candidates on replay but {} when first explored — \
                             model closures must be deterministic apart from \
                             thread interleaving",
                            st.depth,
                            cands.len(),
                            node.alts
                        ),
                    );
                    return Picked::Deadlock;
                }
                node.chosen
            } else {
                st.path.push(Node {
                    chosen: 0,
                    alts: cands.len(),
                });
                0
            };
            st.depth += 1;
            cands[idx]
        };
        if prev_enabled && chosen != prev {
            st.preemptions += 1;
        }
        st.active = chosen;
        Picked::Run
    }

    /// Panic out of a model thread once the execution is aborting. The
    /// panic is caught by the thread's `catch_unwind` wrapper (or by
    /// `model()` itself for thread 0).
    fn unwind_abort(&self) -> ! {
        panic!("ct-sync model execution aborted");
    }

    /// Park the calling OS thread until its model thread holds the token.
    fn wait_for_token(&self, me: usize) {
        let mut st = self.lock_state();
        loop {
            if st.abort.is_some() {
                drop(st);
                self.unwind_abort();
            }
            if st.active == me && matches!(st.threads[me], RunState::Ready) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain schedule point: the running thread stays runnable but the
    /// scheduler may hand the token to a peer first.
    pub(crate) fn schedule_point(&self) {
        let me = current().tid;
        let mut st = self.lock_state();
        if st.abort.is_some() {
            drop(st);
            self.unwind_abort();
        }
        match self.pick_next(&mut st) {
            Picked::Run => {
                if st.active == me {
                    return;
                }
            }
            Picked::Complete => return,
            Picked::Deadlock => {
                drop(st);
                self.cv.notify_all();
                self.unwind_abort();
            }
        }
        drop(st);
        self.cv.notify_all();
        self.wait_for_token(me);
    }

    /// Move the calling thread into `blocked`, give up the token, and
    /// return once the thread is scheduled again.
    fn block_and_wait(&self, me: usize, blocked: RunState) {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            drop(st);
            self.unwind_abort();
        }
        st.threads[me] = blocked;
        if let Picked::Deadlock = self.pick_next(&mut st) {
            drop(st);
            self.cv.notify_all();
            self.unwind_abort();
        }
        drop(st);
        self.cv.notify_all();
        self.wait_for_token(me);
    }

    /// Acquire the model mutex `mid`, blocking (in model terms) while a
    /// peer owns it.
    pub(crate) fn mutex_acquire(&self, mid: u64) {
        self.schedule_point();
        let me = current().tid;
        loop {
            let mut st = self.lock_state();
            if st.abort.is_some() {
                drop(st);
                self.unwind_abort();
            }
            let owner = st.mutexes.entry(mid).or_insert(None);
            if owner.is_none() {
                *owner = Some(me);
                return;
            }
            drop(st);
            self.block_and_wait(me, RunState::BlockedMutex(mid));
        }
    }

    /// Release `mid` and make its waiters runnable. Never panics: guard
    /// drops run during abort unwinding too.
    pub(crate) fn mutex_release(&self, mid: u64) {
        let mut st = self.lock_state();
        st.mutexes.insert(mid, None);
        for state in st.threads.iter_mut() {
            if *state == RunState::BlockedMutex(mid) {
                *state = RunState::Ready;
            }
        }
        // The releaser keeps the token; the woken threads compete for the
        // lock at the next schedule point (which in the wrappers always
        // follows immediately — a notify, an atomic op, or Finish).
    }

    /// Atomically release `mid` and park on condvar `cvid`; reacquire
    /// `mid` after being notified.
    pub(crate) fn condvar_wait(&self, cvid: u64, mid: u64) {
        let me = current().tid;
        {
            let mut st = self.lock_state();
            if st.abort.is_some() {
                drop(st);
                self.unwind_abort();
            }
            st.mutexes.insert(mid, None);
            for state in st.threads.iter_mut() {
                if *state == RunState::BlockedMutex(mid) {
                    *state = RunState::Ready;
                }
            }
            st.cv_waiters.entry(cvid).or_default().push(me);
            st.threads[me] = RunState::BlockedCv(cvid);
            if let Picked::Deadlock = self.pick_next(&mut st) {
                drop(st);
                self.cv.notify_all();
                self.unwind_abort();
            }
        }
        self.cv.notify_all();
        self.wait_for_token(me);
        // Notified and scheduled: reacquire the mutex (competing with any
        // peer that grabbed it first, exactly like a real condvar).
        loop {
            let mut st = self.lock_state();
            if st.abort.is_some() {
                drop(st);
                self.unwind_abort();
            }
            let owner = st.mutexes.entry(mid).or_insert(None);
            if owner.is_none() {
                *owner = Some(me);
                return;
            }
            drop(st);
            self.block_and_wait(me, RunState::BlockedMutex(mid));
        }
    }

    /// Wake the longest-parked waiter of `cvid`, if any.
    pub(crate) fn condvar_notify_one(&self, cvid: u64) {
        self.schedule_point();
        let mut st = self.lock_state();
        if let Some(waiters) = st.cv_waiters.get_mut(&cvid) {
            if !waiters.is_empty() {
                let tid = waiters.remove(0);
                st.threads[tid] = RunState::Ready;
            }
        }
    }

    /// Wake every waiter of `cvid`.
    pub(crate) fn condvar_notify_all(&self, cvid: u64) {
        self.schedule_point();
        let mut st = self.lock_state();
        let woken: Vec<usize> = st
            .cv_waiters
            .get_mut(&cvid)
            .map(|waiters| waiters.drain(..).collect())
            .unwrap_or_default();
        for tid in woken {
            st.threads[tid] = RunState::Ready;
        }
    }

    /// Register a new model thread; returns its id. The OS thread backing
    /// it must call [`Execution::wait_for_token`] before running user
    /// code.
    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(RunState::Ready);
        st.threads.len() - 1
    }

    fn adopt_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h);
    }

    /// Mark `me` finished and schedule a successor. The OS thread exits
    /// afterwards, so it does not wait for the token again.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return;
        }
        st.threads[me] = RunState::Finished;
        for state in st.threads.iter_mut() {
            if *state == RunState::BlockedJoin(me) {
                *state = RunState::Ready;
            }
        }
        if let Picked::Deadlock = self.pick_next(&mut st) {
            drop(st);
            self.cv.notify_all();
            return; // exiting anyway; peers unwind via the abort flag
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Block until model thread `target` finishes.
    pub(crate) fn join_thread(&self, target: usize) {
        self.schedule_point();
        let me = current().tid;
        loop {
            let st = self.lock_state();
            if st.abort.is_some() {
                drop(st);
                self.unwind_abort();
            }
            if matches!(st.threads[target], RunState::Finished) {
                return;
            }
            drop(st);
            self.block_and_wait(me, RunState::BlockedJoin(target));
        }
    }

    /// Thread 0's closure returned: the execution is complete if and only
    /// if every spawned thread was joined.
    pub(crate) fn finish_main(&self) {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return;
        }
        st.threads[0] = RunState::Finished;
        let leaked: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, RunState::Finished))
            .map(|(i, _)| i)
            .collect();
        if !leaked.is_empty() {
            let msg = format!(
                "model closure returned with live threads {leaked:?} — \
                 join every spawned thread before the model body ends"
            );
            self.abort_message(&mut st, msg);
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Join every OS thread backing a model thread. Safe to call once the
    /// execution is complete or aborting: completion implies all model
    /// threads finished, and the abort flag unparks every waiter.
    pub(crate) fn join_os_threads(&self) {
        let handles: Vec<_> = self
            .os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            // A panicked model thread already recorded its payload via
            // abort_with; the OS-level join result carries nothing new.
            let _ = h.join();
        }
    }

    /// The panic payload that aborted this execution, if any.
    pub(crate) fn take_abort(&self) -> Option<Box<dyn Any + Send>> {
        self.lock_state().abort.take()
    }

    /// The decision path after the run: the replayed prefix plus every
    /// decision first explored during this execution.
    pub(crate) fn final_path(&self) -> Vec<Node> {
        self.lock_state().path.clone()
    }
}
