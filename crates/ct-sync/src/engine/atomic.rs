//! Model-checked atomic integers.
//!
//! Every operation is a schedule point, so the explorer interleaves
//! peers around each access. Exploration is sequentially consistent: the
//! `Ordering` argument is accepted for API parity but not used to weaken
//! the search — a property that holds under SC but *relies* on a relaxed
//! ordering for cross-location visibility is outside this checker's
//! power (DESIGN.md §"Verification" discusses the gap).

use super::current;
pub use std::sync::atomic::Ordering;

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            pub fn new(v: $int) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            /// Load the value; a schedule point.
            pub fn load(&self, _order: Ordering) -> $int {
                current().exec.schedule_point();
                self.inner.load(Ordering::SeqCst)
            }

            /// Store a value; a schedule point.
            pub fn store(&self, v: $int, _order: Ordering) {
                current().exec.schedule_point();
                self.inner.store(v, Ordering::SeqCst);
            }

            /// Atomically swap, returning the previous value; a schedule
            /// point.
            pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                current().exec.schedule_point();
                self.inner.swap(v, Ordering::SeqCst)
            }

            /// Compare-and-exchange; a schedule point.
            pub fn compare_exchange(
                &self,
                cur: $int,
                new: $int,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$int, $int> {
                current().exec.schedule_point();
                self.inner
                    .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Read the value without a schedule point (the non-atomic
            /// final read a test makes after joining its threads).
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $int:ty) => {
        impl $name {
            /// Atomically add, returning the previous value; a schedule
            /// point.
            pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                current().exec.schedule_point();
                self.inner.fetch_add(v, Ordering::SeqCst)
            }

            /// Atomically subtract, returning the previous value; a
            /// schedule point.
            pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                current().exec.schedule_point();
                self.inner.fetch_sub(v, Ordering::SeqCst)
            }
        }
    };
}

model_atomic!(
    /// Model-checked [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    AtomicUsize,
    usize
);
model_atomic!(
    /// Model-checked [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    AtomicU64,
    u64
);
model_atomic!(
    /// Model-checked [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    AtomicBool,
    bool
);
model_atomic_int!(AtomicUsize, usize);
model_atomic_int!(AtomicU64, u64);
