//! Production implementations: thin wrappers over `std::sync` with the
//! `parking_lot`-flavoured API the workspace was written against.
//!
//! Two deliberate differences from raw `std::sync`:
//!
//! * `lock()` returns the guard directly. Poison is swallowed
//!   ([`std::sync::PoisonError::into_inner`]): when a pipeline thread
//!   panics the run is already lost, but sibling threads still drain
//!   their ring buffers during unwinding and must not double-panic.
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming it,
//!   which is what lets the loom build substitute a scheduler-aware
//!   guard without changing any call sites.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock. `lock()` never fails; poison is swallowed.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can move the std guard out and back
    // while the caller keeps holding `&mut MutexGuard`. Outside of the
    // body of `wait` the slot is always `Some`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T> MutexGuard<'a, T> {
    fn std(&self) -> &std::sync::MutexGuard<'a, T> {
        self.inner
            .as_ref()
            .expect("guard slot is only empty inside Condvar::wait")
    }

    fn std_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        self.inner
            .as_mut()
            .expect("guard slot is only empty inside Condvar::wait")
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std()
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_mut()
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// reacquiring the mutex before returning. Callers must re-check
    /// their predicate in a loop (wakeups may be spurious).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard
            .inner
            .take()
            // analyze: allow(panic, reason = "guard slot is refilled before wait/wait_timeout return, so it can never be observed empty here")
            .expect("guard slot is only empty inside Condvar::wait");
        let std_guard = self
            .inner
            // analyze: allow(lock, reason = "facade primitive: this is the single release/reacquire point; the predicate re-check loop is the callers' contract and this same pass enforces it at every call site")
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns
    /// `true` if the wait timed out (the mutex is reacquired either way).
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard
            .inner
            .take()
            .expect("guard slot is only empty inside Condvar::wait_timeout");
        let (std_guard, result) = self
            .inner
            // analyze: allow(lock, reason = "facade primitive: single release/reacquire point for timed waits; callers re-check their predicate in a loop, which this pass enforces at call sites")
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handshake() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*shared;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().expect("setter thread panicked");
    }

    #[test]
    fn wait_timeout_expires_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let timed_out = cv.wait_timeout(&mut g, Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poison must be swallowed");
    }
}
