//! Unbounded MPMC channel over the facade's [`Mutex`]/[`Condvar`].
//!
//! API-compatible with the subset of `crossbeam_channel` the pipeline
//! uses (`unbounded`, `Sender::send`, `Receiver::recv` /
//! `recv_timeout`, disconnect-on-last-drop semantics), so the comm
//! fabric needs only an import swap — and because it is built from the
//! facade primitives, the same code is explored by the loom-mode model
//! checker.

use crate::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

#[cfg(not(loom))]
use ct_obs::clock;
#[cfg(not(loom))]
use std::time::Duration;

/// Sending on a channel whose receivers have all been dropped returns
/// the message back to the caller.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl so `expect()` works on `send()` results even when the
// payload is not `Debug` (the payload is deliberately not printed).
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Receiving on a channel that is empty with every sender dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now; senders still exist.
    Empty,
    /// Empty and every sender has been dropped.
    Disconnected,
}

/// Outcome of a bounded-time receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Empty and every sender has been dropped.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel is empty"),
            TryRecvError::Disconnected => f.write_str("channel is empty with no senders"),
        }
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty with no senders"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for TryRecvError {}
impl std::error::Error for RecvTimeoutError {}

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    st: Mutex<ChanState<T>>,
    cv: Condvar,
}

/// The sending half; clone freely, drop to disconnect.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; clone freely, drop to disconnect.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        st: Mutex::new(ChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cv: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueue `value`. Fails (returning the value) only when every
    /// receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.st.lock();
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.st.lock().senders += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.st.lock();
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            // Blocked receivers must observe the disconnect.
            self.chan.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the oldest message, blocking while the channel is empty
    /// and senders remain.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.chan.cv.wait(&mut st);
        }
    }

    /// Dequeue the oldest message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.st.lock();
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Like [`Receiver::recv`], but give up after `timeout`.
    ///
    /// Not available in loom builds: the model checker does not model
    /// time, so bounded waits have no meaning under it.
    #[cfg(not(loom))]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = clock::now() + timeout;
        let mut st = self.chan.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(clock::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            self.chan.cv.wait_timeout(&mut st, remaining);
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.st.lock().receivers += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.st.lock().receivers -= 1;
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..4 {
            tx.send(i).expect("receiver is live");
        }
        assert_eq!(
            (0..4)
                .map(|_| rx.recv().expect("queued"))
                .collect::<Vec<i32>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn recv_observes_sender_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).expect("receiver is live");
        drop(tx);
        assert_eq!(rx.recv(), Ok(9), "queued messages drain after disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).expect("receiver is live");
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
    }

    #[test]
    fn blocked_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<u64>();
        let h = std::thread::spawn(move || rx.recv());
        tx.send(77).expect("receiver is live");
        assert_eq!(h.join().expect("receiver thread"), Ok(77));
    }

    #[test]
    fn blocked_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u64>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().expect("receiver thread"), Err(RecvError));
    }
}
