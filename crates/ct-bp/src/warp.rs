//! The `shflBP` kernel structure — paper Listing 1 on CPU.
//!
//! The CUDA kernel assigns one projection of a 32-wide batch to each warp
//! lane: lane `s` computes `U = u` and `Z = 1/z` for its projection once,
//! and every lane reads all 32 values back through `__shfl_sync` while
//! accumulating its voxel. On the CPU the warp becomes two small stack
//! arrays (`u_batch`, `f_batch`) computed once per voxel *column* and
//! reused across the whole column — the same op-count saving, plus the
//! Theorem 2/3 column reuse of Algorithm 4.
//!
//! Batching also means each voxel is read-modified-written **once per
//! 32 projections** instead of once per projection ("decreasing the access
//! count of the volume data which is stored in the global memory",
//! Section 3.3.1).

use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::{ProjectionStack, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// The paper's projection batch size (`Nbatch = 32`, Listing 1).
pub const WARP_BATCH: usize = 32;

/// Abstraction over the projection fetch path, letting the same kernel
/// body run against the Table 3 access variants (row-major "L1",
/// transposed, blocked "texture", nearest-fetch RTK).
pub trait Sampler: Sync {
    /// Bilinear (or variant-defined) sample at detector coordinates
    /// `(u, v)` of the *original* projection orientation.
    fn sample(&self, u: f32, v: f32) -> f32;
}

impl<S: Sampler> Sampler for &S {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        (**self).sample(u, v)
    }
}

impl Sampler for ct_core::projection::ProjectionImage {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        ct_core::projection::ProjectionImage::sample(self, u, v)
    }
}

impl Sampler for TransposedProjection {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        TransposedProjection::sample(self, u, v)
    }
}

impl Sampler for ct_core::projection::BlockedProjection {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        ct_core::projection::BlockedProjection::sample(self, u, v)
    }
}

/// Generic batched kernel: Algorithm 4 loop structure with Listing 1's
/// 32-projection batching, over any projection access path.
///
/// Output is k-major; `dims.nz` must be even.
pub fn backproject_warp_with<S: Sampler>(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
    batch: usize,
) -> Volume {
    assert_eq!(mats.len(), samplers.len(), "one matrix per projection");
    assert!(dims.nz.is_multiple_of(2), "warp kernel needs even Nz");
    assert!((1..=WARP_BATCH).contains(&batch), "batch must be in 1..=32");
    let (ny, nz) = (dims.ny, dims.nz);
    let half = nz / 2;
    let np = mats.len();
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();

    let mut vol = Volume::zeros(dims, VolumeLayout::KMajor);
    let chunk = ny * nz;
    pool.parallel_chunks_mut(vol.data_mut(), chunk, |start, slice| {
        let i = start / chunk;
        let ifl = i as f32;
        let mut u_batch = [0.0f32; WARP_BATCH];
        let mut f_batch = [0.0f32; WARP_BATCH];
        let mut w_batch = [0.0f32; WARP_BATCH];
        let mut y0_batch = [0.0f32; WARP_BATCH];
        let mut yk_batch = [0.0f32; WARP_BATCH];
        for s0 in (0..np).step_by(batch) {
            let s1 = (s0 + batch).min(np);
            let width = s1 - s0;
            for j in 0..ny {
                let jf = j as f32;
                // "Lane" setup: per projection of the batch, the constants
                // of the voxel column (Listing 1 lines 11-14).
                for (lane, mat) in rows[s0..s1].iter().enumerate() {
                    let x = mat[0][0] * ifl + mat[0][1] * jf + mat[0][3];
                    let z = mat[2][0] * ifl + mat[2][1] * jf + mat[2][3];
                    let f = 1.0 / z;
                    u_batch[lane] = x * f;
                    f_batch[lane] = f;
                    w_batch[lane] = f * f;
                    // y(k) is affine in k: y0 + k * dy (the "1 inner
                    // product" of Algorithm 4 line 12, hoisted).
                    y0_batch[lane] = mat[1][0] * ifl + mat[1][1] * jf + mat[1][3];
                    yk_batch[lane] = mat[1][2];
                }
                let col = &mut slice[j * nz..(j + 1) * nz];
                for k in 0..half {
                    let kf = k as f32;
                    // Listing 1 lines 15-27: in-register accumulation over
                    // the batch for the voxel and its Theorem-1 mirror.
                    let mut sum = 0.0f32;
                    let mut sum_m = 0.0f32;
                    for lane in 0..width {
                        let y = y0_batch[lane] + yk_batch[lane] * kf;
                        let v = y * f_batch[lane];
                        let w = w_batch[lane];
                        let u = u_batch[lane];
                        let q = &samplers[s0 + lane];
                        sum += w * q.sample(u, v);
                        let v_m = (nv as f32 - 1.0) - v;
                        sum_m += w * q.sample(u, v_m);
                    }
                    // Lines 29-30: one volume update per batch.
                    col[k] += sum;
                    col[nz - 1 - k] += sum_m;
                }
            }
        }
    });
    vol
}

/// The paper's best configuration (`L1-Tran`): transposed projections,
/// k-major volume, 32-projection batches.
pub fn backproject_warp(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    let transposed: Vec<TransposedProjection> = projs.iter().map(|p| p.transposed()).collect();
    backproject_warp_with(pool, mats, &transposed, projs.dims().nv, dims, WARP_BATCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::backproject_standard;
    use ct_core::geometry::CbctGeometry;
    use ct_core::metrics::nrmse;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 5 + v * 11 + s) % 23) as f32) * 0.5 - 3.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn warp_matches_standard_at_paper_tolerance() {
        // More projections than one batch, and not a multiple of 32,
        // so the tail-batch path is exercised too.
        let (geo, mats, stack) = setup(40, 16);
        let reference = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        let warp = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume)
            .into_layout(VolumeLayout::IMajor);
        let ne = nrmse(reference.data(), warp.data()).unwrap();
        assert!(ne < 1e-5, "normalised RMSE {ne}");
    }

    #[test]
    fn batch_size_does_not_change_result_materially() {
        let (geo, mats, stack) = setup(33, 8);
        let full = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        for b in [1usize, 4, 32] {
            let v = backproject_warp_with(
                &Pool::serial(),
                &mats,
                &transposed,
                stack.dims().nv,
                geo.volume,
                b,
            );
            let ne = nrmse(full.data(), v.data()).unwrap();
            assert!(ne < 1e-6, "batch {b}: {ne}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (geo, mats, stack) = setup(16, 8);
        let a = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        let b = backproject_warp(&Pool::new(3), &mats, &stack, geo.volume);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_samplers_agree() {
        let (geo, mats, stack) = setup(8, 8);
        let nv = stack.dims().nv;
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let blocked: Vec<_> = stack.iter().map(|p| p.blocked()).collect();
        let rowmajor: Vec<_> = stack.iter().cloned().collect();
        let a = backproject_warp_with(&Pool::serial(), &mats, &transposed, nv, geo.volume, 32);
        let b = backproject_warp_with(&Pool::serial(), &mats, &blocked, nv, geo.volume, 32);
        let c = backproject_warp_with(&Pool::serial(), &mats, &rowmajor, nv, geo.volume, 32);
        assert!(nrmse(a.data(), b.data()).unwrap() < 1e-6);
        assert!(nrmse(a.data(), c.data()).unwrap() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "batch must be in 1..=32")]
    fn oversized_batch_rejected() {
        let (geo, mats, stack) = setup(4, 8);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        backproject_warp_with(
            &Pool::serial(),
            &mats,
            &transposed,
            stack.dims().nv,
            geo.volume,
            64,
        );
    }
}
