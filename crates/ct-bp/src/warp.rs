//! The `shflBP` kernel structure — paper Listing 1 on CPU.
//!
//! The CUDA kernel assigns one projection of a 32-wide batch to each warp
//! lane: lane `s` computes `U = u` and `Z = 1/z` for its projection once,
//! and every lane reads all 32 values back through `__shfl_sync` while
//! accumulating its voxel. On the CPU the warp becomes two small stack
//! arrays (`u_batch`, `f_batch`) computed once per voxel *column* and
//! reused across the whole column — the same op-count saving, plus the
//! Theorem 2/3 column reuse of Algorithm 4.
//!
//! Batching also means each voxel is read-modified-written **once per
//! 32 projections** instead of once per projection ("decreasing the access
//! count of the volume data which is stored in the global memory",
//! Section 3.3.1).

use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::{ProjectionStack, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// The paper's projection batch size (`Nbatch = 32`, Listing 1).
pub const WARP_BATCH: usize = 32;

/// Fixed SIMD-friendly chunk width of the batched inner loop. Every
/// batch is processed as `ceil(width / 8)` chunks of exactly 8 lanes;
/// the trailing chunk is padded with zero-weight lanes so the compiler
/// sees loops of constant trip count over fixed-size arrays and can
/// auto-vectorize them (no `unsafe`, no explicit SIMD).
pub const LANE_WIDTH: usize = 8;

/// Abstraction over the projection fetch path, letting the same kernel
/// body run against the Table 3 access variants (row-major "L1",
/// transposed, blocked "texture", nearest-fetch RTK).
pub trait Sampler: Sync {
    /// Bilinear (or variant-defined) sample at detector coordinates
    /// `(u, v)` of the *original* projection orientation.
    fn sample(&self, u: f32, v: f32) -> f32;

    /// Fixed-`u` column sweep: `out[k] += w * sample(u, vs[k])` for every
    /// `k`. Theorem 2 makes `u` invariant along a voxel column, so layouts
    /// with contiguous `v` can resolve the `u` interpolation once per
    /// sweep instead of once per voxel; this default is the reference the
    /// specialisations must match bit for bit.
    #[inline]
    fn accumulate_column(&self, u: f32, vs: &[f32], w: f32, out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(vs) {
            *o += w * self.sample(u, v);
        }
    }
}

impl<S: Sampler> Sampler for &S {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        (**self).sample(u, v)
    }

    #[inline]
    fn accumulate_column(&self, u: f32, vs: &[f32], w: f32, out: &mut [f32]) {
        (**self).accumulate_column(u, vs, w, out)
    }
}

impl Sampler for ct_core::projection::ProjectionImage {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        ct_core::projection::ProjectionImage::sample(self, u, v)
    }
}

impl Sampler for TransposedProjection {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        TransposedProjection::sample(self, u, v)
    }

    /// The "L1" fast path: resolve `u` once (floor, fraction, border) and
    /// sweep `v` down two contiguous rows of the transposed buffer. The
    /// arithmetic is `interp2` with its operations reordered per axis, so
    /// the results are bit-identical to the default path.
    fn accumulate_column(&self, u: f32, vs: &[f32], w: f32, out: &mut [f32]) {
        let dims = self.dims();
        let (nu, nv) = (dims.nu, dims.nv);
        let fu = u.floor();
        let du = u - fu;
        let iu = fu as isize;
        // Columns touching the u border still need the zero-border blend
        // on both axes: leave them to the reference path.
        if iu < 0 || iu + 1 >= nu as isize {
            for (o, &v) in out.iter_mut().zip(vs) {
                *o += w * self.sample(u, v);
            }
            return;
        }
        let iu = iu as usize;
        let data = self.data();
        let Some(rows) = data.get(iu * nv..(iu + 2) * nv) else {
            // `iu + 1 < nu` was just checked, so the rows always exist;
            // fall back to the reference path rather than trusting that.
            for (o, &v) in out.iter_mut().zip(vs) {
                *o += w * self.sample(u, v);
            }
            return;
        };
        let (row0, row1) = rows.split_at(nv);
        for (o, &v) in out.iter_mut().zip(vs) {
            let fv = v.floor();
            let d = v - fv;
            let iv = fv as isize;
            let fast = usize::try_from(iv)
                .ok()
                .and_then(|i| Some((row0.get(i..i + 2)?, row1.get(i..i + 2)?)));
            let (a0, a1, b0, b1) = match fast {
                Some((&[a0, a1], &[b0, b1])) => (a0, a1, b0, b1),
                _ => {
                    let s = |r: &[f32], x: isize| {
                        usize::try_from(x)
                            .ok()
                            .and_then(|i| r.get(i))
                            .copied()
                            .unwrap_or(0.0)
                    };
                    (s(row0, iv), s(row0, iv + 1), s(row1, iv), s(row1, iv + 1))
                }
            };
            let t1 = a0 * (1.0 - d) + a1 * d;
            let t2 = b0 * (1.0 - d) + b1 * d;
            *o += w * (t1 * (1.0 - du) + t2 * du);
        }
    }
}

/// Reusable per-column sweep state for [`ColumnBatch::accumulate_into`]:
/// the voxel accumulators (`up`, `down`) plus the per-lane detector-row
/// scratch, allocated once per worker instead of once per column.
#[derive(Debug, Clone)]
pub struct SweepBuffers {
    /// Accumulated batch contribution of the upper-slab voxels.
    pub up: Vec<f32>,
    /// Accumulated batch contribution of the Theorem-1 mirror voxels.
    pub down: Vec<f32>,
    vs: Vec<f32>,
    vs_m: Vec<f32>,
}

impl SweepBuffers {
    /// Buffers for a depth sweep of `len` voxel pairs.
    pub fn new(len: usize) -> Self {
        Self {
            up: Self::column(len),
            down: Self::column(len),
            vs: Self::column(len),
            vs_m: Self::column(len),
        }
    }

    /// One zeroed sweep column.
    fn column(len: usize) -> Vec<f32> {
        // analyze: allow(alloc, reason = "constructor: sweep buffers are allocated once per worker/tile and reused across every column")
        vec![0.0; len]
    }

    /// Zero the accumulators for the next column.
    #[inline]
    pub fn reset(&mut self) {
        self.up.fill(0.0);
        self.down.fill(0.0);
    }
}

impl Sampler for ct_core::projection::BlockedProjection {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        ct_core::projection::BlockedProjection::sample(self, u, v)
    }
}

/// Per-column lane constants for one projection batch — the CPU image of
/// the warp registers of Listing 1, restructured into fixed-width
/// [`LANE_WIDTH`]-lane chunks.
///
/// [`ColumnBatch::compute`] evaluates, once per voxel column `(i, j)`,
/// the per-projection values `u`, `1/z`, `1/z^2` and the affine
/// coefficients of `y(k)` (Theorems 2-3 hoisting). The hot k-loop then
/// calls [`ColumnBatch::accumulate`], whose inner loops run over exactly
/// 8 lanes each: detector-row arithmetic and the weighted accumulation
/// happen in fixed `[f32; 8]` arrays the compiler auto-vectorizes. Lanes
/// past the batch width carry zero weight (and clamp their sampler
/// index), so tail batches cost one padded chunk instead of a
/// variable-length scalar loop.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    u: [f32; WARP_BATCH],
    f: [f32; WARP_BATCH],
    w: [f32; WARP_BATCH],
    y0: [f32; WARP_BATCH],
    yk: [f32; WARP_BATCH],
    chunks: usize,
    width: usize,
}

impl ColumnBatch {
    /// Lane setup for the column `(i, j)` (Listing 1 lines 11-14):
    /// `rows` holds the matrix rows of the projections of this batch
    /// (at most [`WARP_BATCH`] of them).
    #[inline]
    pub fn compute(rows: &[[[f32; 4]; 3]], ifl: f32, jf: f32) -> Self {
        debug_assert!(
            (1..=WARP_BATCH).contains(&rows.len()),
            "batch must be in 1..=32"
        );
        let width = rows.len();
        let mut cb = ColumnBatch {
            u: [0.0; WARP_BATCH],
            f: [0.0; WARP_BATCH],
            w: [0.0; WARP_BATCH],
            y0: [0.0; WARP_BATCH],
            yk: [0.0; WARP_BATCH],
            chunks: width.div_ceil(LANE_WIDTH),
            width,
        };
        let lanes =
            cb.u.iter_mut()
                .zip(cb.f.iter_mut())
                .zip(cb.w.iter_mut())
                .zip(cb.y0.iter_mut().zip(cb.yk.iter_mut()));
        for ((((u, f_), w), (y0, yk)), mat) in lanes.zip(rows) {
            let [[xx, xy, _, xc], [yx, yy, ydz, yc], [zx, zy, _, zc]] = *mat;
            let x = xx * ifl + xy * jf + xc;
            let z = zx * ifl + zy * jf + zc;
            let f = 1.0 / z;
            *u = x * f;
            *f_ = f;
            *w = f * f;
            // y(k) is affine in k: y0 + k * dy (the "1 inner product" of
            // Algorithm 4 line 12, hoisted).
            *y0 = yx * ifl + yy * jf + yc;
            *yk = ydz;
        }
        cb
    }

    /// Accumulate the voxel at depth `kf` and its Theorem-1 mirror over
    /// the whole batch, returning `(sum, mirror_sum)`. `vmax` is
    /// `Nv - 1` as f32 (the mirrored detector row is `vmax - v`).
    ///
    /// `samplers` must be the projection samplers of this batch, in lane
    /// order. The reduction over lanes uses a fixed tree, so the result
    /// depends only on the batch content — not on thread count or batch
    /// chunking of the caller.
    #[inline]
    pub fn accumulate<S: Sampler>(&self, samplers: &[S], kf: f32, vmax: f32) -> (f32, f32) {
        debug_assert_eq!(samplers.len(), self.width, "one sampler per lane");
        let mut acc = [0.0f32; LANE_WIDTH];
        let mut acc_m = [0.0f32; LANE_WIDTH];
        let chunks = self
            .y0
            .chunks_exact(LANE_WIDTH)
            .zip(self.yk.chunks_exact(LANE_WIDTH))
            .zip(self.f.chunks_exact(LANE_WIDTH))
            .zip(self.u.chunks_exact(LANE_WIDTH))
            .zip(self.w.chunks_exact(LANE_WIDTH))
            .take(self.chunks);
        for (c, ((((y0c, ykc), fc), uc), wc)) in chunks.enumerate() {
            let base = c * LANE_WIDTH;
            // Detector-row arithmetic for 8 lanes at once — constant trip
            // count over fixed arrays, the auto-vectorization target.
            let mut v = [0.0f32; LANE_WIDTH];
            for (vl, ((&y0, &yk), &f)) in v.iter_mut().zip(y0c.iter().zip(ykc).zip(fc)) {
                *vl = (y0 + yk * kf) * f;
            }
            let lanes = v.iter().zip(uc).zip(wc).zip(acc.iter_mut().zip(&mut acc_m));
            for (l, (((&vl, &u), &w), (a, am))) in lanes.enumerate() {
                // Padded lanes clamp to the last real sampler; their
                // weight is exactly 0.0 so they contribute nothing.
                let Some(q) = samplers
                    .get((base + l).min(self.width - 1))
                    .or_else(|| samplers.last())
                else {
                    continue;
                };
                *a += w * q.sample(u, vl);
                *am += w * q.sample(u, vmax - vl);
            }
        }
        (tree8(&acc), tree8(&acc_m))
    }

    /// Sweep the whole depth range of the column at once: for step `k`
    /// (global depth `k0 + k`), add the batch contribution of the voxel
    /// to `buf.up[k]` and of its Theorem-1 mirror to `buf.down[k]`.
    ///
    /// The detector rows of a lane (`(y0 + yk*kf) * f` and its mirror) are
    /// evaluated with exactly the per-voxel path's expressions into the
    /// scratch arrays, then each lane becomes one
    /// [`Sampler::accumulate_column`] sweep with the `u` interpolation
    /// hoisted out of the depth loop — the dominant cost of the per-voxel
    /// path. Lanes accumulate in batch order, so results depend only on
    /// the batch content and `k0`, never on the calling driver's tiling
    /// or thread count.
    #[inline]
    pub fn accumulate_into<S: Sampler>(
        &self,
        samplers: &[S],
        k0: usize,
        vmax: f32,
        buf: &mut SweepBuffers,
    ) {
        debug_assert_eq!(samplers.len(), self.width, "one sampler per lane");
        let lanes = samplers
            .iter()
            .zip(self.f.iter().zip(&self.w).zip(&self.u))
            .zip(self.y0.iter().zip(&self.yk));
        for ((q, ((&f, &w), &u)), (&y0, &yk)) in lanes {
            let rows = buf.vs.iter_mut().zip(buf.vs_m.iter_mut()).enumerate();
            for (k, (vs, vs_m)) in rows {
                let kf = (k0 + k) as f32;
                let vl = (y0 + yk * kf) * f;
                *vs = vl;
                *vs_m = vmax - vl;
            }
            q.accumulate_column(u, &buf.vs, w, &mut buf.up);
            q.accumulate_column(u, &buf.vs_m, w, &mut buf.down);
        }
    }
}

/// Fixed-shape pairwise reduction of 8 lanes (order never depends on
/// runtime state, keeping every kernel bit-deterministic).
#[inline]
fn tree8(a: &[f32; LANE_WIDTH]) -> f32 {
    let [a0, a1, a2, a3, a4, a5, a6, a7] = *a;
    ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7))
}

/// Generic batched kernel: Algorithm 4 loop structure with Listing 1's
/// 32-projection batching, over any projection access path.
///
/// Output is k-major; `dims.nz` must be even.
pub fn backproject_warp_with<S: Sampler>(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
    batch: usize,
) -> Volume {
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert_eq!(mats.len(), samplers.len(), "one matrix per projection");
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert!(dims.nz.is_multiple_of(2), "warp kernel needs even Nz");
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert!((1..=WARP_BATCH).contains(&batch), "batch must be in 1..=32");
    let (ny, nz) = (dims.ny, dims.nz);
    let half = nz / 2;
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();

    let vmax = nv as f32 - 1.0;
    let mut vol = Volume::zeros(dims, VolumeLayout::KMajor);
    let chunk = ny * nz;
    pool.parallel_chunks_mut_indexed(vol.data_mut(), chunk, |i, _start, slice| {
        let ifl = i as f32;
        let mut buf = SweepBuffers::new(half);
        for (rows_b, samplers_b) in rows.chunks(batch).zip(samplers.chunks(batch)) {
            for (j, col) in slice.chunks_exact_mut(nz).enumerate().take(ny) {
                let jf = j as f32;
                // "Lane" setup: per projection of the batch, the constants
                // of the voxel column (Listing 1 lines 11-14).
                let cb = ColumnBatch::compute(rows_b, ifl, jf);
                // Listing 1 lines 15-30 as a depth sweep: batch-local
                // accumulation, then one volume update per voxel and its
                // Theorem-1 mirror.
                buf.reset();
                cb.accumulate_into(samplers_b, 0, vmax, &mut buf);
                let (col_up, col_down) = col.split_at_mut(half);
                for (dst, src) in col_up.iter_mut().zip(&buf.up) {
                    *dst += *src;
                }
                for (dst, src) in col_down.iter_mut().rev().zip(&buf.down) {
                    *dst += *src;
                }
            }
        }
    });
    vol
}

/// The paper's best configuration (`L1-Tran`): transposed projections,
/// k-major volume, 32-projection batches.
pub fn backproject_warp(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    let transposed: Vec<TransposedProjection> = projs.iter().map(|p| p.transposed()).collect();
    backproject_warp_with(pool, mats, &transposed, projs.dims().nv, dims, WARP_BATCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::backproject_standard;
    use ct_core::geometry::CbctGeometry;
    use ct_core::metrics::nrmse;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 5 + v * 11 + s) % 23) as f32) * 0.5 - 3.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn warp_matches_standard_at_paper_tolerance() {
        // More projections than one batch, and not a multiple of 32,
        // so the tail-batch path is exercised too.
        let (geo, mats, stack) = setup(40, 16);
        let reference = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        let warp = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume)
            .into_layout(VolumeLayout::IMajor);
        let ne = nrmse(reference.data(), warp.data()).unwrap();
        assert!(ne < 1e-5, "normalised RMSE {ne}");
    }

    #[test]
    fn batch_size_does_not_change_result_materially() {
        let (geo, mats, stack) = setup(33, 8);
        let full = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        for b in [1usize, 4, 32] {
            let v = backproject_warp_with(
                &Pool::serial(),
                &mats,
                &transposed,
                stack.dims().nv,
                geo.volume,
                b,
            );
            let ne = nrmse(full.data(), v.data()).unwrap();
            assert!(ne < 1e-6, "batch {b}: {ne}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (geo, mats, stack) = setup(16, 8);
        let a = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        let b = backproject_warp(&Pool::new(3), &mats, &stack, geo.volume);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_samplers_agree() {
        let (geo, mats, stack) = setup(8, 8);
        let nv = stack.dims().nv;
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let blocked: Vec<_> = stack.iter().map(|p| p.blocked()).collect();
        let rowmajor: Vec<_> = stack.iter().cloned().collect();
        let a = backproject_warp_with(&Pool::serial(), &mats, &transposed, nv, geo.volume, 32);
        let b = backproject_warp_with(&Pool::serial(), &mats, &blocked, nv, geo.volume, 32);
        let c = backproject_warp_with(&Pool::serial(), &mats, &rowmajor, nv, geo.volume, 32);
        assert!(nrmse(a.data(), b.data()).unwrap() < 1e-6);
        assert!(nrmse(a.data(), c.data()).unwrap() < 1e-6);
    }

    #[test]
    fn transposed_fast_path_is_bit_identical_to_reference() {
        // Force the default (per-sample) accumulate_column through a
        // wrapper that only implements `sample`.
        struct Generic<'a>(&'a TransposedProjection);
        impl Sampler for Generic<'_> {
            fn sample(&self, u: f32, v: f32) -> f32 {
                self.0.sample(u, v)
            }
        }
        let (geo, _, stack) = setup(1, 8);
        let q = stack.iter().next().unwrap().transposed();
        let nv = geo.detector.nv;
        // Sweep several u positions including the borders, and v series
        // that run in and out of range in both directions.
        for ui in [-1.5f32, -0.2, 0.0, 3.3, 7.9, nv as f32 - 1.0, 40.0] {
            for (v0, dv) in [(-2.0f32, 0.7f32), (0.1, 1.3), (14.0, -0.9)] {
                let vs: Vec<f32> = (0..12).map(|k| v0 + k as f32 * dv).collect();
                let mut fast = vec![0.0f32; 12];
                let mut reference = vec![0.0f32; 12];
                q.accumulate_column(ui, &vs, 0.37, &mut fast);
                Generic(&q).accumulate_column(ui, &vs, 0.37, &mut reference);
                assert_eq!(fast, reference, "u = {ui}, v0 = {v0}, dv = {dv}");
            }
        }
    }

    #[test]
    fn sweep_agrees_with_per_voxel_accumulate() {
        // The depth sweep reorders the lane reduction (sequential instead
        // of tree8), so agreement is at floating-point tolerance.
        let (geo, mats, stack) = setup(32, 8);
        let rows: Vec<_> = mats.iter().map(|m| m.rows_f32()).collect();
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let vmax = geo.detector.nv as f32 - 1.0;
        let half = geo.volume.nz / 2;
        let cb = ColumnBatch::compute(&rows, 3.0, 5.0);
        let mut buf = SweepBuffers::new(half);
        cb.accumulate_into(&transposed, 0, vmax, &mut buf);
        for k in 0..half {
            let (sum, sum_m) = cb.accumulate(&transposed, k as f32, vmax);
            assert!((sum - buf.up[k]).abs() < 1e-4 * sum.abs().max(1.0), "k {k}");
            assert!(
                (sum_m - buf.down[k]).abs() < 1e-4 * sum_m.abs().max(1.0),
                "mirror k {k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch must be in 1..=32")]
    fn oversized_batch_rejected() {
        let (geo, mats, stack) = setup(4, 8);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        backproject_warp_with(
            &Pool::serial(),
            &mats,
            &transposed,
            stack.dims().nv,
            geo.volume,
            64,
        );
    }
}
