//! # ct-bp — FDK back-projection kernels
//!
//! This crate implements the paper's central algorithmic contribution: the
//! back-projection stage, in both the *standard* formulation (Algorithm 2,
//! as implemented by RTK / RabbitCT / OSCaR) and the *proposed*
//! formulation (Algorithm 4) that exploits the three geometric theorems of
//! Section 3.2.1 to cut the projection-coordinate arithmetic to 1/6 and to
//! access both the projections and the volume contiguously.
//!
//! Layout of the crate:
//!
//! * [`standard`] — Algorithm 2 verbatim (the correctness reference; the
//!   paper verifies against RTK's CPU output at RMSE < 1e-5).
//! * [`proposed`] — Algorithm 4 verbatim (serial, single projection at a
//!   time): half the z-loop via Theorem 1 symmetry, one inner product per
//!   voxel instead of three via Theorems 2-3, k-major volume, transposed
//!   projections.
//! * [`warp`] — the `shflBP` structure of Listing 1: a batch of
//!   `Nbatch = 32` projections processed per voxel column with the
//!   per-column `U`/`1/z` values shared across the whole column (the warp
//!   register exchange of the CUDA kernel becomes two stack arrays), and
//!   in-register accumulation so the volume is touched once per batch.
//! * [`variant`] — the Table 3 kernel matrix (`RTK-32`, `Bp-Tex`,
//!   `Tex-Tran`, `Bp-L1`, `L1-Tran`) mapping the GPU texture/L1 access
//!   paths onto blocked / row-major / transposed CPU layouts.
//! * [`pair`] — symmetric slab-pair back-projection, the unit of output
//!   decomposition in the distributed framework (each row of ranks owns a
//!   slab and its mirror — the `2*R` sub-volumes of the paper's Figure 3).
//! * [`tiled`] — the cache-blocked, thread-parallel driver: the volume is
//!   partitioned into i-blocks crossed with sub slab pairs, tiles are
//!   dispatched over [`ct_par::Pool`] with per-tile private output, and
//!   the assembled result is bit-identical to the untiled kernels at any
//!   thread count.
//! * [`lanes`] — the lane-array generation of the hot column sweep:
//!   per-column bilinear weights resolved once per `(u, projection)`,
//!   depth loop in fixed `[f32; 8]` chunks the autovectorizer lowers to
//!   packed FMA, projection-batch blocking sized to L1/L2. Selected via
//!   [`lanes::KernelImpl`] (`IFDK_KERNEL` env var); bit-identical to
//!   [`warp`] in the default strict mode.
//!
//! All kernels compute detector coordinates in `f32` (as the GPU does) and
//! produce identical results regardless of thread count: threads own
//! disjoint voxel ranges and accumulate projections in a fixed order.
//!
//! ```
//! use ct_bp::{backproject, backproject_standard, BpConfig};
//! use ct_core::{CbctGeometry, Dims2, Dims3};
//! use ct_core::projection::ProjectionStack;
//! use ct_core::volume::VolumeLayout;
//! use ct_par::Pool;
//!
//! let geo = CbctGeometry::standard(Dims2::new(32, 32), 8, Dims3::cube(16));
//! let mats = geo.projection_matrices();
//! let projs = ProjectionStack::zeros(geo.detector, 8);
//! let pool = Pool::serial();
//! // The proposed kernel agrees with the Algorithm 2 reference.
//! let fast = backproject(&pool, BpConfig::default(), &mats, &projs, geo.volume)
//!     .into_layout(VolumeLayout::IMajor);
//! let reference = backproject_standard(&pool, &mats, &projs, geo.volume);
//! assert_eq!(fast.dims(), reference.dims());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod lanes;
pub mod pair;
pub mod proposed;
pub mod standard;
pub mod tiled;
pub mod variant;
pub mod warp;

pub use lanes::{KernelImpl, LaneMode, LaneSampler};
pub use pair::{backproject_pair, SlabPair};
pub use proposed::backproject_proposed;
pub use standard::{backproject_standard, backproject_standard_slab};
pub use tiled::{backproject_tiled, TileConfig, TileReport};
pub use variant::{backproject, BpConfig, KernelVariant};
pub use warp::{backproject_warp, WARP_BATCH};

/// The global FDK scale constant applied once to a fully accumulated
/// volume: `delta_beta * d^2 / 2` for a full-circle scan (Kak & Slaney
/// Eq. 3.87; the 1/2 because every ray family is measured twice over
/// `2*pi`), and `delta_beta * d^2` for a Parker short scan (whose weights
/// already normalise each family to single coverage).
///
/// The per-update weight inside every kernel is the paper's bare
/// `W = 1/z^2`; multiplying the accumulated volume by this constant
/// converts it to absolute attenuation values, so reconstructions can be
/// compared voxel-for-voxel against the analytic phantom.
pub fn fdk_scale(geo: &ct_core::CbctGeometry) -> f32 {
    let redundancy = if geo.is_full_scan() { 0.5 } else { 1.0 };
    (geo.angle_step() * geo.d * geo.d * redundancy) as f32
}
