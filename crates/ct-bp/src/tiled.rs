//! Cache-blocked, slab-tiled parallel back-projection driver.
//!
//! The Table 3 kernels walk the whole volume once per projection batch;
//! at production sizes a single voxel column's working set already spills
//! the last-level cache and the batched reuse of [`crate::warp`] stops
//! paying. This driver partitions the output into **tiles** — an i-range
//! of voxel columns crossed with a z-symmetric *sub* slab pair (reusing
//! [`SlabPair`] for the z split, exactly the paper's Figure 3
//! decomposition recursed one level down) — and dispatches the tiles over
//! [`ct_par::Pool`] with work stealing.
//!
//! Every tile owns a private output volume, so threads never share an
//! output cache line, and each voxel is accumulated by exactly one tile
//! in a fixed projection order: the assembled result is **bit-identical**
//! for every thread count, and bit-identical to the untiled
//! [`crate::warp::backproject_warp_with`] kernel. The per-tile wall-clock
//! intervals are reported back so the caller can attribute them to
//! observability spans (tile-level load balance in traces).

use crate::pair::SlabPair;
use crate::warp::{ColumnBatch, Sampler, SweepBuffers, WARP_BATCH};
use ct_core::error::{CtError, Result};
use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::{ProjectionStack, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_obs::clock::{self, Instant};
use ct_par::Pool;

/// Tile-shape configuration for the blocked driver. A field set to `0`
/// means "choose automatically" from the problem shape and pool width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Number of consecutive `i` voxel columns per tile (`0` = auto).
    pub i_block: usize,
    /// Number of sub slab pairs the z extent is split into (`0` = auto).
    pub slab_pairs: usize,
}

impl TileConfig {
    /// Fully automatic tile shape.
    pub const AUTO: TileConfig = TileConfig {
        i_block: 0,
        slab_pairs: 0,
    };

    /// Resolve the `0 = auto` fields against a concrete problem. The i
    /// axis is the preferred split (sub-pair splits re-run the per-column
    /// lane setup once per part), so `slab_pairs` only grows beyond 1
    /// when a single full-depth column row already busts the ~256 KiB
    /// cache budget, or the i axis alone cannot give the pool two tiles
    /// per thread to steal. The i-block is then sized so one tile's
    /// output (`i_block * ny * 2*sub_len` voxels) stays inside the
    /// budget.
    pub fn resolve(&self, dims: Dims3, pair: SlabPair, threads: usize) -> (usize, usize) {
        const CACHE_BUDGET: usize = 256 * 1024;
        let target_tiles = 2 * threads.max(1);
        let parts = if self.slab_pairs == 0 {
            let row_bytes = dims.ny * 2 * pair.len * 4;
            let for_cache = row_bytes.div_ceil(CACHE_BUDGET);
            let for_steal = target_tiles.div_ceil(dims.nx.max(1));
            for_cache.max(for_steal).clamp(1, pair.len)
        } else {
            self.slab_pairs.min(pair.len).max(1)
        };
        let sub_nz = 2 * pair.len.div_ceil(parts);
        let i_block = if self.i_block == 0 {
            let cache_cap = CACHE_BUDGET
                .checked_div(dims.ny * sub_nz * 4)
                .unwrap_or(usize::MAX)
                .max(1);
            let steal_cap = dims.nx.div_ceil(target_tiles.div_ceil(parts)).max(1);
            cache_cap.min(steal_cap).min(dims.nx)
        } else {
            self.i_block.min(dims.nx).max(1)
        };
        (i_block, parts)
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        Self::AUTO
    }
}

/// One tile of the blocked decomposition: `i_len` voxel columns starting
/// at `i0`, crossed with one sub slab pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Ordinal of the tile in dispatch order.
    pub index: usize,
    /// First `i` of the tile.
    pub i0: usize,
    /// Number of consecutive `i` columns.
    pub i_len: usize,
    /// The z-symmetric sub slab pair this tile accumulates.
    pub pair: SlabPair,
}

/// Wall-clock record of one executed tile, for span attribution.
#[derive(Debug, Clone, Copy)]
pub struct TileReport {
    /// Which tile ran.
    pub tile: Tile,
    /// When a worker picked the tile up.
    pub started: Instant,
    /// When the tile's accumulation finished.
    pub finished: Instant,
}

/// Split a slab pair into `parts` sub pairs covering the same slices.
/// Ragged splits are allowed: the leading sub pairs take one extra slice
/// when `pair.len` does not divide evenly.
pub fn partition_pairs(pair: SlabPair, parts: usize) -> Result<Vec<SlabPair>> {
    if parts == 0 || parts > pair.len {
        return Err(CtError::InvalidConfig(format!(
            "cannot split a {}-slice slab into {parts} sub pairs",
            pair.len
        )));
    }
    let base = pair.len.checked_div(parts).unwrap_or(0);
    let extra = pair.len.checked_rem(parts).unwrap_or(0);
    let mut out = Vec::with_capacity(parts);
    let mut k0 = pair.k0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(SlabPair::new(pair.nz_full, k0, len)?);
        k0 += len;
    }
    Ok(out)
}

/// Enumerate the tiles of a resolved configuration, sub pair major (all
/// i-blocks of sub pair 0 first). The order is the assembly order and is
/// independent of thread count.
pub fn tiles_for(dims: Dims3, pair: SlabPair, i_block: usize, parts: usize) -> Result<Vec<Tile>> {
    let subs = partition_pairs(pair, parts)?;
    let mut tiles = Vec::new();
    for sub in subs {
        let mut i0 = 0;
        while i0 < dims.nx {
            let i_len = i_block.min(dims.nx - i0);
            tiles.push(Tile {
                index: tiles.len(),
                i0,
                i_len,
                pair: sub,
            });
            i0 += i_len;
        }
    }
    Ok(tiles)
}

/// Serial accumulation of one tile into a private `(i_len, ny,
/// 2*sub_len)` k-major volume — the [`crate::warp`] column-batched
/// kernel with the voxel indices offset by the tile origin, so the
/// arithmetic (and therefore the bits) match the untiled kernels.
fn accumulate_tile<S: Sampler>(
    tile: &Tile,
    rows: &[[[f32; 4]; 3]],
    samplers: &[S],
    nv: usize,
    ny: usize,
    batch: usize,
) -> Volume {
    let sub = tile.pair;
    let local_nz = sub.local_nz();
    let vmax = nv as f32 - 1.0;
    let mut vol = Volume::zeros(Dims3::new(tile.i_len, ny, local_nz), VolumeLayout::KMajor);
    let data = vol.data_mut();
    let mut buf = SweepBuffers::new(sub.len);
    for (i, plane) in data.chunks_exact_mut(ny * local_nz).enumerate() {
        let ifl = (tile.i0 + i) as f32;
        for (rows_b, samplers_b) in rows.chunks(batch).zip(samplers.chunks(batch)) {
            // analyze: allow(bounds, reason = "local_nz = 2 * pair.len and SlabPair::new rejects len == 0")
            for (j, col) in plane.chunks_exact_mut(local_nz).enumerate() {
                let jf = j as f32;
                let cb = ColumnBatch::compute(rows_b, ifl, jf);
                // Same depth-sweep structure (and therefore the same bits)
                // as the untiled drivers, offset by the sub pair's origin.
                buf.reset();
                cb.accumulate_into(samplers_b, sub.k0, vmax, &mut buf);
                let (up_half, down_half) = col.split_at_mut(sub.len);
                for (dst, src) in up_half.iter_mut().zip(&buf.up) {
                    *dst += *src;
                }
                for (dst, src) in down_half.iter_mut().rev().zip(&buf.down) {
                    *dst += *src;
                }
            }
        }
    }
    vol
}

/// Tiled, thread-parallel version of
/// [`crate::pair::backproject_pair_with`]: back-project one slab pair by
/// dispatching its tiles over the pool, then assemble the tile volumes
/// into the pair volume in tile order. Also returns one [`TileReport`]
/// per tile (in tile order) for span attribution.
///
/// The result is bit-identical to `backproject_pair_with` for every
/// thread count and tile shape.
#[allow(clippy::too_many_arguments)] // mirrors backproject_pair_with + cfg
pub fn backproject_pair_tiled_reporting<S: Sampler>(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
    pair: SlabPair,
    batch: usize,
    cfg: TileConfig,
) -> (Volume, Vec<TileReport>) {
    // analyze: allow(panic, reason = "caller-contract validation at the public driver entry; fires before any work starts")
    assert_eq!(mats.len(), samplers.len(), "one matrix per projection");
    // analyze: allow(panic, reason = "caller-contract validation at the public driver entry; fires before any work starts")
    assert_eq!(dims.nz, pair.nz_full, "pair must match volume Nz");
    // analyze: allow(panic, reason = "caller-contract validation at the public driver entry; fires before any work starts")
    assert!((1..=WARP_BATCH).contains(&batch), "batch must be in 1..=32");
    let ny = dims.ny;
    let (i_block, parts) = cfg.resolve(dims, pair, pool.threads());
    let tiles = tiles_for(dims, pair, i_block, parts)
        // analyze: allow(panic, reason = "resolve() clamps i_block and parts into the range tiles_for accepts")
        .expect("resolved tile shape is valid");
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();

    // Each tile owns a private output volume: disjoint writes, no false
    // sharing, and a fixed accumulation order per voxel regardless of
    // which worker runs the tile.
    let pieces: Vec<Option<(Volume, TileReport)>> = pool.parallel_map(tiles.len(), 1, |t| {
        let tile = *tiles.get(t)?;
        let started = clock::now();
        let vol = accumulate_tile(&tile, &rows, samplers, nv, ny, batch);
        Some((
            vol,
            TileReport {
                tile,
                started,
                finished: clock::now(),
            },
        ))
    });

    // Assemble sequentially in tile order; every destination voxel is
    // written exactly once.
    let local_nz = pair.local_nz();
    let mut out = Volume::zeros(Dims3::new(dims.nx, ny, local_nz), VolumeLayout::KMajor);
    let data = out.data_mut();
    let mut reports = Vec::with_capacity(tiles.len());
    for (vol, report) in pieces.into_iter().flatten() {
        let tile = report.tile;
        let sub_nz = tile.pair.local_nz();
        let r = tile.pair.k0 - pair.k0;
        // Destination offsets of the sub pair's two slabs inside the
        // pair-local column (both runs are contiguous and ascending).
        let up = r;
        let down = 2 * pair.len - r - tile.pair.len;
        let src = vol.data();
        // analyze: allow(bounds, reason = "sub_nz = 2 * tile.pair.len and SlabPair::new rejects len == 0")
        let mut cols = src.chunks_exact(sub_nz);
        for i in 0..tile.i_len {
            for j in 0..ny {
                let Some(col) = cols.next() else { break };
                let (col_up, col_down) = col.split_at(tile.pair.len);
                let dst0 = ((tile.i0 + i) * ny + j) * local_nz;
                if let Some(dst) = data.get_mut(dst0 + up..dst0 + up + tile.pair.len) {
                    dst.copy_from_slice(col_up);
                }
                if let Some(dst) = data.get_mut(dst0 + down..dst0 + down + tile.pair.len) {
                    dst.copy_from_slice(col_down);
                }
            }
        }
        reports.push(report);
    }
    (out, reports)
}

/// [`backproject_pair_tiled_reporting`] without the report plumbing.
#[allow(clippy::too_many_arguments)] // mirrors backproject_pair_with + cfg
pub fn backproject_pair_tiled_with<S: Sampler>(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
    pair: SlabPair,
    batch: usize,
    cfg: TileConfig,
) -> Volume {
    backproject_pair_tiled_reporting(pool, mats, samplers, nv, dims, pair, batch, cfg).0
}

/// Full-volume tiled back-projection with any sampler set: the single
/// slab pair covering the whole volume, split into tiles.
///
/// Output is k-major; `dims.nz` must be even. Bit-identical to
/// [`crate::warp::backproject_warp_with`] at every thread count.
pub fn backproject_tiled_with<S: Sampler>(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
    batch: usize,
    cfg: TileConfig,
) -> Volume {
    // analyze: allow(panic, reason = "caller-contract validation at the public driver entry; fires before any work starts")
    assert!(dims.nz.is_multiple_of(2), "tiled kernel needs even Nz");
    let Ok(pair) = SlabPair::new(dims.nz, 0, dims.nz / 2) else {
        // Only reachable for a degenerate zero-depth volume.
        return Volume::zeros(dims, VolumeLayout::KMajor);
    };
    backproject_pair_tiled_with(pool, mats, samplers, nv, dims, pair, batch, cfg)
}

/// The paper's best configuration (`L1-Tran`) through the tiled driver:
/// transposed projections, k-major volume, 32-projection batches.
pub fn backproject_tiled(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
    cfg: TileConfig,
) -> Volume {
    let transposed: Vec<TransposedProjection> = projs.iter().map(|p| p.transposed()).collect();
    backproject_tiled_with(
        pool,
        mats,
        &transposed,
        projs.dims().nv,
        dims,
        WARP_BATCH,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::backproject_pair_with;
    use crate::warp::backproject_warp;
    use ct_core::geometry::CbctGeometry;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 7 + v * 3 + s * 11) % 31) as f32) * 0.25 - 2.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn partition_is_exact_and_ragged() {
        let pair = SlabPair::new(32, 2, 11).unwrap();
        let subs = partition_pairs(pair, 3).unwrap();
        assert_eq!(subs.len(), 3);
        assert_eq!(subs.iter().map(|s| s.len).sum::<usize>(), 11);
        assert_eq!(subs[0].k0, 2);
        for w in subs.windows(2) {
            assert_eq!(w[0].k0 + w[0].len, w[1].k0);
        }
        assert!(partition_pairs(pair, 0).is_err());
        assert!(partition_pairs(pair, 12).is_err());
    }

    #[test]
    fn tiles_cover_the_volume_once() {
        let dims = Dims3::new(13, 8, 32);
        let pair = SlabPair::new(32, 0, 16).unwrap();
        let tiles = tiles_for(dims, pair, 4, 3).unwrap();
        let mut hits = vec![0u32; dims.nx * dims.nz];
        for t in &tiles {
            for i in t.i0..t.i0 + t.i_len {
                for local in 0..t.pair.local_nz() {
                    hits[i * dims.nz + t.pair.global_k(local)] += 1;
                }
            }
        }
        assert!(hits.iter().all(|&h| h == 1), "every (i, k) covered once");
        for (idx, t) in tiles.iter().enumerate() {
            assert_eq!(t.index, idx);
        }
    }

    #[test]
    fn auto_config_resolves_to_valid_shape() {
        let dims = Dims3::new(64, 64, 64);
        let pair = SlabPair::new(64, 0, 32).unwrap();
        for threads in [1, 2, 4, 16] {
            let (ib, parts) = TileConfig::AUTO.resolve(dims, pair, threads);
            assert!((1..=dims.nx).contains(&ib));
            assert!((1..=pair.len).contains(&parts));
            assert!(tiles_for(dims, pair, ib, parts).is_ok());
        }
        // Explicit fields are clamped, not trusted.
        let (ib, parts) = TileConfig {
            i_block: 10_000,
            slab_pairs: 10_000,
        }
        .resolve(dims, pair, 4);
        assert_eq!(ib, dims.nx);
        assert_eq!(parts, pair.len);
    }

    #[test]
    fn tiled_is_bit_identical_to_warp_kernel() {
        let (geo, mats, stack) = setup(40, 16);
        let reference = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        for cfg in [
            TileConfig::AUTO,
            TileConfig {
                i_block: 3,
                slab_pairs: 2,
            },
            TileConfig {
                i_block: 16,
                slab_pairs: 8,
            },
        ] {
            let tiled = backproject_tiled(&Pool::serial(), &mats, &stack, geo.volume, cfg);
            assert_eq!(tiled.data(), reference.data(), "{cfg:?}");
        }
    }

    #[test]
    fn tiled_is_bit_identical_across_thread_counts() {
        let (geo, mats, stack) = setup(17, 16);
        let cfg = TileConfig {
            i_block: 5,
            slab_pairs: 3,
        };
        let serial = backproject_tiled(&Pool::serial(), &mats, &stack, geo.volume, cfg);
        for threads in [2, 4] {
            let par = backproject_tiled(&Pool::new(threads), &mats, &stack, geo.volume, cfg);
            assert_eq!(par.data(), serial.data(), "{threads} threads");
        }
    }

    #[test]
    fn tiled_pair_matches_untiled_pair() {
        let (geo, mats, stack) = setup(9, 16);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let nv = stack.dims().nv;
        let pair = SlabPair::new(16, 2, 5).unwrap();
        let untiled = backproject_pair_with(
            &Pool::serial(),
            &mats,
            &transposed,
            nv,
            geo.volume,
            pair,
            WARP_BATCH,
        );
        let tiled = backproject_pair_tiled_with(
            &Pool::new(2),
            &mats,
            &transposed,
            nv,
            geo.volume,
            pair,
            WARP_BATCH,
            TileConfig {
                i_block: 7,
                slab_pairs: 2,
            },
        );
        assert_eq!(tiled.data(), untiled.data());
    }

    #[test]
    fn reports_cover_every_tile_in_order() {
        let (geo, mats, stack) = setup(5, 8);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let pair = SlabPair::new(8, 0, 4).unwrap();
        let cfg = TileConfig {
            i_block: 2,
            slab_pairs: 2,
        };
        let (_, reports) = backproject_pair_tiled_reporting(
            &Pool::new(3),
            &mats,
            &transposed,
            stack.dims().nv,
            geo.volume,
            pair,
            WARP_BATCH,
            cfg,
        );
        let tiles = tiles_for(geo.volume, pair, 2, 2).unwrap();
        assert_eq!(reports.len(), tiles.len());
        for (r, t) in reports.iter().zip(&tiles) {
            assert_eq!(r.tile, *t);
            assert!(r.finished >= r.started);
        }
    }
}
