//! The paper's Table 3 kernel matrix — five back-projection kernel
//! configurations differing in projection access path and data layouts.
//!
//! | Kernel   | Texture path | L1 path | Transposed proj | Transposed vol |
//! |----------|--------------|---------|-----------------|----------------|
//! | RTK-32   | yes (point)  | no      | no              | no             |
//! | Bp-Tex   | yes          | no      | no              | yes            |
//! | Tex-Tran | yes          | no      | yes             | yes            |
//! | Bp-L1    | no           | no      | no*             | yes            |
//! | L1-Tran  | no           | yes     | yes             | yes            |
//!
//! GPU-to-CPU mapping (see DESIGN.md): the "texture" path becomes the 8x8
//! blocked layout of [`ct_core::projection::BlockedProjection`] (2D-local
//! fetches stay within a tile in both directions); the "L1" path becomes
//! plain row-major/transposed array access. (*) The paper's `Bp-L1` is slow
//! because its global loads bypass the L1; the CPU analogue of that lost
//! locality is sampling the *untransposed* row-major buffer, whose inner
//! v-loop strides by `Nu` floats — so that is what `Bp-L1` does here.

use crate::lanes::{backproject_batch, KernelImpl};
use crate::tiled::{backproject_tiled_with, TileConfig};
use crate::warp::{backproject_warp_with, Sampler, WARP_BATCH};
use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::{BlockedProjection, ProjectionStack};
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// The five kernel configurations of the paper's Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// RTK 1.4.0 baseline at 32-bit precision (standard Algorithm 2 with a
    /// 32-projection batch, point-fetch texture + manual bilinear).
    Rtk32,
    /// Proposed kernel, texture path, untransposed projections.
    BpTex,
    /// Proposed kernel, texture path, transposed projections.
    TexTran,
    /// Proposed kernel, direct access, untransposed projections.
    BpL1,
    /// Proposed kernel, direct access, transposed projections — the
    /// paper's winner.
    L1Tran,
}

impl KernelVariant {
    /// All variants in the paper's Table 4 column order.
    pub const ALL: [KernelVariant; 5] = [
        KernelVariant::Rtk32,
        KernelVariant::BpTex,
        KernelVariant::TexTran,
        KernelVariant::BpL1,
        KernelVariant::L1Tran,
    ];

    /// The paper's name for the variant.
    pub fn name(&self) -> &'static str {
        match self {
            KernelVariant::Rtk32 => "RTK-32",
            KernelVariant::BpTex => "Bp-Tex",
            KernelVariant::TexTran => "Tex-Tran",
            KernelVariant::BpL1 => "Bp-L1",
            KernelVariant::L1Tran => "L1-Tran",
        }
    }

    /// Table 3 characteristics:
    /// `(texture cache, l1 cache, transpose projection, transpose volume)`.
    pub fn characteristics(&self) -> (bool, bool, bool, bool) {
        match self {
            KernelVariant::Rtk32 => (true, false, false, false),
            KernelVariant::BpTex => (true, false, false, true),
            KernelVariant::TexTran => (true, false, true, true),
            KernelVariant::BpL1 => (false, false, true, true),
            KernelVariant::L1Tran => (false, true, true, true),
        }
    }

    /// Output volume layout this variant produces.
    pub fn output_layout(&self) -> VolumeLayout {
        match self {
            KernelVariant::Rtk32 => VolumeLayout::IMajor,
            _ => VolumeLayout::KMajor,
        }
    }
}

/// Back-projection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpConfig {
    /// Which Table 3 kernel to run.
    pub variant: KernelVariant,
    /// Projection batch per pass (Listing 1 uses 32).
    pub batch: usize,
    /// Tile shape for the blocked parallel driver; `None` runs the
    /// untiled per-plane path. Ignored by `RTK-32`, whose i-major layout
    /// the tiled driver does not produce. Either way the output bits are
    /// identical — tiling changes scheduling, not arithmetic.
    pub tile: Option<TileConfig>,
    /// Which column-sweep implementation runs the hot loop (scalar
    /// oracle vs lane-array; see [`crate::lanes`]). Only `L1-Tran`
    /// dispatches on this — the other Table 3 variants are layout
    /// ablations and always run the scalar kernel. Strict lanes is
    /// bit-identical to scalar, so the default is safe everywhere.
    pub kernel: KernelImpl,
}

impl Default for BpConfig {
    fn default() -> Self {
        Self {
            variant: KernelVariant::L1Tran,
            batch: WARP_BATCH,
            tile: Some(TileConfig::AUTO),
            kernel: KernelImpl::from_env(),
        }
    }
}

/// Blocked ("texture") sampler built from the *transposed* projection:
/// coordinates arrive as `(u, v)` and are swapped before the fetch, as the
/// Tex-Tran kernel does.
struct BlockedTransposed(BlockedProjection);

impl Sampler for BlockedTransposed {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        self.0.sample(v, u)
    }
}

/// Run the batched kernel through the tiled driver when the config asks
/// for tiling, or the untiled per-plane path otherwise.
fn run_batched<S: Sampler>(
    pool: &Pool,
    cfg: BpConfig,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
) -> Volume {
    match cfg.tile {
        Some(t) => backproject_tiled_with(pool, mats, samplers, nv, dims, cfg.batch, t),
        None => backproject_warp_with(pool, mats, samplers, nv, dims, cfg.batch),
    }
}

/// Dispatch a full-volume back-projection for any Table 3 variant.
///
/// The output layout follows [`KernelVariant::output_layout`].
pub fn backproject(
    pool: &Pool,
    cfg: BpConfig,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    let nv = projs.dims().nv;
    match cfg.variant {
        KernelVariant::Rtk32 => backproject_rtk32(pool, mats, projs, dims),
        KernelVariant::BpTex => {
            let samplers: Vec<BlockedProjection> = projs.iter().map(|p| p.blocked()).collect();
            run_batched(pool, cfg, mats, &samplers, nv, dims)
        }
        KernelVariant::TexTran => {
            let samplers: Vec<BlockedTransposed> = projs
                .iter()
                .map(|p| BlockedTransposed(p.transposed().as_swapped_image().blocked()))
                .collect();
            run_batched(pool, cfg, mats, &samplers, nv, dims)
        }
        KernelVariant::BpL1 => {
            let samplers: Vec<ct_core::projection::ProjectionImage> =
                projs.iter().cloned().collect();
            run_batched(pool, cfg, mats, &samplers, nv, dims)
        }
        KernelVariant::L1Tran => {
            let transposed: Vec<ct_core::projection::TransposedProjection> =
                projs.iter().map(|p| p.transposed()).collect();
            let refs: Vec<&ct_core::projection::TransposedProjection> = transposed.iter().collect();
            backproject_batch(pool, cfg.kernel, mats, &refs, nv, dims, cfg.batch, cfg.tile)
        }
    }
}

/// The RTK-32 baseline: Algorithm 2 with a projection batch and blocked
/// ("2D-layered texture") point fetch + manual 32-bit bilinear
/// interpolation — the kernel the paper extends from 16 to 32 projections
/// per pass (Section 5.2).
fn backproject_rtk32(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    assert_eq!(mats.len(), projs.len(), "one matrix per projection");
    let (nx, ny) = (dims.nx, dims.ny);
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();
    let blocked: Vec<BlockedProjection> = projs.iter().map(|p| p.blocked()).collect();
    let np = mats.len();

    let mut vol = Volume::zeros(dims, VolumeLayout::IMajor);
    let slice_len = nx * ny;
    pool.parallel_chunks_mut(vol.data_mut(), slice_len, |start, slice| {
        let k = start / slice_len;
        let kf = k as f32;
        for s0 in (0..np).step_by(WARP_BATCH) {
            let s1 = (s0 + WARP_BATCH).min(np);
            for j in 0..ny {
                let jf = j as f32;
                for i in 0..nx {
                    let ifl = i as f32;
                    // In-register accumulation across the batch, as RTK's
                    // kernel_fdk_3Dgrid does.
                    let mut acc = 0.0f32;
                    for (mat, q) in rows[s0..s1].iter().zip(blocked[s0..s1].iter()) {
                        let x = mat[0][0] * ifl + mat[0][1] * jf + mat[0][2] * kf + mat[0][3];
                        let y = mat[1][0] * ifl + mat[1][1] * jf + mat[1][2] * kf + mat[1][3];
                        let z = mat[2][0] * ifl + mat[2][1] * jf + mat[2][2] * kf + mat[2][3];
                        let f = 1.0 / z;
                        let wdis = f * f;
                        let u = x * f;
                        let v = y * f;
                        // Manual bilinear interpolation from four point
                        // fetches (cudaFilterModePoint at 32-bit).
                        let fu = u.floor();
                        let fv = v.floor();
                        let du = u - fu;
                        let dv = v - fv;
                        let (pu, pv) = (fu as isize, fv as isize);
                        let t1 = q.fetch(pu, pv) * (1.0 - du) + q.fetch(pu + 1, pv) * du;
                        let t2 = q.fetch(pu, pv + 1) * (1.0 - du) + q.fetch(pu + 1, pv + 1) * du;
                        acc += wdis * (t1 * (1.0 - dv) + t2 * dv);
                    }
                    slice[j * nx + i] += acc;
                }
            }
        }
    });
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::backproject_standard;
    use ct_core::geometry::CbctGeometry;
    use ct_core::metrics::nrmse;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 3 + v * 13 + s * 5) % 19) as f32) - 9.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn all_variants_agree_with_standard() {
        let (geo, mats, stack) = setup(36, 8);
        let reference = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        for variant in KernelVariant::ALL {
            let cfg = BpConfig {
                variant,
                ..Default::default()
            };
            let v = backproject(&Pool::serial(), cfg, &mats, &stack, geo.volume)
                .into_layout(VolumeLayout::IMajor);
            let ne = nrmse(reference.data(), v.data()).unwrap();
            assert!(ne < 1e-5, "{}: nrmse {ne}", variant.name());
        }
    }

    #[test]
    fn variant_metadata_matches_paper_table3() {
        assert_eq!(
            KernelVariant::Rtk32.characteristics(),
            (true, false, false, false)
        );
        assert_eq!(
            KernelVariant::BpTex.characteristics(),
            (true, false, false, true)
        );
        assert_eq!(
            KernelVariant::TexTran.characteristics(),
            (true, false, true, true)
        );
        assert_eq!(
            KernelVariant::L1Tran.characteristics(),
            (false, true, true, true)
        );
        assert_eq!(KernelVariant::Rtk32.output_layout(), VolumeLayout::IMajor);
        assert_eq!(KernelVariant::L1Tran.output_layout(), VolumeLayout::KMajor);
        let names: Vec<_> = KernelVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names, ["RTK-32", "Bp-Tex", "Tex-Tran", "Bp-L1", "L1-Tran"]);
    }

    #[test]
    fn rtk32_parallel_is_deterministic() {
        let (geo, mats, stack) = setup(8, 8);
        let cfg = BpConfig {
            variant: KernelVariant::Rtk32,
            ..Default::default()
        };
        let a = backproject(&Pool::serial(), cfg, &mats, &stack, geo.volume);
        let b = backproject(&Pool::new(4), cfg, &mats, &stack, geo.volume);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn default_config_is_paper_best() {
        let cfg = BpConfig::default();
        assert_eq!(cfg.variant, KernelVariant::L1Tran);
        assert_eq!(cfg.batch, 32);
        assert_eq!(cfg.tile, Some(TileConfig::AUTO));
        // Default kernel comes from IFDK_KERNEL; with the variable unset
        // (the test environment) that is the strict lane kernel.
        assert_eq!(cfg.kernel, KernelImpl::from_env());
    }

    #[test]
    fn kernel_impls_are_bit_identical_through_dispatch() {
        use crate::lanes::LaneMode;
        let (geo, mats, stack) = setup(12, 8);
        let scalar = backproject(
            &Pool::serial(),
            BpConfig {
                kernel: KernelImpl::Scalar,
                ..Default::default()
            },
            &mats,
            &stack,
            geo.volume,
        );
        let lanes = backproject(
            &Pool::new(2),
            BpConfig {
                kernel: KernelImpl::Lanes(LaneMode::Strict),
                ..Default::default()
            },
            &mats,
            &stack,
            geo.volume,
        );
        assert_eq!(scalar.data(), lanes.data());
    }

    #[test]
    fn tiled_dispatch_is_bit_identical_to_untiled() {
        let (geo, mats, stack) = setup(12, 8);
        for variant in [
            KernelVariant::BpTex,
            KernelVariant::TexTran,
            KernelVariant::BpL1,
            KernelVariant::L1Tran,
        ] {
            let untiled = BpConfig {
                variant,
                tile: None,
                ..Default::default()
            };
            let tiled = BpConfig {
                variant,
                tile: Some(TileConfig::AUTO),
                ..Default::default()
            };
            let a = backproject(&Pool::serial(), untiled, &mats, &stack, geo.volume);
            let b = backproject(&Pool::new(3), tiled, &mats, &stack, geo.volume);
            assert_eq!(a.data(), b.data(), "{}", variant.name());
        }
    }
}
