//! The proposed back-projection — paper Algorithm 4, verbatim.
//!
//! Per projection `s` and voxel column `(i, j)`:
//!
//! * compute only `x` and `z` (2 inner products instead of 3), reuse
//!   `u = x/z` and `W = 1/z^2` for the entire column (Theorems 2-3);
//! * walk only the lower half of the column (`k < Nz/2`), obtaining the
//!   mirrored voxel's detector row as `v~ = Nv - 1 - v` (Theorem 1);
//! * inside the half-column, one inner product yields `y` (line 12);
//! * the volume is k-major (`I~(k, j, i)`) and the projection transposed
//!   (`Q~ = Q^T`), so both inner-loop accesses are contiguous.
//!
//! Total coordinate arithmetic per voxel: 1/2 (symmetry) x 1/3 (inner
//! products) = **1/6** of Algorithm 2 — the paper's headline kernel claim.

use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::ProjectionStack;
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// Back-project a full volume with Algorithm 4. Output is k-major; call
/// [`ct_core::volume::Volume::into_layout`] for the i-major `reshape` of
/// line 22 when needed.
///
/// `dims.nz` must be even (the symmetric pairing of Theorem 1).
pub fn backproject_proposed(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    assert_eq!(mats.len(), projs.len(), "one matrix per projection");
    assert!(dims.nz.is_multiple_of(2), "proposed kernel needs even Nz");
    let (ny, nz) = (dims.ny, dims.nz);
    let (nu, nv) = (projs.dims().nu, projs.dims().nv);
    let half = nz / 2;

    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();
    // Algorithm 4 line 3: transpose the projections once, up front.
    let transposed: Vec<_> = projs.iter().map(|img| img.transposed()).collect();

    let mut vol = Volume::zeros(dims, VolumeLayout::KMajor);
    // In the k-major layout the chunk owned by one `i` value is contiguous
    // (ny * nz floats); parallelise over `i`.
    let chunk = ny * nz;
    pool.parallel_chunks_mut(vol.data_mut(), chunk, |start, slice| {
        let i = start / chunk;
        let ifl = i as f32;
        for (s, mat) in rows.iter().enumerate() {
            let q = &transposed[s];
            let qdata = q.data();
            for j in 0..ny {
                let jf = j as f32;
                // Lines 6-10: two inner products for the whole column.
                let x = mat[0][0] * ifl + mat[0][1] * jf + mat[0][3];
                let z = mat[2][0] * ifl + mat[2][1] * jf + mat[2][3];
                let f = 1.0 / z;
                let u = x * f;
                let wdis = f * f;
                let col = &mut slice[j * nz..(j + 1) * nz];
                for k in 0..half {
                    // Line 12: the single remaining inner product.
                    let y = mat[1][0] * ifl + mat[1][1] * jf + mat[1][2] * k as f32 + mat[1][3];
                    let v = y * f;
                    // Line 14: note interp2(Q~, v, u) — v is the fast axis.
                    col[k] += wdis * ct_core::interp::interp2(qdata, nv, nu, v, u);
                    // Lines 15-17: the mirrored voxel via Theorem 1.
                    let v_m = (nv as f32 - 1.0) - v;
                    col[nz - 1 - k] += wdis * ct_core::interp::interp2(qdata, nv, nu, v_m, u);
                }
            }
        }
    });
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::backproject_standard;
    use ct_core::geometry::CbctGeometry;
    use ct_core::metrics::{nrmse, rmse};
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 13 + v * 7 + s * 3) % 17) as f32) * 0.25 - 1.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn matches_standard_at_paper_tolerance() {
        // The paper's verification bar: RMSE below 1e-5 against the
        // reference CPU implementation (Section 5.1).
        let (geo, mats, stack) = setup(16, 16);
        let reference = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        let proposed = backproject_proposed(&Pool::serial(), &mats, &stack, geo.volume)
            .into_layout(VolumeLayout::IMajor);
        let e = rmse(reference.data(), proposed.data()).unwrap();
        let ne = nrmse(reference.data(), proposed.data()).unwrap();
        assert!(ne < 1e-5, "normalised RMSE {ne} (raw {e})");
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (geo, mats, stack) = setup(8, 16);
        let a = backproject_proposed(&Pool::serial(), &mats, &stack, geo.volume);
        let b = backproject_proposed(&Pool::new(4), &mats, &stack, geo.volume);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn output_is_k_major() {
        let (geo, mats, stack) = setup(4, 8);
        let v = backproject_proposed(&Pool::serial(), &mats, &stack, geo.volume);
        assert_eq!(v.layout(), VolumeLayout::KMajor);
        assert_eq!(v.dims(), geo.volume);
    }

    #[test]
    #[should_panic(expected = "even Nz")]
    fn odd_nz_rejected() {
        let geo = CbctGeometry::standard(Dims2::new(16, 16), 4, Dims3::new(8, 8, 7));
        let mats = geo.projection_matrices();
        let stack = ProjectionStack::zeros(geo.detector, 4);
        backproject_proposed(&Pool::serial(), &mats, &stack, geo.volume);
    }

    #[test]
    fn symmetric_projections_give_symmetric_volume() {
        // If every projection is symmetric about the detector's horizontal
        // centre line, the reconstruction must be symmetric about the
        // volume's XY mid-plane (Theorem 1 made visible).
        let (geo, mats, _) = setup(8, 8);
        let mut stack = ProjectionStack::new(geo.detector);
        let nv = geo.detector.nv;
        for s in 0..8 {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..nv {
                for u in 0..geo.detector.nu {
                    // Symmetric in v about (nv-1)/2.
                    let vv = v.min(nv - 1 - v) as f32;
                    img.set(u, v, vv + (u + s) as f32 * 0.1);
                }
            }
            stack.push(img).unwrap();
        }
        let vol = backproject_proposed(&Pool::serial(), &mats, &stack, geo.volume);
        let n = geo.volume.nz;
        for i in 0..geo.volume.nx {
            for j in 0..geo.volume.ny {
                for k in 0..n / 2 {
                    let a = vol.get(i, j, k);
                    let b = vol.get(i, j, n - 1 - k);
                    assert!(
                        (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                        "({i},{j},{k}): {a} vs {b}"
                    );
                }
            }
        }
    }
}
