//! Lane-array back-projection: the hot `accumulate_column` sweep
//! restructured around fixed-width `[f32; 8]` chunks.
//!
//! The warp kernel's transposed fast path (see
//! `<TransposedProjection as Sampler>::accumulate_column`) already
//! hoists the `u` interpolation out of the depth loop, but its
//! per-voxel body still runs `floor` (a libm call below SSE4.1), an
//! `isize` conversion, and an `Option`/slice-pattern bounds dance per
//! element — none of which the autovectorizer can lift into SIMD. This
//! module is the CPU performance-portability scheme of
//! "Performance Portable Back-projection Algorithms on CPUs"
//! (arXiv:2104.13248, same first author as iFDK): per-column
//! interpolation weights are resolved once per `(u, projection)` pair
//! ([`ct_core::interp::AxisWeight`]), and the depth sweep is processed
//! in [`LANE_WIDTH`]-wide chunks whose index, weight and blend loops
//! all have constant trip counts over fixed arrays — the shape rustc
//! reliably lowers to packed SSE/AVX, with FMA where the target allows.
//!
//! **Bit-identity discipline.** In [`LaneMode::Strict`] (the default)
//! every per-element value is produced by *exactly* the reference
//! expressions: in-range lanes replace `v.floor()` with an integer
//! truncation that provably equals it for `v >= 0` (plus a `+ 0.0`
//! canonicalisation so `v = -0.0` yields the same `+0.0` fraction the
//! reference computes), and the blend is the same
//! `a*(1-d) + b*d` association. Scalar IEEE arithmetic in identical
//! order gives identical bits, so the strict lane kernel is
//! bit-identical to the warp kernel for any chunking, blocking, or
//! thread count — the equivalence suite asserts exactly that.
//! [`LaneMode::Fma`] instead contracts the blends with `f32::mul_add`,
//! which changes the bits (documented NRMSE bound [`FMA_NRMSE_BOUND`])
//! and is only faster on targets with hardware FMA
//! (`-C target-cpu=native` on anything post-Haswell); without it each
//! `mul_add` is a libm call, so Fma is opt-in.

use crate::tiled::{
    backproject_pair_tiled_reporting, backproject_tiled_with, TileConfig, TileReport,
};
use crate::warp::{
    backproject_warp_with, ColumnBatch, Sampler, SweepBuffers, LANE_WIDTH, WARP_BATCH,
};
use ct_core::geometry::ProjectionMatrix;
use ct_core::interp::AxisWeight;
use ct_core::problem::Dims3;
use ct_core::projection::TransposedProjection;
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

use crate::pair::{backproject_pair_with, SlabPair};

/// Documented agreement bound between [`LaneMode::Fma`] and the strict
/// kernels: normalised RMSE of a full volume stays below this. Fusing
/// `a*b + c` removes one rounding per blend; across the ~`4*Np`
/// roundings a voxel accumulates, the drift stays orders of magnitude
/// under this bound in practice — the bound is deliberately loose so it
/// gates correctness, not luck.
pub const FMA_NRMSE_BOUND: f64 = 1e-6;

/// Arithmetic mode of the lane kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneMode {
    /// Reference expressions, reference association: bit-identical to
    /// the scalar warp kernel.
    #[default]
    Strict,
    /// Blends contracted with `f32::mul_add`. Different bits (see
    /// [`FMA_NRMSE_BOUND`]); only profitable with hardware FMA.
    Fma,
}

/// Which back-projection implementation the drivers dispatch to — the
/// kernel-generation selector layered on top of the Table 3
/// [`crate::KernelVariant`] axis (which picks *data layout*, not
/// implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelImpl {
    /// The original per-element kernels (`ct_bp::warp`), kept as the
    /// oracle the lane kernel is verified against.
    Scalar,
    /// The lane-array kernel of this module.
    Lanes(LaneMode),
}

impl Default for KernelImpl {
    /// `Lanes(Strict)`: bit-identical to [`KernelImpl::Scalar`] and
    /// faster, so it is safe to prefer unconditionally.
    fn default() -> Self {
        KernelImpl::Lanes(LaneMode::Strict)
    }
}

impl KernelImpl {
    /// Resolve from the `IFDK_KERNEL` environment variable: `scalar`,
    /// `lanes` (strict) or `lanes-fma`. Unset or unrecognised values
    /// fall back to the default ([`KernelImpl::Lanes`] strict — safe
    /// because it is bit-identical to scalar).
    pub fn from_env() -> Self {
        match std::env::var("IFDK_KERNEL").as_deref() {
            Ok("scalar") => KernelImpl::Scalar,
            Ok("lanes") => KernelImpl::Lanes(LaneMode::Strict),
            Ok("lanes-fma") => KernelImpl::Lanes(LaneMode::Fma),
            _ => KernelImpl::default(),
        }
    }

    /// Stable name for reports and bench cell keys.
    pub fn name(&self) -> &'static str {
        match self {
            KernelImpl::Scalar => "scalar",
            KernelImpl::Lanes(LaneMode::Strict) => "lanes",
            KernelImpl::Lanes(LaneMode::Fma) => "lanes-fma",
        }
    }
}

/// Per-column state of the `u` axis, resolved once per
/// `(u, projection)` pair instead of once per voxel: the
/// [`AxisWeight`] plus the two transposed detector rows it selects.
///
/// `None` when either `u` sample falls outside the detector — those
/// columns take the reference zero-border path.
struct UColumn<'a> {
    row0: &'a [f32],
    row1: &'a [f32],
    du: f32,
}

impl<'a> UColumn<'a> {
    /// Resolve the column weights against a transposed projection.
    #[inline]
    fn resolve(proj: &'a TransposedProjection, u: f32) -> Option<(Self, AxisWeight)> {
        let dims = proj.dims();
        let (nu, nv) = (dims.nu, dims.nv);
        let uw = AxisWeight::resolve(u);
        if !uw.interior(nu) {
            return None;
        }
        let iu = usize::try_from(uw.i).ok()?;
        let rows = proj.data().get(iu * nv..(iu + 2) * nv)?;
        let (row0, row1) = rows.split_at(nv);
        Some((
            Self {
                row0,
                row1,
                du: uw.frac,
            },
            uw,
        ))
    }
}

/// A [`Sampler`] running the lane-array sweep over a transposed
/// projection. Borrowing wrapper, so the existing generic drivers
/// (warp, pair, tiled) take the lane path with no signature changes.
#[derive(Debug, Clone, Copy)]
pub struct LaneSampler<'a> {
    proj: &'a TransposedProjection,
    mode: LaneMode,
}

impl<'a> LaneSampler<'a> {
    /// Wrap one projection.
    #[inline]
    pub fn new(proj: &'a TransposedProjection, mode: LaneMode) -> Self {
        Self { proj, mode }
    }

    /// Wrap a whole batch of projections.
    pub fn wrap(projs: &'a [&TransposedProjection], mode: LaneMode) -> Vec<LaneSampler<'a>> {
        // analyze: allow(alloc, reason = "batch setup: one sampler table per projection batch, built before the per-column sweep starts")
        let mut out = Vec::with_capacity(projs.len());
        // analyze: allow(alloc, reason = "bounded: capacity reserved above at projs.len(); extend fills exactly that many slots")
        out.extend(projs.iter().map(|p| Self::new(p, mode)));
        out
    }

    /// Blend one element exactly as the reference does (strict) or with
    /// fused multiply-adds (fma).
    #[allow(clippy::too_many_arguments)] // the flat bilinear dataflow
    #[inline]
    fn blend(&self, a0: f32, a1: f32, b0: f32, b1: f32, d: f32, du: f32, w: f32) -> f32 {
        match self.mode {
            LaneMode::Strict => {
                let t1 = a0 * (1.0 - d) + a1 * d;
                let t2 = b0 * (1.0 - d) + b1 * d;
                w * (t1 * (1.0 - du) + t2 * du)
            }
            LaneMode::Fma => {
                let t1 = a1.mul_add(d, a0 * (1.0 - d));
                let t2 = b1.mul_add(d, b0 * (1.0 - d));
                w * t2.mul_add(du, t1 * (1.0 - du))
            }
        }
    }

    /// Reference per-element v handling for lanes the fast predicate
    /// rejects: the exact expressions of the warp fast path's border
    /// branch (floor-based index, zero-border fetch).
    #[inline]
    fn border_element(&self, col: &UColumn<'_>, v: f32, w: f32, o: &mut f32) {
        let vw = AxisWeight::resolve(v);
        let s = |r: &[f32], x: isize| {
            usize::try_from(x)
                .ok()
                .and_then(|i| r.get(i))
                .copied()
                .unwrap_or(0.0)
        };
        let (a0, a1) = (s(col.row0, vw.i), s(col.row0, vw.i + 1));
        let (b0, b1) = (s(col.row1, vw.i), s(col.row1, vw.i + 1));
        *o += self.blend(a0, a1, b0, b1, vw.frac, col.du, w);
    }
}

impl Sampler for LaneSampler<'_> {
    #[inline]
    fn sample(&self, u: f32, v: f32) -> f32 {
        self.proj.sample(u, v)
    }

    /// The lane-array sweep: `u` weights once per column, then the
    /// depth loop in [`LANE_WIDTH`]-wide chunks of fixed-size array
    /// arithmetic. Strict mode is bit-identical to the warp fast path
    /// (which is itself bit-identical to `interp2`).
    fn accumulate_column(&self, u: f32, vs: &[f32], w: f32, out: &mut [f32]) {
        let Some((col, _)) = UColumn::resolve(self.proj, u) else {
            // u border: both axes need the zero-border blend — the
            // reference path, as in the warp kernel.
            for (o, &v) in out.iter_mut().zip(vs) {
                *o += w * self.sample(u, v);
            }
            return;
        };
        let nv = col.row0.len();
        // In-range predicate: `0 <= v < nv-1` makes `trunc(v)` equal
        // `floor(v)` and keeps both v samples inside the row. `-0.0`
        // passes (trunc also gives 0 there); its fraction sign is fixed
        // by the `+ 0.0` below, matching `v - floor(v)` bit for bit.
        let vhi = if nv >= 2 { (nv - 1) as f32 } else { 0.0 };

        let mut chunks_v = vs.chunks_exact(LANE_WIDTH);
        let mut chunks_o = out.chunks_exact_mut(LANE_WIDTH);
        for (vc, oc) in (&mut chunks_v).zip(&mut chunks_o) {
            let mut in_range = true;
            for &v in vc {
                in_range &= (0.0..vhi).contains(&v);
            }
            if !in_range {
                for (o, &v) in oc.iter_mut().zip(vc) {
                    self.border_element(&col, v, w, o);
                }
                continue;
            }
            // Index + fraction lanes: trunc (cvttps2dq) instead of
            // floor, exact for the in-range predicate above.
            let mut iv = [0usize; LANE_WIDTH];
            let mut d = [0.0f32; LANE_WIDTH];
            for ((i, dl), &v) in iv.iter_mut().zip(d.iter_mut()).zip(vc) {
                let t = v as i32;
                *i = t as usize;
                *dl = (v - t as f32) + 0.0;
            }
            // Gather lanes: the predicate guarantees `iv + 1 <= nv-1`,
            // so the fallback value of the checked fetch is never used.
            let mut a0 = [0.0f32; LANE_WIDTH];
            let mut a1 = [0.0f32; LANE_WIDTH];
            let mut b0 = [0.0f32; LANE_WIDTH];
            let mut b1 = [0.0f32; LANE_WIDTH];
            for ((((pa0, pa1), pb0), pb1), &i) in a0
                .iter_mut()
                .zip(a1.iter_mut())
                .zip(b0.iter_mut())
                .zip(b1.iter_mut())
                .zip(&iv)
            {
                *pa0 = col.row0.get(i).copied().unwrap_or(0.0);
                *pa1 = col.row0.get(i + 1).copied().unwrap_or(0.0);
                *pb0 = col.row1.get(i).copied().unwrap_or(0.0);
                *pb1 = col.row1.get(i + 1).copied().unwrap_or(0.0);
            }
            // Blend lanes: constant trip count over fixed arrays.
            for (o, ((((&la0, &la1), &lb0), &lb1), &ld)) in oc.iter_mut().zip(
                a0.iter()
                    .zip(a1.iter())
                    .zip(b0.iter())
                    .zip(b1.iter())
                    .zip(d.iter()),
            ) {
                *o += self.blend(la0, la1, lb0, lb1, ld, col.du, w);
            }
        }
        // Tail: same expressions, scalar.
        for (o, &v) in chunks_o
            .into_remainder()
            .iter_mut()
            .zip(chunks_v.remainder())
        {
            if (0.0..vhi).contains(&v) {
                let t = v as i32;
                let i = t as usize;
                let d = (v - t as f32) + 0.0;
                let a0 = col.row0.get(i).copied().unwrap_or(0.0);
                let a1 = col.row0.get(i + 1).copied().unwrap_or(0.0);
                let b0 = col.row1.get(i).copied().unwrap_or(0.0);
                let b1 = col.row1.get(i + 1).copied().unwrap_or(0.0);
                *o += self.blend(a0, a1, b0, b1, d, col.du, w);
            } else {
                self.border_element(&col, v, w, o);
            }
        }
    }
}

/// Projection-batch blocking configuration for
/// [`backproject_lanes_with`]. Fields set to `0` resolve automatically
/// from cache-budget heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LanesBlocking {
    /// Projection *batches* per resident block (`0` = auto): a block's
    /// projections are all swept through a column tile before the next
    /// block starts.
    pub block_batches: usize,
    /// Voxel columns per resident tile (`0` = auto).
    pub j_tile: usize,
}

impl LanesBlocking {
    /// Resolve the `0 = auto` fields. The column tile is sized so its
    /// depth-sweep output (`j_tile * nz` f32 accumulators plus the
    /// sweep scratch) stays within an L1-ish 16 KiB budget; the batch
    /// block is sized so a block's worth of per-column detector row
    /// pairs (`batch * 2 * nv` f32 per column) stays within an L2-ish
    /// 256 KiB budget. Both clamp to at least 1.
    pub fn resolve(
        &self,
        ny: usize,
        nz: usize,
        nv: usize,
        batch: usize,
        batches: usize,
    ) -> (usize, usize) {
        const L1_BUDGET: usize = 16 * 1024;
        const L2_BUDGET: usize = 256 * 1024;
        let j_tile = if self.j_tile == 0 {
            L1_BUDGET
                .checked_div(nz.max(1) * 4)
                .unwrap_or(L1_BUDGET)
                .clamp(1, ny.max(1))
        } else {
            self.j_tile.clamp(1, ny.max(1))
        };
        let block_batches = if self.block_batches == 0 {
            L2_BUDGET
                .checked_div(batch.max(1) * 2 * nv.max(1) * 4)
                .unwrap_or(L2_BUDGET)
                .clamp(1, batches.max(1))
        } else {
            self.block_batches.clamp(1, batches.max(1))
        };
        (j_tile, block_batches)
    }
}

/// The lane-array full-volume driver: the warp kernel's loop structure
/// with projection-batch blocking — a block of projection batches is
/// swept through a resident tile of voxel columns before the sweep
/// advances, so block-sized projection state stays cache-resident
/// while every column of the tile consumes it.
///
/// Per voxel, batches still accumulate in global batch order (blocks
/// ascending, batches within a block ascending), and each
/// `(batch, column)` pair runs the identical reset/sweep/add sequence —
/// so the output is **bit-identical** to
/// [`crate::warp::backproject_warp_with`] for every blocking shape and
/// thread count, including `block_batches = 1` (which *is* the
/// unblocked loop order).
pub fn backproject_lanes_with(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[LaneSampler<'_>],
    nv: usize,
    dims: Dims3,
    batch: usize,
    blocking: LanesBlocking,
) -> Volume {
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert_eq!(mats.len(), samplers.len(), "one matrix per projection");
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert!(dims.nz.is_multiple_of(2), "lanes kernel needs even Nz");
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert!((1..=WARP_BATCH).contains(&batch), "batch must be in 1..=32");
    let (ny, nz) = (dims.ny, dims.nz);
    let half = nz / 2;
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();
    let batches = rows.len().div_ceil(batch.max(1)).max(1);
    let (j_tile, block_batches) = blocking.resolve(ny, nz, nv, batch, batches);
    let block = block_batches * batch;

    let vmax = nv as f32 - 1.0;
    let mut vol = Volume::zeros(dims, VolumeLayout::KMajor);
    let chunk = ny * nz;
    pool.parallel_chunks_mut_indexed(vol.data_mut(), chunk, |i, _start, slice| {
        let ifl = i as f32;
        let mut buf = SweepBuffers::new(half);
        for (rows_blk, samplers_blk) in rows.chunks(block).zip(samplers.chunks(block)) {
            let mut j0 = 0;
            while j0 < ny {
                let jn = (j0 + j_tile).min(ny);
                for (rows_b, samplers_b) in rows_blk.chunks(batch).zip(samplers_blk.chunks(batch)) {
                    let tile_cols = slice.chunks_exact_mut(nz).enumerate().take(jn).skip(j0);
                    for (j, col) in tile_cols {
                        let jf = j as f32;
                        let cb = ColumnBatch::compute(rows_b, ifl, jf);
                        buf.reset();
                        cb.accumulate_into(samplers_b, 0, vmax, &mut buf);
                        let (col_up, col_down) = col.split_at_mut(half);
                        for (dst, src) in col_up.iter_mut().zip(&buf.up) {
                            *dst += *src;
                        }
                        for (dst, src) in col_down.iter_mut().rev().zip(&buf.down) {
                            *dst += *src;
                        }
                    }
                }
                j0 = jn;
            }
        }
    });
    vol
}

/// Full-volume batched back-projection over transposed projections,
/// dispatched on [`KernelImpl`]: the entry the reconstruction
/// pipelines call. `tile: Some` routes through the tiled driver (which
/// both kernels share — the lane path rides in through the sampler);
/// `tile: None` runs the untiled driver (warp for scalar, the blocked
/// lanes driver otherwise). All four routes are bit-identical in
/// strict/scalar modes.
#[allow(clippy::too_many_arguments)] // mirrors backproject_tiled_with + kernel
pub fn backproject_batch(
    pool: &Pool,
    kernel: KernelImpl,
    mats: &[ProjectionMatrix],
    projs: &[&TransposedProjection],
    nv: usize,
    dims: Dims3,
    batch: usize,
    tile: Option<TileConfig>,
) -> Volume {
    match (kernel, tile) {
        (KernelImpl::Scalar, Some(t)) => {
            backproject_tiled_with(pool, mats, projs, nv, dims, batch, t)
        }
        (KernelImpl::Scalar, None) => backproject_warp_with(pool, mats, projs, nv, dims, batch),
        (KernelImpl::Lanes(mode), Some(t)) => {
            let samplers = LaneSampler::wrap(projs, mode);
            backproject_tiled_with(pool, mats, &samplers, nv, dims, batch, t)
        }
        (KernelImpl::Lanes(mode), None) => {
            let samplers = LaneSampler::wrap(projs, mode);
            backproject_lanes_with(
                pool,
                mats,
                &samplers,
                nv,
                dims,
                batch,
                LanesBlocking::default(),
            )
        }
    }
}

/// Slab-pair back-projection dispatched on [`KernelImpl`], with tile
/// reports when the tiled driver runs (the distributed pipeline's
/// span attribution). Mirrors [`backproject_batch`] for one
/// [`SlabPair`].
#[allow(clippy::too_many_arguments)] // mirrors backproject_pair_tiled_reporting + kernel
pub fn backproject_pair_batch_reporting(
    pool: &Pool,
    kernel: KernelImpl,
    mats: &[ProjectionMatrix],
    projs: &[&TransposedProjection],
    nv: usize,
    dims: Dims3,
    pair: SlabPair,
    batch: usize,
    tile: Option<TileConfig>,
) -> (Volume, Vec<TileReport>) {
    match (kernel, tile) {
        (KernelImpl::Scalar, Some(t)) => {
            backproject_pair_tiled_reporting(pool, mats, projs, nv, dims, pair, batch, t)
        }
        (KernelImpl::Scalar, None) => (
            backproject_pair_with(pool, mats, projs, nv, dims, pair, batch),
            Vec::new(),
        ),
        (KernelImpl::Lanes(mode), Some(t)) => {
            let samplers = LaneSampler::wrap(projs, mode);
            backproject_pair_tiled_reporting(pool, mats, &samplers, nv, dims, pair, batch, t)
        }
        (KernelImpl::Lanes(mode), None) => {
            let samplers = LaneSampler::wrap(projs, mode);
            (
                backproject_pair_with(pool, mats, &samplers, nv, dims, pair, batch),
                Vec::new(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::backproject_warp;
    use ct_core::geometry::CbctGeometry;
    use ct_core::metrics::nrmse;
    use ct_core::problem::Dims2;
    use ct_core::projection::{ProjectionImage, ProjectionStack};

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 7 + v * 5 + s * 3) % 29) as f32) * 0.5 - 7.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn strict_lane_column_is_bit_identical_to_warp_fast_path() {
        let (geo, _, stack) = setup(1, 8);
        let q = stack.iter().next().unwrap().transposed();
        let lane = LaneSampler::new(&q, LaneMode::Strict);
        let nv = geo.detector.nv as f32;
        // u positions across interior and borders; v series crossing in
        // and out of range, lengths exercising chunk tails.
        for ui in [-1.5f32, -0.2, 0.0, 3.3, 7.9, nv - 1.0, 40.0] {
            for (v0, dv) in [(-2.0f32, 0.7f32), (0.1, 1.3), (14.0, -0.9), (-0.0, 0.0)] {
                for len in [1usize, 7, 8, 9, 16, 23] {
                    let vs: Vec<f32> = (0..len).map(|k| v0 + k as f32 * dv).collect();
                    let mut fast = vec![0.0f32; len];
                    let mut reference = vec![0.0f32; len];
                    lane.accumulate_column(ui, &vs, 0.37, &mut fast);
                    q.accumulate_column(ui, &vs, 0.37, &mut reference);
                    assert_eq!(
                        fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "u = {ui}, v0 = {v0}, dv = {dv}, len = {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn strict_full_volume_is_bit_identical_to_warp() {
        let (geo, mats, stack) = setup(40, 16);
        let reference = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let refs: Vec<&TransposedProjection> = transposed.iter().collect();
        for tile in [None, Some(TileConfig::AUTO)] {
            for threads in [1usize, 3] {
                let pool = Pool::new(threads);
                let v = backproject_batch(
                    &pool,
                    KernelImpl::Lanes(LaneMode::Strict),
                    &mats,
                    &refs,
                    stack.dims().nv,
                    geo.volume,
                    WARP_BATCH,
                    tile,
                );
                assert_eq!(v.data(), reference.data(), "tile {tile:?} x{threads}");
            }
        }
    }

    #[test]
    fn blocking_shapes_are_bitwise_equivalent() {
        let (geo, mats, stack) = setup(40, 16);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let refs: Vec<&TransposedProjection> = transposed.iter().collect();
        let samplers = LaneSampler::wrap(&refs, LaneMode::Strict);
        let nv = stack.dims().nv;
        let unblocked = backproject_lanes_with(
            &Pool::serial(),
            &mats,
            &samplers,
            nv,
            geo.volume,
            WARP_BATCH,
            LanesBlocking {
                block_batches: 1,
                j_tile: geo.volume.ny,
            },
        );
        for blocking in [
            LanesBlocking::default(),
            LanesBlocking {
                block_batches: 2,
                j_tile: 3,
            },
            LanesBlocking {
                block_batches: 100,
                j_tile: 1,
            },
        ] {
            let v = backproject_lanes_with(
                &Pool::serial(),
                &mats,
                &samplers,
                nv,
                geo.volume,
                WARP_BATCH,
                blocking,
            );
            assert_eq!(v.data(), unblocked.data(), "{blocking:?}");
        }
    }

    #[test]
    fn fma_mode_stays_within_documented_bound() {
        let (geo, mats, stack) = setup(24, 16);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let refs: Vec<&TransposedProjection> = transposed.iter().collect();
        let strict = backproject_batch(
            &Pool::serial(),
            KernelImpl::Lanes(LaneMode::Strict),
            &mats,
            &refs,
            stack.dims().nv,
            geo.volume,
            WARP_BATCH,
            None,
        );
        let fma = backproject_batch(
            &Pool::serial(),
            KernelImpl::Lanes(LaneMode::Fma),
            &mats,
            &refs,
            stack.dims().nv,
            geo.volume,
            WARP_BATCH,
            None,
        );
        let e = nrmse(strict.data(), fma.data()).unwrap();
        assert!(e < FMA_NRMSE_BOUND, "nrmse {e}");
    }

    #[test]
    fn kernel_impl_names_and_default() {
        assert_eq!(KernelImpl::default(), KernelImpl::Lanes(LaneMode::Strict));
        assert_eq!(KernelImpl::Scalar.name(), "scalar");
        assert_eq!(KernelImpl::Lanes(LaneMode::Strict).name(), "lanes");
        assert_eq!(KernelImpl::Lanes(LaneMode::Fma).name(), "lanes-fma");
    }

    #[test]
    fn pair_dispatch_matches_scalar_pair() {
        let (geo, mats, stack) = setup(9, 16);
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let refs: Vec<&TransposedProjection> = transposed.iter().collect();
        let nv = stack.dims().nv;
        let pair = SlabPair::new(16, 2, 5).unwrap();
        for tile in [None, Some(TileConfig::AUTO)] {
            let (scalar, _) = backproject_pair_batch_reporting(
                &Pool::serial(),
                KernelImpl::Scalar,
                &mats,
                &refs,
                nv,
                geo.volume,
                pair,
                WARP_BATCH,
                tile,
            );
            let (lanes, _) = backproject_pair_batch_reporting(
                &Pool::new(2),
                KernelImpl::Lanes(LaneMode::Strict),
                &mats,
                &refs,
                nv,
                geo.volume,
                pair,
                WARP_BATCH,
                tile,
            );
            assert_eq!(lanes.data(), scalar.data(), "tile {tile:?}");
        }
    }

    #[test]
    fn blocking_resolve_clamps() {
        let (jt, bb) = LanesBlocking::default().resolve(64, 64, 96, 32, 3);
        assert!((1..=64).contains(&jt));
        assert!((1..=3).contains(&bb));
        let (jt, bb) = LanesBlocking {
            block_batches: 100,
            j_tile: 100,
        }
        .resolve(8, 16, 32, 32, 2);
        assert_eq!((jt, bb), (8, 2));
        // Degenerate shapes must not divide by zero.
        let (jt, bb) = LanesBlocking::default().resolve(0, 0, 0, 0, 0);
        assert_eq!((jt, bb), (1, 1));
    }
}
