//! Symmetric slab-pair back-projection — the distributed output unit.
//!
//! The proposed kernel's Theorem-1 symmetry pairs voxel `(i, j, k)` with
//! `(i, j, Nz-1-k)`, i.e. a z-slab with its mirror about the volume's XY
//! mid-plane. iFDK therefore decomposes the output volume into `R`
//! *slab pairs*: row `r` of the rank grid owns the slab
//! `[k0, k0+len)` **and** its mirror `[Nz-k0-len, Nz-k0)` — which is why
//! the paper's Figure 3 shows the output aggregated from `2*R`
//! sub-volumes. Each pair costs the same as a single slab of the standard
//! kernel, preserving the full 1/6 arithmetic saving at any scale.

use crate::warp::{ColumnBatch, Sampler, SweepBuffers, WARP_BATCH};
use ct_core::error::{CtError, Result};
use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::{ProjectionStack, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// A symmetric pair of z-slabs of a full volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabPair {
    /// Full-volume `Nz` (must be even).
    pub nz_full: usize,
    /// First z index of the upper (low-k) slab.
    pub k0: usize,
    /// Slab length; the pair covers `2*len` slices.
    pub len: usize,
}

impl SlabPair {
    /// Validate and construct.
    pub fn new(nz_full: usize, k0: usize, len: usize) -> Result<Self> {
        if nz_full == 0 || !nz_full.is_multiple_of(2) {
            return Err(CtError::InvalidConfig(format!(
                "nz_full = {nz_full} must be even and nonzero"
            )));
        }
        if len == 0 || k0 + len > nz_full / 2 {
            return Err(CtError::InvalidConfig(format!(
                "slab [{k0}, {}) must lie within the lower half [0, {})",
                k0 + len,
                nz_full / 2
            )));
        }
        Ok(Self { nz_full, k0, len })
    }

    /// Split the lower half of a volume into `r` equal slab pairs.
    /// `nz_full/2` must be divisible by `r`.
    pub fn decompose(nz_full: usize, r: usize) -> Result<Vec<SlabPair>> {
        if r == 0 {
            return Err(CtError::InvalidConfig("need at least one slab pair".into()));
        }
        if !nz_full.is_multiple_of(2) || !(nz_full / 2).is_multiple_of(r) {
            return Err(CtError::InvalidConfig(format!(
                "nz_full/2 = {} must divide evenly into {r} slabs",
                nz_full / 2
            )));
        }
        let len = nz_full / 2 / r;
        (0..r)
            .map(|s| SlabPair::new(nz_full, s * len, len))
            .collect()
    }

    /// Number of local z slices in the pair volume (`2 * len`).
    #[inline]
    pub fn local_nz(&self) -> usize {
        2 * self.len
    }

    /// Map a local pair-volume z index to the full-volume z index.
    ///
    /// Local `[0, len)` is the upper slab in ascending order; local
    /// `[len, 2*len)` is the mirror slab in ascending global order, so the
    /// Theorem-1 mirror of local `k` is local `2*len - 1 - k`.
    #[inline]
    pub fn global_k(&self, local: usize) -> usize {
        debug_assert!(local < self.local_nz());
        if local < self.len {
            self.k0 + local
        } else {
            self.nz_full - self.k0 - 2 * self.len + local
        }
    }
}

/// Back-project one slab pair with the proposed batched kernel
/// (transposed projections, k-major output — the `L1-Tran`
/// configuration iFDK deploys on each GPU).
///
/// The output volume has dims `(nx, ny, 2*len)` in k-major layout; use
/// [`SlabPair::global_k`] to map its slices back into the full volume.
pub fn backproject_pair(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
    pair: SlabPair,
) -> Volume {
    let transposed: Vec<TransposedProjection> = projs.iter().map(|p| p.transposed()).collect();
    backproject_pair_with(
        pool,
        mats,
        &transposed,
        projs.dims().nv,
        dims,
        pair,
        WARP_BATCH,
    )
}

/// Generic-sampler version of [`backproject_pair`].
pub fn backproject_pair_with<S: Sampler>(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    samplers: &[S],
    nv: usize,
    dims: Dims3,
    pair: SlabPair,
    batch: usize,
) -> Volume {
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert_eq!(mats.len(), samplers.len(), "one matrix per projection");
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert_eq!(dims.nz, pair.nz_full, "pair must match volume Nz");
    // analyze: allow(panic, reason = "caller-contract validation at the public kernel entry; fires before any work starts")
    assert!((1..=WARP_BATCH).contains(&batch), "batch must be in 1..=32");
    let (nx, ny) = (dims.nx, dims.ny);
    let local_nz = pair.local_nz();
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();

    let vmax = nv as f32 - 1.0;
    let mut vol = Volume::zeros(Dims3::new(nx, ny, local_nz), VolumeLayout::KMajor);
    let chunk = ny * local_nz;
    pool.parallel_chunks_mut_indexed(vol.data_mut(), chunk, |i, _start, slice| {
        let ifl = i as f32;
        let mut buf = SweepBuffers::new(pair.len);
        for (rows_b, samplers_b) in rows.chunks(batch).zip(samplers.chunks(batch)) {
            for (j, col) in slice.chunks_exact_mut(local_nz).enumerate().take(ny) {
                let jf = j as f32;
                let cb = ColumnBatch::compute(rows_b, ifl, jf);
                // Depth sweep starting at the pair's global z offset;
                // the local column is the upper slab followed by its
                // Theorem-1 mirror in ascending global order.
                buf.reset();
                cb.accumulate_into(samplers_b, pair.k0, vmax, &mut buf);
                let (col_up, col_down) = col.split_at_mut(pair.len);
                for (dst, src) in col_up.iter_mut().zip(&buf.up) {
                    *dst += *src;
                }
                for (dst, src) in col_down.iter_mut().rev().zip(&buf.down) {
                    *dst += *src;
                }
            }
        }
    });
    vol
}

/// Reassemble a full k-major volume from per-pair volumes (one per slab
/// pair, in the order produced by [`SlabPair::decompose`]).
pub fn stitch_pairs(dims: Dims3, pairs: &[(SlabPair, Volume)]) -> Result<Volume> {
    let mut out = Volume::zeros(dims, VolumeLayout::KMajor);
    let mut covered = vec![false; dims.nz];
    for (pair, vol) in pairs {
        if pair.nz_full != dims.nz {
            return Err(CtError::ShapeMismatch {
                expected: format!("nz_full {}", dims.nz),
                actual: format!("{}", pair.nz_full),
            });
        }
        let vd = vol.dims();
        if vd.nx != dims.nx || vd.ny != dims.ny || vd.nz != pair.local_nz() {
            return Err(CtError::ShapeMismatch {
                expected: format!("{}x{}x{}", dims.nx, dims.ny, pair.local_nz()),
                actual: format!("{}x{}x{}", vd.nx, vd.ny, vd.nz),
            });
        }
        for local in 0..pair.local_nz() {
            let g = pair.global_k(local);
            // analyze: allow(bounds, reason = "global_k maps local 0..local_nz into 0..nz by construction; the shape check above pins vd to the pair")
            if covered[g] {
                return Err(CtError::InvalidConfig(format!(
                    "slice {g} covered by more than one slab pair"
                )));
            }
            // analyze: allow(bounds, reason = "same global_k invariant as the coverage check above")
            covered[g] = true;
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    out.set(i, j, g, vol.get(i, j, local));
                }
            }
        }
    }
    if let Some(missing) = covered.iter().position(|&c| !c) {
        return Err(CtError::InvalidConfig(format!(
            "slice {missing} not covered by any slab pair"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::backproject_warp;
    use ct_core::geometry::CbctGeometry;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u + 2 * v + 3 * s) % 29) as f32) * 0.3);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn slab_pair_validation() {
        assert!(SlabPair::new(16, 0, 8).is_ok());
        assert!(SlabPair::new(16, 4, 4).is_ok());
        assert!(SlabPair::new(16, 5, 4).is_err()); // crosses the mid-plane
        assert!(SlabPair::new(15, 0, 4).is_err()); // odd nz
        assert!(SlabPair::new(16, 0, 0).is_err()); // empty
    }

    #[test]
    fn decompose_covers_lower_half() {
        let pairs = SlabPair::decompose(32, 4).unwrap();
        assert_eq!(pairs.len(), 4);
        let mut seen = [false; 32];
        for p in &pairs {
            for local in 0..p.local_nz() {
                let g = p.global_k(local);
                assert!(!seen[g], "slice {g} double-covered");
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(SlabPair::decompose(32, 5).is_err());
        assert!(SlabPair::decompose(32, 0).is_err());
    }

    #[test]
    fn global_k_mapping_is_mirror_consistent() {
        let p = SlabPair::new(64, 8, 4).unwrap();
        assert_eq!(p.local_nz(), 8);
        // Upper slab: 8, 9, 10, 11.
        assert_eq!(p.global_k(0), 8);
        assert_eq!(p.global_k(3), 11);
        // Mirror slab ascending: 52, 53, 54, 55.
        assert_eq!(p.global_k(4), 52);
        assert_eq!(p.global_k(7), 55);
        // Theorem-1 mirror of local k is local 2*len-1-k.
        for k in 0..4 {
            assert_eq!(p.global_k(2 * 4 - 1 - k), 64 - 1 - p.global_k(k));
        }
    }

    #[test]
    fn single_pair_covering_everything_matches_warp_kernel() {
        let (geo, mats, stack) = setup(8, 8);
        let full = backproject_warp(&Pool::serial(), &mats, &stack, geo.volume);
        let pair = SlabPair::new(8, 0, 4).unwrap();
        let pv = backproject_pair(&Pool::serial(), &mats, &stack, geo.volume, pair);
        // With k0 = 0 and len = nz/2 the pair volume IS the full volume.
        assert_eq!(pv.data(), full.data());
    }

    #[test]
    fn stitched_decomposition_matches_full_volume() {
        let (geo, mats, stack) = setup(12, 16);
        let full = backproject_warp(&Pool::new(2), &mats, &stack, geo.volume);
        let pairs = SlabPair::decompose(16, 4).unwrap();
        let pieces: Vec<(SlabPair, Volume)> = pairs
            .iter()
            .map(|&p| {
                (
                    p,
                    backproject_pair(&Pool::new(2), &mats, &stack, geo.volume, p),
                )
            })
            .collect();
        let stitched = stitch_pairs(geo.volume, &pieces).unwrap();
        assert_eq!(stitched.data(), full.data());
    }

    #[test]
    fn stitch_detects_gaps_and_overlaps() {
        let (geo, mats, stack) = setup(4, 8);
        let pairs = SlabPair::decompose(8, 2).unwrap();
        let v0 = backproject_pair(&Pool::serial(), &mats, &stack, geo.volume, pairs[0]);
        // Missing pair 1 -> gap.
        assert!(stitch_pairs(geo.volume, &[(pairs[0], v0.clone())]).is_err());
        // Duplicated pair 0 -> overlap.
        assert!(stitch_pairs(
            geo.volume,
            &[(pairs[0], v0.clone()), (pairs[0], v0.clone())]
        )
        .is_err());
    }
}
