//! The standard voxel-driven back-projection — paper Algorithm 2.
//!
//! This is the scheme implemented by RTK, RabbitCT and OSCaR: for every
//! projection `s` and every voxel `(i, j, k)`, compute the full
//! `[x, y, z]^T = P_s * [i, j, k, 1]^T` (three 1x4 inner products), divide
//! by `z`, weight by `1/z^2` and bilinearly sample the filtered
//! projection. It serves as the correctness oracle for every optimised
//! kernel in this crate.

use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::ProjectionStack;
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;
use std::ops::Range;

/// Back-project a full volume with Algorithm 2 (i-major output).
///
/// `mats[s]` must be the projection matrix matching `projs.get(s)`.
pub fn backproject_standard(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    backproject_standard_slab(pool, mats, projs, dims, 0..dims.nz)
}

/// Back-project only the z-slab `k_range` of the full volume `dims`
/// (Algorithm 2 restricted to a slab). The output volume has
/// `nz = k_range.len()` and voxel `(i, j, k)` of the output corresponds to
/// `(i, j, k_range.start + k)` of the full volume.
pub fn backproject_standard_slab(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
    k_range: Range<usize>,
) -> Volume {
    assert_eq!(mats.len(), projs.len(), "one matrix per projection");
    assert!(k_range.end <= dims.nz, "slab exceeds volume");
    let out_dims = Dims3::new(dims.nx, dims.ny, k_range.len());
    let mut vol = Volume::zeros(out_dims, VolumeLayout::IMajor);
    let (nx, ny) = (dims.nx, dims.ny);
    let (nu, nv) = (projs.dims().nu, projs.dims().nv);
    let k0 = k_range.start;

    // Cast matrices once (Listing 1 keeps them in constant memory as f32).
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();

    // Parallelise over output z-slices: in the i-major layout each slice
    // is one contiguous chunk, so threads write disjoint memory while each
    // voxel still accumulates projections in ascending `s` order.
    let slice_len = nx * ny;
    pool.parallel_chunks_mut(vol.data_mut(), slice_len, |start, slice| {
        let k_local = start / slice_len;
        let kf = (k0 + k_local) as f32;
        for (s, mat) in rows.iter().enumerate() {
            let img = projs.get(s);
            let data = img.data();
            for j in 0..ny {
                let jf = j as f32;
                for i in 0..nx {
                    let ifl = i as f32;
                    // Algorithm 2 line 6: three 1x4 inner products.
                    let x = mat[0][0] * ifl + mat[0][1] * jf + mat[0][2] * kf + mat[0][3];
                    let y = mat[1][0] * ifl + mat[1][1] * jf + mat[1][2] * kf + mat[1][3];
                    let z = mat[2][0] * ifl + mat[2][1] * jf + mat[2][2] * kf + mat[2][3];
                    // Lines 7-9.
                    let f = 1.0 / z;
                    let wdis = f * f;
                    let u = x * f;
                    let v = y * f;
                    // Line 10.
                    slice[j * nx + i] += wdis * ct_core::interp::interp2(data, nu, nv, u, v);
                }
            }
        }
    });
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::CbctGeometry;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn tiny_setup() -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(32, 32), 12, Dims3::cube(16));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..geo.num_projections {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..32 {
                for u in 0..32 {
                    img.set(u, v, ((u * 3 + v * 5 + s * 7) % 11) as f32);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn zero_projections_give_zero_volume() {
        let (geo, mats, _) = tiny_setup();
        let zeros = ProjectionStack::zeros(geo.detector, geo.num_projections);
        let vol = backproject_standard(&Pool::serial(), &mats, &zeros, geo.volume);
        assert!(vol.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn output_layout_and_dims() {
        let (geo, mats, stack) = tiny_setup();
        let vol = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        assert_eq!(vol.dims(), geo.volume);
        assert_eq!(vol.layout(), VolumeLayout::IMajor);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (geo, mats, stack) = tiny_setup();
        let a = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        let b = backproject_standard(&Pool::new(4), &mats, &stack, geo.volume);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn slab_matches_full_volume() {
        let (geo, mats, stack) = tiny_setup();
        let full = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        let slab = backproject_standard_slab(&Pool::serial(), &mats, &stack, geo.volume, 5..11);
        assert_eq!(slab.dims(), Dims3::new(16, 16, 6));
        for k in 0..6 {
            for j in 0..16 {
                for i in 0..16 {
                    assert_eq!(slab.get(i, j, k), full.get(i, j, k + 5));
                }
            }
        }
    }

    #[test]
    fn uniform_projection_weights_center_most() {
        // With all-ones projections the centre voxel (closest to every
        // detector centre, weight ~ 1/d^2 each view) accumulates more than
        // a corner voxel that falls outside some views.
        let (geo, mats, _) = tiny_setup();
        let mut stack = ProjectionStack::new(geo.detector);
        for _ in 0..geo.num_projections {
            let mut img = ProjectionImage::zeros(geo.detector);
            img.data_mut().iter_mut().for_each(|p| *p = 1.0);
            stack.push(img).unwrap();
        }
        let vol = backproject_standard(&Pool::serial(), &mats, &stack, geo.volume);
        let c = vol.get(8, 8, 8);
        assert!(c > 0.0);
        // Every voxel inside the FOV accumulates Np positive updates.
        let expect = geo.num_projections as f32 / (geo.d * geo.d) as f32;
        assert!((c - expect).abs() < 0.15 * expect, "{c} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "one matrix per projection")]
    fn mismatched_inputs_panic() {
        let (geo, mats, stack) = tiny_setup();
        backproject_standard(&Pool::serial(), &mats[..3], &stack, geo.volume);
    }

    #[test]
    #[should_panic(expected = "slab exceeds volume")]
    fn oversized_slab_panics() {
        let (geo, mats, stack) = tiny_setup();
        backproject_standard_slab(&Pool::serial(), &mats, &stack, geo.volume, 0..17);
    }
}
