//! Ablation kernels: the proposed algorithm with individual optimisations
//! switched off, isolating where the 1/6 arithmetic saving and the
//! locality win actually come from.
//!
//! | Kernel | Inner products / voxel | z-range | Layouts |
//! |---|---|---|---|
//! | [`crate::standard::backproject_standard`] | 3 | full | i-major, row-major Q |
//! | [`backproject_full_recompute`] | 3 | full | k-major, transposed Q |
//! | [`backproject_no_symmetry`] | 1 (+2/column) | full | k-major, transposed Q |
//! | [`crate::proposed::backproject_proposed`] | 1 (+2/column) | half (mirror) | k-major, transposed Q |
//!
//! Comparing adjacent rows measures, respectively: the pure layout
//! effect, the Theorem 2/3 column-reuse effect, and the Theorem 1
//! symmetry effect. `bench/benches/ablation.rs` reports all four.

use ct_core::geometry::ProjectionMatrix;
use ct_core::problem::Dims3;
use ct_core::projection::ProjectionStack;
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// Proposed layouts (k-major volume, transposed projections) but the full
/// Algorithm 2 arithmetic: three inner products per voxel, full z-loop.
pub fn backproject_full_recompute(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    assert_eq!(mats.len(), projs.len(), "one matrix per projection");
    let (ny, nz) = (dims.ny, dims.nz);
    let (nu, nv) = (projs.dims().nu, projs.dims().nv);
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();
    let transposed: Vec<_> = projs.iter().map(|p| p.transposed()).collect();

    let mut vol = Volume::zeros(dims, VolumeLayout::KMajor);
    let chunk = ny * nz;
    pool.parallel_chunks_mut(vol.data_mut(), chunk, |start, slice| {
        let i = start / chunk;
        let ifl = i as f32;
        for (s, mat) in rows.iter().enumerate() {
            let q = &transposed[s];
            let qdata = q.data();
            for j in 0..ny {
                let jf = j as f32;
                let col = &mut slice[j * nz..(j + 1) * nz];
                for (k, out) in col.iter_mut().enumerate() {
                    let kf = k as f32;
                    // All three inner products, every voxel (Alg. 2 line 6).
                    let x = mat[0][0] * ifl + mat[0][1] * jf + mat[0][2] * kf + mat[0][3];
                    let y = mat[1][0] * ifl + mat[1][1] * jf + mat[1][2] * kf + mat[1][3];
                    let z = mat[2][0] * ifl + mat[2][1] * jf + mat[2][2] * kf + mat[2][3];
                    let f = 1.0 / z;
                    let wdis = f * f;
                    let u = x * f;
                    let v = y * f;
                    *out += wdis * ct_core::interp::interp2(qdata, nv, nu, v, u);
                }
            }
        }
    });
    vol
}

/// Theorem 2/3 column reuse (2 inner products per column, 1 per voxel)
/// but **no** Theorem 1 symmetry: the z-loop covers the full column.
pub fn backproject_no_symmetry(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    assert_eq!(mats.len(), projs.len(), "one matrix per projection");
    let (ny, nz) = (dims.ny, dims.nz);
    let (nu, nv) = (projs.dims().nu, projs.dims().nv);
    let rows: Vec<[[f32; 4]; 3]> = mats.iter().map(|m| m.rows_f32()).collect();
    let transposed: Vec<_> = projs.iter().map(|p| p.transposed()).collect();

    let mut vol = Volume::zeros(dims, VolumeLayout::KMajor);
    let chunk = ny * nz;
    pool.parallel_chunks_mut(vol.data_mut(), chunk, |start, slice| {
        let i = start / chunk;
        let ifl = i as f32;
        for (s, mat) in rows.iter().enumerate() {
            let q = &transposed[s];
            let qdata = q.data();
            for j in 0..ny {
                let jf = j as f32;
                let x = mat[0][0] * ifl + mat[0][1] * jf + mat[0][3];
                let z = mat[2][0] * ifl + mat[2][1] * jf + mat[2][3];
                let f = 1.0 / z;
                let u = x * f;
                let wdis = f * f;
                let y0 = mat[1][0] * ifl + mat[1][1] * jf + mat[1][3];
                let dy = mat[1][2];
                let col = &mut slice[j * nz..(j + 1) * nz];
                for (k, out) in col.iter_mut().enumerate() {
                    let v = (y0 + dy * k as f32) * f;
                    *out += wdis * ct_core::interp::interp2(qdata, nv, nu, v, u);
                }
            }
        }
    });
    vol
}

/// Double-precision reference back-projection (Algorithm 2 with every
/// coordinate, weight and interpolation in `f64`), for quantifying the
/// floating-point error of the production `f32` kernels.
///
/// The paper runs everything in single precision and argues quality is
/// preserved ("we do not sacrifice the quality by using lower precision",
/// Section 5.2); comparing any `f32` kernel against this reference
/// measures exactly the precision loss that claim is about.
pub fn backproject_standard_f64(
    pool: &Pool,
    mats: &[ProjectionMatrix],
    projs: &ProjectionStack,
    dims: Dims3,
) -> Volume {
    assert_eq!(mats.len(), projs.len(), "one matrix per projection");
    let (nx, ny) = (dims.nx, dims.ny);
    let (nu, nv) = (projs.dims().nu, projs.dims().nv);
    let mut vol = Volume::zeros(dims, VolumeLayout::IMajor);
    let slice_len = nx * ny;
    pool.parallel_chunks_mut(vol.data_mut(), slice_len, |start, slice| {
        let k = (start / slice_len) as f64;
        // f64 accumulators for the whole slice.
        let mut acc = vec![0.0f64; slice.len()];
        for (s, m) in mats.iter().enumerate() {
            let img = projs.get(s);
            let data = img.data();
            let sample = |u: f64, v: f64| -> f64 {
                let (fu, fv) = (u.floor(), v.floor());
                let (du, dv) = (u - fu, v - fv);
                let (pu, pv) = (fu as isize, fv as isize);
                let fetch = |x: isize, y: isize| -> f64 {
                    if x < 0 || y < 0 || x >= nu as isize || y >= nv as isize {
                        0.0
                    } else {
                        data[y as usize * nu + x as usize] as f64
                    }
                };
                let t1 = fetch(pu, pv) * (1.0 - du) + fetch(pu + 1, pv) * du;
                let t2 = fetch(pu, pv + 1) * (1.0 - du) + fetch(pu + 1, pv + 1) * du;
                t1 * (1.0 - dv) + t2 * dv
            };
            let r = &m.mat.rows;
            for j in 0..ny {
                let jf = j as f64;
                for i in 0..nx {
                    let ifl = i as f64;
                    let x = r[0][0] * ifl + r[0][1] * jf + r[0][2] * k + r[0][3];
                    let y = r[1][0] * ifl + r[1][1] * jf + r[1][2] * k + r[1][3];
                    let z = r[2][0] * ifl + r[2][1] * jf + r[2][2] * k + r[2][3];
                    let f = 1.0 / z;
                    acc[j * nx + i] += f * f * sample(x * f, y * f);
                }
            }
        }
        for (out, &a) in slice.iter_mut().zip(acc.iter()) {
            *out = a as f32;
        }
    });
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proposed::backproject_proposed;
    use crate::standard::backproject_standard;
    use ct_core::geometry::CbctGeometry;
    use ct_core::metrics::nrmse;
    use ct_core::problem::Dims2;
    use ct_core::projection::ProjectionImage;

    fn setup(np: usize, n: usize) -> (CbctGeometry, Vec<ProjectionMatrix>, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let mats = geo.projection_matrices();
        let mut stack = ProjectionStack::new(geo.detector);
        for s in 0..np {
            let mut img = ProjectionImage::zeros(geo.detector);
            for v in 0..geo.detector.nv {
                for u in 0..geo.detector.nu {
                    img.set(u, v, (((u * 7 + v * 3 + s * 11) % 13) as f32) - 6.0);
                }
            }
            stack.push(img).unwrap();
        }
        (geo, mats, stack)
    }

    #[test]
    fn ablation_kernels_match_standard() {
        let (geo, mats, stack) = setup(12, 16);
        let pool = Pool::serial();
        let reference = backproject_standard(&pool, &mats, &stack, geo.volume);
        for (name, vol) in [
            (
                "full_recompute",
                backproject_full_recompute(&pool, &mats, &stack, geo.volume),
            ),
            (
                "no_symmetry",
                backproject_no_symmetry(&pool, &mats, &stack, geo.volume),
            ),
            (
                "proposed",
                backproject_proposed(&pool, &mats, &stack, geo.volume),
            ),
        ] {
            let v = vol.into_layout(VolumeLayout::IMajor);
            let e = nrmse(reference.data(), v.data()).unwrap();
            assert!(e < 1e-5, "{name}: NRMSE {e}");
        }
    }

    #[test]
    fn ablation_kernels_are_parallel_deterministic() {
        let (geo, mats, stack) = setup(6, 8);
        for f in [
            backproject_full_recompute
                as fn(&Pool, &[ProjectionMatrix], &ProjectionStack, Dims3) -> Volume,
            backproject_no_symmetry,
        ] {
            let a = f(&Pool::serial(), &mats, &stack, geo.volume);
            let b = f(&Pool::new(4), &mats, &stack, geo.volume);
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn single_precision_error_is_below_paper_bar() {
        // The paper's precision claim (Section 5.2): 32-bit computation
        // does not sacrifice quality. Compare the f32 production kernels
        // against the f64 reference.
        let (geo, mats, stack) = setup(16, 16);
        let pool = Pool::new(2);
        let reference = backproject_standard_f64(&pool, &mats, &stack, geo.volume);
        for (name, vol) in [
            (
                "standard-f32",
                backproject_standard(&pool, &mats, &stack, geo.volume),
            ),
            (
                "proposed-f32",
                backproject_proposed(&pool, &mats, &stack, geo.volume)
                    .into_layout(VolumeLayout::IMajor),
            ),
        ] {
            let e = nrmse(reference.data(), vol.data()).unwrap();
            assert!(e < 1e-5, "{name}: f32-vs-f64 NRMSE {e}");
        }
    }

    #[test]
    fn no_symmetry_handles_odd_nz() {
        // Without the mirror pairing, odd Nz is fine — a capability the
        // symmetric kernel deliberately gives up.
        let geo = CbctGeometry::standard(Dims2::new(24, 24), 4, Dims3::new(8, 8, 7));
        let mats = geo.projection_matrices();
        let stack = ProjectionStack::zeros(geo.detector, 4);
        let v = backproject_no_symmetry(&Pool::serial(), &mats, &stack, geo.volume);
        assert_eq!(v.dims().nz, 7);
    }
}
