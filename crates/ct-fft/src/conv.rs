//! Convolution through the frequency domain (the paper's Section 2.2.3).
//!
//! The ramp filtering of Algorithm 1 convolves each detector row with a
//! fixed 1-D kernel. We provide:
//!
//! * [`convolve_direct`] — the O(N*M) time-domain oracle,
//! * [`convolve_fft`] — full linear convolution via zero-padded FFT,
//! * [`convolve_same_fft`] — the "same-size centre" slice used by the
//!   filtering stage, and a [`RowConvolver`] that amortises the kernel
//!   spectrum and plan across the thousands of rows in a projection stack.

use crate::complex::Complex;
use crate::plan::FftPlan;

/// Direct (time-domain) linear convolution: output length `a + b - 1`.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Linear convolution via zero-padded FFT: output length `a + b - 1`.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let m = out_len.next_power_of_two();
    let plan = FftPlan::new(m);
    let mut fa = vec![Complex::ZERO; m];
    for (i, &x) in a.iter().enumerate() {
        fa[i] = Complex::from_real(x);
    }
    let mut fb = vec![Complex::ZERO; m];
    for (i, &x) in b.iter().enumerate() {
        fb[i] = Complex::from_real(x);
    }
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa.truncate(out_len);
    fa.into_iter().map(|c| c.re).collect()
}

/// "Same" convolution: the centre `a.len()` samples of the linear
/// convolution, aligned so that a symmetric kernel centred at index
/// `b.len()/2` leaves a delta unchanged.
pub fn convolve_same_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    let full = convolve_fft(a, b);
    let offset = b.len() / 2;
    full[offset..offset + a.len()].to_vec()
}

/// A reusable convolver: FFT plan + kernel spectrum computed once, then
/// applied to many equal-length rows. This is the exact usage pattern of
/// the filtering stage (one ramp kernel, `Nv * Np` rows).
#[derive(Debug, Clone)]
pub struct RowConvolver {
    row_len: usize,
    kernel_len: usize,
    plan: FftPlan,
    kernel_spectrum: Vec<Complex>,
}

impl RowConvolver {
    /// Prepare for convolving rows of length `row_len` with `kernel`.
    pub fn new(row_len: usize, kernel: &[f64]) -> Self {
        assert!(row_len > 0, "row length must be nonzero");
        assert!(!kernel.is_empty(), "kernel must be nonempty");
        let m = (row_len + kernel.len() - 1).next_power_of_two();
        let plan = FftPlan::new(m);
        let mut spec = vec![Complex::ZERO; m];
        for (i, &x) in kernel.iter().enumerate() {
            spec[i] = Complex::from_real(x);
        }
        plan.forward(&mut spec);
        Self {
            row_len,
            kernel_len: kernel.len(),
            plan,
            kernel_spectrum: spec,
        }
    }

    /// Length of rows this convolver accepts.
    #[inline]
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// FFT size in use (diagnostics).
    #[inline]
    pub fn fft_len(&self) -> usize {
        self.plan.len()
    }

    /// Convolve one `f32` row in "same" mode, writing the result back into
    /// `row`. `scratch` must have length [`Self::fft_len`]; it is supplied
    /// by the caller so per-row processing allocates nothing.
    pub fn convolve_row_f32(&self, row: &mut [f32], scratch: &mut [Complex]) {
        assert_eq!(row.len(), self.row_len, "row length mismatch");
        assert_eq!(scratch.len(), self.plan.len(), "scratch length mismatch");
        for c in scratch.iter_mut() {
            *c = Complex::ZERO;
        }
        for (i, &x) in row.iter().enumerate() {
            scratch[i] = Complex::from_real(x as f64);
        }
        self.plan.forward(scratch);
        for (x, y) in scratch.iter_mut().zip(self.kernel_spectrum.iter()) {
            *x *= *y;
        }
        self.plan.inverse(scratch);
        let offset = self.kernel_len / 2;
        for (i, r) in row.iter_mut().enumerate() {
            *r = scratch[offset + i].re as f32;
        }
    }

    /// Convolve two rows with ONE complex FFT (the two-for-one trick):
    /// with a real kernel the whole transform chain is C-linear, so
    /// `conv(a + i*b) = conv(a) + i*conv(b)` exactly — the filtering
    /// stage pairs adjacent detector rows to halve its FFT count.
    pub fn convolve_row_pair_f32(
        &self,
        row_a: &mut [f32],
        row_b: &mut [f32],
        scratch: &mut [Complex],
    ) {
        assert_eq!(row_a.len(), self.row_len, "row length mismatch");
        assert_eq!(row_b.len(), self.row_len, "row length mismatch");
        assert_eq!(scratch.len(), self.plan.len(), "scratch length mismatch");
        for c in scratch.iter_mut() {
            *c = Complex::ZERO;
        }
        for (i, (&a, &b)) in row_a.iter().zip(row_b.iter()).enumerate() {
            scratch[i] = Complex::new(a as f64, b as f64);
        }
        self.plan.forward(scratch);
        for (x, y) in scratch.iter_mut().zip(self.kernel_spectrum.iter()) {
            *x *= *y;
        }
        self.plan.inverse(scratch);
        let offset = self.kernel_len / 2;
        for i in 0..self.row_len {
            row_a[i] = scratch[offset + i].re as f32;
            row_b[i] = scratch[offset + i].im as f32;
        }
    }

    /// Allocate a scratch buffer of the right size for
    /// [`Self::convolve_row_f32`].
    pub fn make_scratch(&self) -> Vec<Complex> {
        vec![Complex::ZERO; self.plan.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn direct_known_example() {
        // [1,2,3] * [1,1] = [1,3,5,3]
        let c = convolve_direct(&[1.0, 2.0, 3.0], &[1.0, 1.0]);
        assert_close(&c, &[1.0, 3.0, 5.0, 3.0], 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..57).map(|i| (i as f64 * 0.4).sin()).collect();
        let b: Vec<f64> = (0..13).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_close(&convolve_fft(&a, &b), &convolve_direct(&a, &b), 1e-9);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = vec![1.0, -2.0, 0.5, 3.0];
        let b = vec![0.25, 4.0, -1.0];
        assert_close(&convolve_fft(&a, &b), &convolve_fft(&b, &a), 1e-10);
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn same_mode_identity_kernel() {
        // Odd-length delta kernel centred at len/2 must be the identity.
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut delta = vec![0.0; 7];
        delta[3] = 1.0;
        assert_close(&convolve_same_fft(&a, &delta), &a, 1e-9);
    }

    #[test]
    fn same_mode_shift_kernel() {
        // A delta shifted one right of centre delays the signal by one.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut k = vec![0.0; 5];
        k[3] = 1.0; // centre is index 2
        let c = convolve_same_fft(&a, &k);
        assert_close(&c, &[0.0, 1.0, 2.0, 3.0, 4.0], 1e-9);
    }

    #[test]
    fn row_convolver_matches_same_mode() {
        let kernel: Vec<f64> = (0..9)
            .map(|i| ((i as f64) - 4.0).abs() * -0.1 + 0.5)
            .collect();
        let conv = RowConvolver::new(33, &kernel);
        let row_f64: Vec<f64> = (0..33).map(|i| (i as f64 * 0.77).cos()).collect();
        let want = convolve_same_fft(&row_f64, &kernel);
        let mut row: Vec<f32> = row_f64.iter().map(|&x| x as f32).collect();
        let mut scratch = conv.make_scratch();
        conv.convolve_row_f32(&mut row, &mut scratch);
        for (i, (&got, &w)) in row.iter().zip(want.iter()).enumerate() {
            assert!((got as f64 - w).abs() < 1e-4, "index {i}: {got} vs {w}");
        }
    }

    #[test]
    fn row_convolver_is_reusable() {
        let conv = RowConvolver::new(16, &[0.0, 1.0, 0.0]);
        let mut scratch = conv.make_scratch();
        for trial in 0..3 {
            let mut row: Vec<f32> = (0..16).map(|i| (i * (trial + 1)) as f32).collect();
            let orig = row.clone();
            conv.convolve_row_f32(&mut row, &mut scratch);
            for (a, b) in row.iter().zip(orig.iter()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn row_pair_matches_single_rows() {
        let kernel: Vec<f64> = (0..15).map(|i| ((i as f64) - 7.0) * 0.1).collect();
        let conv = RowConvolver::new(40, &kernel);
        let mut scratch = conv.make_scratch();
        let base_a: Vec<f32> = (0..40).map(|i| (i as f32 * 0.3).sin()).collect();
        let base_b: Vec<f32> = (0..40).map(|i| (i as f32 * 0.9).cos() * 2.0).collect();

        let mut single_a = base_a.clone();
        let mut single_b = base_b.clone();
        conv.convolve_row_f32(&mut single_a, &mut scratch);
        conv.convolve_row_f32(&mut single_b, &mut scratch);

        let mut pair_a = base_a;
        let mut pair_b = base_b;
        conv.convolve_row_pair_f32(&mut pair_a, &mut pair_b, &mut scratch);
        for i in 0..40 {
            assert!((single_a[i] - pair_a[i]).abs() < 1e-4, "a[{i}]");
            assert!((single_b[i] - pair_b[i]).abs() < 1e-4, "b[{i}]");
        }
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn row_pair_rejects_bad_rows() {
        let conv = RowConvolver::new(8, &[1.0]);
        let mut scratch = conv.make_scratch();
        conv.convolve_row_pair_f32(&mut [0.0; 8], &mut [0.0; 4], &mut scratch);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn row_convolver_rejects_bad_row() {
        let conv = RowConvolver::new(8, &[1.0]);
        let mut scratch = conv.make_scratch();
        conv.convolve_row_f32(&mut [0.0; 4], &mut scratch);
    }
}
