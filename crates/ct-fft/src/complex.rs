//! Minimal complex arithmetic for the FFT kernels.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Construct from a real value.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `r * e^{i*theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(r * c, r * s)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a * Complex::ZERO, Complex::ZERO);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(0.5, 1.2);
        let p = a * b;
        let expect = Complex::from_polar(1.0, 1.5);
        assert!((p.re - expect.re).abs() < 1e-12);
        assert!((p.im - expect.im).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norms() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        let prod = a * a.conj();
        assert!((prod.re - 25.0).abs() < 1e-12);
        assert!(prod.im.abs() < 1e-12);
    }

    #[test]
    fn add_mul_assign() {
        let mut a = Complex::new(1.0, 1.0);
        a += Complex::new(0.5, -0.5);
        assert_eq!(a, Complex::new(1.5, 0.5));
        a *= Complex::new(2.0, 0.0);
        assert_eq!(a, Complex::new(3.0, 1.0));
        assert_eq!(a * 2.0, Complex::new(6.0, 2.0));
    }
}
