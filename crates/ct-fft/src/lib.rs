//! # ct-fft — from-scratch FFT and convolution substrate
//!
//! The FDK filtering stage performs one 1-D convolution per detector row
//! (paper Algorithm 1 line 4), and "for large problem sizes, FFT is
//! typically the choice for the convolution computation" (Section 2.2.3).
//! The paper uses Intel IPP on the CPU; this crate is our in-tree
//! replacement:
//!
//! * [`FftPlan`] — iterative radix-2 decimation-in-time FFT with
//!   precomputed twiddle factors and bit-reversal permutation.
//! * [`fft_any`]/[`ifft_any`] — arbitrary-length transforms via
//!   Bluestein's chirp-z algorithm layered on the radix-2 plan.
//! * [`conv`] — linear and circular convolution through the frequency
//!   domain (the Convolution Theorem route of Section 2.2.3), with a
//!   direct time-domain oracle for testing.
//! * [`dft_naive`] — an O(N^2) reference transform used by the test suite.
//!
//! Numerics are `f64` internally; the filtering stage feeds `f32` detector
//! rows in and casts back after the inverse transform, which keeps the
//! pipeline single-precision end-to-end (as the paper's is) while the
//! transform itself adds no measurable rounding noise.
//!
//! ```
//! use ct_fft::{convolve_fft, convolve_direct};
//!
//! let signal = vec![1.0, 2.0, 3.0];
//! let kernel = vec![1.0, 1.0];
//! let fast = convolve_fft(&signal, &kernel);
//! let slow = convolve_direct(&signal, &kernel);
//! for (a, b) in fast.iter().zip(slow.iter()) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;
pub mod conv;
pub mod plan;

pub use complex::Complex;
pub use conv::{convolve_direct, convolve_fft, convolve_same_fft};
pub use plan::{fft_any, ifft_any, FftPlan};

/// Naive O(N^2) discrete Fourier transform — the test oracle.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex::from_polar(1.0, ang);
        }
        *o = acc;
    }
    out
}

/// Naive inverse DFT (unitary pairing with [`dft_naive`]: scales by 1/N).
pub fn idft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let ang = 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex::from_polar(1.0, ang);
        }
        *o = acc * (1.0 / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_dft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = dft_naive(&x);
        for c in y {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn naive_dft_round_trip() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = idft_naive(&dft_naive(&x));
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn naive_dft_of_single_tone() {
        // x[t] = exp(2*pi*i*3t/8) concentrates all energy in bin 3.
        let n = 8;
        let x: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64)
            })
            .collect();
        let y = dft_naive(&x);
        for (k, c) in y.iter().enumerate() {
            let mag = c.abs();
            if k == 3 {
                assert!((mag - n as f64).abs() < 1e-9);
            } else {
                assert!(mag < 1e-9, "bin {k} has magnitude {mag}");
            }
        }
    }
}
