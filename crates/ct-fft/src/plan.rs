//! FFT plans: radix-2 for power-of-two lengths, Bluestein for the rest.

use crate::complex::Complex;

/// A reusable power-of-two FFT plan (precomputed twiddles and bit-reversal
/// permutation), mirroring how IPP/cuFFT amortise setup cost across the
/// thousands of rows the filtering stage transforms.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    // Twiddles for the forward transform, one per butterfly span level,
    // flattened: level with span s contributes s entries.
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Build a plan for length `n`, which must be a power of two.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FftPlan requires a power of two, got {n}"
        );
        // Bit-reversal permutation.
        let bits = n.trailing_zeros();
        let mut bitrev = vec![0u32; n];
        for (i, r) in bitrev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        // Twiddles: for span s in {1, 2, 4, ..., n/2}, store w_s^j = exp(-i*pi*j/s).
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut span = 1;
        while span < n {
            for j in 0..span {
                let ang = -std::f64::consts::PI * j as f64 / span as f64;
                twiddles.push(Complex::from_polar(1.0, ang));
            }
            span *= 2;
        }
        Self {
            n,
            twiddles,
            bitrev,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-0 plan (never constructed; a plan is
    /// always at least length 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT (no normalisation).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut span = 1;
        let mut tw_base = 0;
        while span < n {
            let step = span * 2;
            for start in (0..n).step_by(step) {
                for j in 0..span {
                    let w = self.twiddles[tw_base + j];
                    let a = data[start + j];
                    let b = data[start + j + span] * w;
                    data[start + j] = a + b;
                    data[start + j + span] = a - b;
                }
            }
            tw_base += span;
            span = step;
        }
    }

    /// In-place inverse FFT, scaled by `1/N` so `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Complex]) {
        // IFFT(x) = conj(FFT(conj(x))) / N
        for c in data.iter_mut() {
            *c = c.conj();
        }
        self.forward(data);
        let s = 1.0 / self.n as f64;
        for c in data.iter_mut() {
            *c = c.conj().scale(s);
        }
    }
}

/// Forward FFT of arbitrary length. Power-of-two inputs use the radix-2
/// plan directly; other lengths go through Bluestein's chirp-z transform.
pub fn fft_any(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        FftPlan::new(n).forward(&mut buf);
        return buf;
    }
    bluestein(input, false)
}

/// Inverse FFT of arbitrary length (scaled by `1/N`).
pub fn ifft_any(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        FftPlan::new(n).inverse(&mut buf);
        return buf;
    }
    bluestein(input, true)
}

/// Bluestein's algorithm: express the length-N DFT as a circular
/// convolution of chirp-modulated sequences, evaluated with a
/// power-of-two FFT of length >= 2N-1.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let m = (2 * n - 1).next_power_of_two();
    let sign = if inverse { 1.0 } else { -1.0 };

    // Chirp c[k] = exp(sign * i * pi * k^2 / n). Use k^2 mod 2n to keep the
    // angle argument small and exact.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::from_polar(1.0, sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    let plan = FftPlan::new(m);
    plan.forward(&mut a);
    plan.forward(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
    plan.inverse(&mut a);

    let scale = if inverse { 1.0 / n as f64 } else { 1.0 };
    (0..n).map(|k| (a[k] * chirp[k]).scale(scale)).collect()
}

/// Transform a real signal: convenience wrapper packing into complex.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
    fft_any(&buf)
}

/// Two real transforms for the price of one complex transform: pack
/// `a + i*b`, transform once, and split the spectra with the Hermitian
/// symmetry of real inputs — the classic "two-for-one" trick the
/// filtering stage can use to halve its per-row FFT cost.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn fft_real_pair(a: &[f64], b: &[f64]) -> (Vec<Complex>, Vec<Complex>) {
    assert_eq!(a.len(), b.len(), "paired signals must share a length");
    let n = a.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let packed: Vec<Complex> = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| Complex::new(x, y))
        .collect();
    let z = fft_any(&packed);
    let mut fa = Vec::with_capacity(n);
    let mut fb = Vec::with_capacity(n);
    for k in 0..n {
        let zk = z[k];
        let zmk = z[(n - k) % n].conj();
        // A[k] = (Z[k] + conj(Z[-k])) / 2
        fa.push((zk + zmk).scale(0.5));
        // B[k] = (Z[k] - conj(Z[-k])) / (2i) = -i/2 * (Z[k] - conj(Z[-k]))
        let d = zk - zmk;
        fb.push(Complex::new(d.im * 0.5, -d.re * 0.5));
    }
    (fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dft_naive, idft_naive};

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.7).sin() + 0.2 * i as f64,
                    (i as f64 * 1.3).cos(),
                )
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = signal(n);
            let mut got = x.clone();
            FftPlan::new(n).forward(&mut got);
            let want = dft_naive(&x);
            assert_close(&got, &want, 1e-9);
        }
    }

    #[test]
    fn radix2_round_trip() {
        for n in [2usize, 16, 256, 1024] {
            let x = signal(n);
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            assert_close(&buf, &x, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn radix2_rejects_non_pow2() {
        FftPlan::new(6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn radix2_rejects_wrong_buffer() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for n in [3usize, 5, 6, 7, 12, 100, 129] {
            let x = signal(n);
            let got = fft_any(&x);
            let want = dft_naive(&x);
            assert_close(&got, &want, 1e-8);
        }
    }

    #[test]
    fn bluestein_round_trip() {
        for n in [3usize, 10, 37, 250] {
            let x = signal(n);
            let back = ifft_any(&fft_any(&x));
            assert_close(&back, &x, 1e-8);
        }
    }

    #[test]
    fn ifft_any_matches_naive_idft() {
        for n in [5usize, 8, 27] {
            let x = signal(n);
            let got = ifft_any(&x);
            let want = idft_naive(&x);
            assert_close(&got, &want, 1e-8);
        }
    }

    #[test]
    fn fft_is_linear() {
        let n = 64;
        let a = signal(n);
        let b: Vec<Complex> = signal(n).iter().map(|c| c.conj() * 0.5).collect();
        let sum: Vec<Complex> = a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect();
        let fa = fft_any(&a);
        let fb = fft_any(&b);
        let fsum = fft_any(&sum);
        let fab: Vec<Complex> = fa.iter().zip(fb.iter()).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &fab, 1e-9);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let x = signal(n);
        let y = fft_any(&x);
        let ex: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let ey: f64 = y.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-6 * ex.max(1.0));
    }

    #[test]
    fn empty_input() {
        assert!(fft_any(&[]).is_empty());
        assert!(ifft_any(&[]).is_empty());
    }

    #[test]
    fn fft_real_matches_complex_path() {
        let xs: Vec<f64> = (0..48).map(|i| (i as f64 * 0.31).sin()).collect();
        let a = fft_real(&xs);
        let b = fft_any(
            &xs.iter()
                .map(|&x| Complex::from_real(x))
                .collect::<Vec<_>>(),
        );
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn real_pair_matches_individual_transforms() {
        for n in [1usize, 2, 15, 64] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.9).cos() - 0.3).collect();
            let (fa, fb) = fft_real_pair(&a, &b);
            assert_close(&fa, &fft_real(&a), 1e-8);
            assert_close(&fb, &fft_real(&b), 1e-8);
        }
        let (fa, fb) = fft_real_pair(&[], &[]);
        assert!(fa.is_empty() && fb.is_empty());
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn real_pair_rejects_mismatched() {
        fft_real_pair(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        let xs: Vec<f64> = (0..32).map(|i| (i as f64).cos()).collect();
        let y = fft_real(&xs);
        let n = y.len();
        for k in 1..n {
            let a = y[k];
            let b = y[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }
}
