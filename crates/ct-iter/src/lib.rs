//! # ct-iter — iterative CT reconstruction on the iFDK operators
//!
//! The paper positions its back-projection algorithm as "general and thus
//! can be adopted by iterative reconstruction methods, in which the
//! back-projection is required to be repeated dozens of times, e.g. ART,
//! SART, MLEM, MBIR" (Section 1; again in Section 6.2 for low-dose
//! medical imaging). This crate delivers that adoption: the classic
//! algebraic and statistical solvers built on
//!
//! * a **forward operator** `A` — ray-driven projection of the current
//!   estimate (trilinear sampling along source-to-pixel rays), and
//! * a **back operator** `A^T` (unmatched, as in RTK/ASTRA practice) —
//!   the paper's proposed voxel-driven kernel applied to one projection
//!   or a subset.
//!
//! Solvers: [`sart`] (ordered-subsets algebraic), [`sirt`]
//! (simultaneous), [`art`] (single-ray... projection-at-a-time Kaczmarz
//! variant), and [`mlem`] (multiplicative, for emission-style data).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod operators;
pub mod solvers;

pub use operators::Operators;
pub use solvers::{art, mlem, sart, sirt, IterConfig, IterReport};
