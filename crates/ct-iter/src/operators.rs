//! The forward/back projection operator pair for iterative solvers.

use ct_bp::warp::backproject_warp_with;
use ct_core::error::{CtError, Result};
use ct_core::forward::project_ray_marching;
use ct_core::geometry::{CbctGeometry, ProjectionMatrix};
use ct_core::projection::{ProjectionImage, ProjectionStack, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_par::Pool;

/// A matched pair of operators over one geometry.
pub struct Operators {
    geo: CbctGeometry,
    mats: Vec<ProjectionMatrix>,
    pool: Pool,
    /// Ray-marching step as a fraction of the voxel pitch.
    step_frac: f64,
}

impl Operators {
    /// Build operators for a geometry.
    pub fn new(geo: CbctGeometry, pool: Pool, step_frac: f64) -> Result<Self> {
        geo.validate()?;
        if !(step_frac > 0.0 && step_frac <= 1.0) {
            return Err(CtError::InvalidConfig(format!(
                "step_frac = {step_frac} must be in (0, 1]"
            )));
        }
        let mats = geo.projection_matrices();
        Ok(Self {
            geo,
            mats,
            pool,
            step_frac,
        })
    }

    /// The geometry in use.
    pub fn geometry(&self) -> &CbctGeometry {
        &self.geo
    }

    /// Forward-project the volume at projection index `pi` (`A_i x`).
    pub fn forward_one(&self, vol: &Volume, pi: usize) -> ProjectionImage {
        project_ray_marching(&self.geo, vol, pi, self.step_frac)
    }

    /// Forward-project a subset of projection indices in parallel.
    pub fn forward_subset(&self, vol: &Volume, indices: &[usize]) -> Vec<ProjectionImage> {
        self.pool
            .parallel_map(indices.len(), 1, |t| {
                Some(self.forward_one(vol, indices[t]))
            })
            .into_iter()
            .map(|img| img.expect("each index projected"))
            .collect()
    }

    /// Back-project images at the given projection indices (`A_S^T r`),
    /// returning an i-major volume. Uses the paper's proposed batched
    /// kernel — the exact reuse the paper advertises for iterative
    /// methods.
    pub fn back_subset(&self, images: &[ProjectionImage], indices: &[usize]) -> Result<Volume> {
        if images.len() != indices.len() {
            return Err(CtError::ShapeMismatch {
                expected: format!("{} images", indices.len()),
                actual: format!("{}", images.len()),
            });
        }
        let sub_mats: Vec<ProjectionMatrix> = indices.iter().map(|&i| self.mats[i]).collect();
        let samplers: Vec<TransposedProjection> =
            images.iter().map(|img| img.transposed()).collect();
        let vol = backproject_warp_with(
            &self.pool,
            &sub_mats,
            &samplers,
            self.geo.detector.nv,
            self.geo.volume,
            32,
        );
        Ok(vol.into_layout(VolumeLayout::IMajor))
    }

    /// Per-voxel normalisation for a subset: `A_S^T 1` (back-projection of
    /// all-ones images), clamped away from zero.
    pub fn voxel_weights(&self, indices: &[usize]) -> Result<Volume> {
        let mut ones = ProjectionImage::zeros(self.geo.detector);
        ones.data_mut().iter_mut().for_each(|p| *p = 1.0);
        let images = vec![ones; indices.len()];
        let mut w = self.back_subset(&images, indices)?;
        let eps = 1e-6f32;
        for v in w.data_mut() {
            if *v < eps {
                *v = eps;
            }
        }
        Ok(w)
    }

    /// Per-ray normalisation: `A 1` (forward projection of an all-ones
    /// volume = intersection length of each ray with the volume), clamped
    /// away from zero.
    pub fn ray_norms(&self, indices: &[usize]) -> Vec<ProjectionImage> {
        let ones = {
            let mut v = Volume::zeros(self.geo.volume, VolumeLayout::IMajor);
            v.data_mut().iter_mut().for_each(|x| *x = 1.0);
            v
        };
        let mut norms = self.forward_subset(&ones, indices);
        for img in &mut norms {
            for p in img.data_mut() {
                if *p < 1e-3 {
                    *p = f32::INFINITY; // rays missing the volume get zero update
                }
            }
        }
        norms
    }

    /// Measured-vs-estimate residual norm `||p - A x||_2 / ||p||_2` over
    /// all projections (solver progress metric).
    pub fn residual_norm(&self, vol: &Volume, measured: &ProjectionStack) -> f64 {
        let indices: Vec<usize> = (0..measured.len()).collect();
        let fwd = self.forward_subset(vol, &indices);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (est, meas) in fwd.iter().zip(measured.iter()) {
            for (&a, &b) in est.data().iter().zip(meas.data().iter()) {
                let d = (b - a) as f64;
                num += d * d;
                den += (b as f64) * (b as f64);
            }
        }
        (num / den.max(1e-300)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::phantom::Phantom;
    use ct_core::problem::{Dims2, Dims3};

    fn ops(n: usize, np: usize) -> Operators {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        Operators::new(geo, Pool::new(2), 0.5).unwrap()
    }

    #[test]
    fn construction_validates() {
        let geo = CbctGeometry::standard(Dims2::new(16, 16), 4, Dims3::cube(8));
        assert!(Operators::new(geo.clone(), Pool::serial(), 0.0).is_err());
        assert!(Operators::new(geo.clone(), Pool::serial(), 2.0).is_err());
        assert!(Operators::new(geo, Pool::serial(), 0.5).is_ok());
    }

    #[test]
    fn forward_of_zero_volume_is_zero() {
        let o = ops(8, 4);
        let vol = Volume::zeros(o.geometry().volume, VolumeLayout::IMajor);
        let img = o.forward_one(&vol, 0);
        assert!(img.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn forward_subset_matches_one_by_one() {
        let o = ops(8, 6);
        let ph = Phantom::uniform_sphere(2.5);
        let vol = ph.voxelize(o.geometry().volume, VolumeLayout::IMajor, |i, j, k| {
            o.geometry().voxel_position(i, j, k)
        });
        let subset = [1usize, 3, 5];
        let batch = o.forward_subset(&vol, &subset);
        for (t, &pi) in subset.iter().enumerate() {
            assert_eq!(batch[t], o.forward_one(&vol, pi));
        }
    }

    #[test]
    fn voxel_weights_positive_inside_fov() {
        let o = ops(8, 8);
        let w = o.voxel_weights(&[0, 2, 4, 6]).unwrap();
        // Central voxel is seen by every projection.
        assert!(w.get(4, 4, 4) > 1e-6);
        // Everything clamped positive.
        assert!(w.data().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn ray_norms_are_chord_lengths() {
        let o = ops(16, 4);
        let norms = o.ray_norms(&[0]);
        let geo = o.geometry();
        // The central ray crosses the full volume: roughly the volume side
        // (modulo the cube diagonal at this angle).
        let c = norms[0].get(geo.detector.nu / 2, geo.detector.nv / 2);
        assert!(c > geo.volume.nx as f32 * 0.8, "central chord {c}");
        // Corner rays miss: marked infinite.
        assert!(norms[0].get(0, 0).is_infinite());
    }

    #[test]
    fn back_subset_checks_lengths() {
        let o = ops(8, 4);
        let img = ProjectionImage::zeros(o.geometry().detector);
        assert!(o.back_subset(&[img], &[0, 1]).is_err());
    }

    #[test]
    fn residual_norm_zero_for_perfect_data() {
        let o = ops(8, 4);
        let ph = Phantom::uniform_sphere(2.5);
        let vol = ph.voxelize(o.geometry().volume, VolumeLayout::IMajor, |i, j, k| {
            o.geometry().voxel_position(i, j, k)
        });
        let indices: Vec<usize> = (0..4).collect();
        let fwd = o.forward_subset(&vol, &indices);
        let stack = ProjectionStack::from_images(o.geometry().detector, fwd).unwrap();
        let r = o.residual_norm(&vol, &stack);
        assert!(r < 1e-6, "{r}");
    }
}
