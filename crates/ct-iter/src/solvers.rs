//! The iterative solvers: SART, SIRT, ART (projection-at-a-time Kaczmarz)
//! and MLEM.
//!
//! All algebraic solvers share one update skeleton — per subset `S`:
//!
//! ```text
//! r   = (p_S - A_S x) / (A_S 1)      (ray-normalised residual)
//! x  += lambda * (A_S^T r) / (A_S^T 1)
//! ```
//!
//! with `S` = all projections (SIRT), ordered subsets (SART) or single
//! projections (ART). MLEM is the multiplicative expectation-maximisation
//! update `x *= A^T(p / A x) / A^T 1` for nonnegative (emission-style)
//! data.

use crate::operators::Operators;
use ct_core::error::{CtError, Result};
use ct_core::projection::{ProjectionImage, ProjectionStack};
use ct_core::volume::{Volume, VolumeLayout};

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct IterConfig {
    /// Full passes over the data.
    pub iterations: usize,
    /// Relaxation factor `lambda` (algebraic solvers).
    pub relaxation: f32,
    /// Number of ordered subsets (SART); ignored by the other drivers.
    pub subsets: usize,
    /// Clamp negative voxels after each update.
    pub nonnegativity: bool,
}

impl Default for IterConfig {
    fn default() -> Self {
        Self {
            iterations: 5,
            relaxation: 0.7,
            subsets: 8,
            nonnegativity: true,
        }
    }
}

/// Convergence record.
#[derive(Debug, Clone, Default)]
pub struct IterReport {
    /// Relative residual `||p - Ax|| / ||p||` after each iteration
    /// (index 0 = after the first full pass).
    pub residuals: Vec<f64>,
}

fn check(ops: &Operators, measured: &ProjectionStack, cfg: &IterConfig) -> Result<()> {
    let geo = ops.geometry();
    if measured.len() != geo.num_projections {
        return Err(CtError::ShapeMismatch {
            expected: format!("{} projections", geo.num_projections),
            actual: format!("{}", measured.len()),
        });
    }
    if measured.dims() != geo.detector {
        return Err(CtError::ShapeMismatch {
            expected: format!("{}x{}", geo.detector.nu, geo.detector.nv),
            actual: format!("{}x{}", measured.dims().nu, measured.dims().nv),
        });
    }
    if cfg.iterations == 0 {
        return Err(CtError::InvalidConfig("need at least one iteration".into()));
    }
    if !(cfg.relaxation > 0.0 && cfg.relaxation <= 2.0) {
        return Err(CtError::InvalidConfig(format!(
            "relaxation {} outside (0, 2]",
            cfg.relaxation
        )));
    }
    Ok(())
}

/// Ordered-subset partition: subset `s` takes indices `s, s+m, s+2m, ...`
/// (angularly interleaved, the standard SART access order).
fn subset_indices(np: usize, subsets: usize) -> Vec<Vec<usize>> {
    let m = subsets.clamp(1, np);
    (0..m).map(|s| (s..np).step_by(m).collect()).collect()
}

fn algebraic_pass(
    ops: &Operators,
    measured: &ProjectionStack,
    x: &mut Volume,
    subsets: &[Vec<usize>],
    norms: &[Vec<ProjectionImage>],
    weights: &[Volume],
    cfg: &IterConfig,
) -> Result<()> {
    for (si, subset) in subsets.iter().enumerate() {
        let fwd = ops.forward_subset(x, subset);
        // Ray-normalised residual images.
        let mut residuals = Vec::with_capacity(subset.len());
        for (t, &pi) in subset.iter().enumerate() {
            let mut r = ProjectionImage::zeros(measured.dims());
            let meas = measured.get(pi).data();
            let est = fwd[t].data();
            let norm = norms[si][t].data();
            for (((out, &m), &e), &n) in r.data_mut().iter_mut().zip(meas).zip(est).zip(norm) {
                *out = (m - e) / n; // n = inf outside the FOV -> 0 update
            }
            residuals.push(r);
        }
        let correction = ops.back_subset(&residuals, subset)?;
        let w = &weights[si];
        let lambda = cfg.relaxation;
        for ((xv, &c), &wv) in x.data_mut().iter_mut().zip(correction.data()).zip(w.data()) {
            *xv += lambda * c / wv;
            if cfg.nonnegativity && *xv < 0.0 {
                *xv = 0.0;
            }
        }
    }
    Ok(())
}

fn algebraic_driver(
    ops: &Operators,
    measured: &ProjectionStack,
    cfg: &IterConfig,
    n_subsets: usize,
) -> Result<(Volume, IterReport)> {
    check(ops, measured, cfg)?;
    let np = measured.len();
    let subsets = subset_indices(np, n_subsets);
    // Precompute per-subset normalisations (the expensive invariants).
    let norms: Vec<Vec<ProjectionImage>> = subsets.iter().map(|s| ops.ray_norms(s)).collect();
    let weights: Vec<Volume> = subsets
        .iter()
        .map(|s| ops.voxel_weights(s))
        .collect::<Result<_>>()?;

    let mut x = Volume::zeros(ops.geometry().volume, VolumeLayout::IMajor);
    let mut report = IterReport::default();
    for _ in 0..cfg.iterations {
        algebraic_pass(ops, measured, &mut x, &subsets, &norms, &weights, cfg)?;
        report.residuals.push(ops.residual_norm(&x, measured));
    }
    Ok((x, report))
}

/// SART: ordered-subset algebraic reconstruction (`cfg.subsets` subsets).
pub fn sart(
    ops: &Operators,
    measured: &ProjectionStack,
    cfg: &IterConfig,
) -> Result<(Volume, IterReport)> {
    algebraic_driver(ops, measured, cfg, cfg.subsets)
}

/// SIRT: simultaneous update from all projections per pass.
pub fn sirt(
    ops: &Operators,
    measured: &ProjectionStack,
    cfg: &IterConfig,
) -> Result<(Volume, IterReport)> {
    algebraic_driver(ops, measured, cfg, 1)
}

/// ART (Kaczmarz-style): one projection per update.
pub fn art(
    ops: &Operators,
    measured: &ProjectionStack,
    cfg: &IterConfig,
) -> Result<(Volume, IterReport)> {
    algebraic_driver(ops, measured, cfg, measured.len())
}

/// MLEM: multiplicative EM for nonnegative data.
///
/// Requires `measured` to be elementwise nonnegative; the estimate stays
/// nonnegative by construction.
pub fn mlem(
    ops: &Operators,
    measured: &ProjectionStack,
    cfg: &IterConfig,
) -> Result<(Volume, IterReport)> {
    check(ops, measured, cfg)?;
    if measured
        .iter()
        .any(|img| img.data().iter().any(|&p| p < 0.0))
    {
        return Err(CtError::InvalidConfig(
            "MLEM requires nonnegative measurements".into(),
        ));
    }
    let np = measured.len();
    let all: Vec<usize> = (0..np).collect();
    let sens = ops.voxel_weights(&all)?; // A^T 1

    // Start from a uniform positive estimate.
    let mut x = Volume::zeros(ops.geometry().volume, VolumeLayout::IMajor);
    x.data_mut().iter_mut().for_each(|v| *v = 1.0);

    let mut report = IterReport::default();
    for _ in 0..cfg.iterations {
        let fwd = ops.forward_subset(&x, &all);
        // ratio_i = p_i / max(A x, eps)
        let ratios: Vec<ProjectionImage> = fwd
            .iter()
            .zip(measured.iter())
            .map(|(est, meas)| {
                let mut r = ProjectionImage::zeros(measured.dims());
                for ((out, &e), &m) in r.data_mut().iter_mut().zip(est.data()).zip(meas.data()) {
                    *out = m / e.max(1e-6);
                }
                r
            })
            .collect();
        let bp = ops.back_subset(&ratios, &all)?;
        for ((xv, &b), &s) in x.data_mut().iter_mut().zip(bp.data()).zip(sens.data()) {
            *xv *= b / s;
        }
        report.residuals.push(ops.residual_norm(&x, measured));
    }
    Ok((x, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::forward::project_all_analytic;
    use ct_core::phantom::Phantom;
    use ct_core::problem::{Dims2, Dims3};
    use ct_core::CbctGeometry;
    use ct_par::Pool;

    fn setup(n: usize, np: usize) -> (Operators, Phantom, ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let phantom = Phantom::uniform_sphere(0.3 * n as f64);
        let stack = project_all_analytic(&geo, &phantom);
        let ops = Operators::new(geo, Pool::auto(), 0.5).unwrap();
        (ops, phantom, stack)
    }

    #[test]
    fn subset_partition_covers_everything() {
        for (np, m) in [(12usize, 4usize), (7, 3), (5, 8), (6, 1)] {
            let subsets = subset_indices(np, m);
            let mut seen = vec![false; np];
            for s in &subsets {
                for &i in s {
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn sart_residual_decreases() {
        let (ops, _, stack) = setup(12, 18);
        let cfg = IterConfig {
            iterations: 4,
            subsets: 6,
            ..IterConfig::default()
        };
        let (_, report) = sart(&ops, &stack, &cfg).unwrap();
        assert_eq!(report.residuals.len(), 4);
        for w in report.residuals.windows(2) {
            assert!(
                w[1] <= w[0] * 1.02,
                "residuals not decreasing: {:?}",
                report.residuals
            );
        }
        assert!(
            *report.residuals.last().unwrap() < 0.35,
            "final residual {:?}",
            report.residuals
        );
    }

    #[test]
    fn sart_recovers_sphere_density() {
        let (ops, phantom, stack) = setup(12, 24);
        let cfg = IterConfig {
            iterations: 6,
            subsets: 8,
            ..IterConfig::default()
        };
        let (x, _) = sart(&ops, &stack, &cfg).unwrap();
        let geo = ops.geometry();
        let c = geo.volume.nx / 2;
        let center = x.get(c, c, c);
        assert!((center - 1.0).abs() < 0.3, "centre {center}");
        // Outside the sphere: low.
        let truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
            geo.voxel_position(i, j, k)
        });
        let corner = x.get(1, 1, c);
        assert!(corner.abs() < 0.3, "corner {corner}");
        let e = ct_core::metrics::nrmse(truth.data(), x.data()).unwrap();
        assert!(e < 0.35, "nrmse {e}");
    }

    #[test]
    fn sirt_converges_more_slowly_than_sart() {
        let (ops, _, stack) = setup(10, 16);
        let cfg = IterConfig {
            iterations: 3,
            subsets: 8,
            ..IterConfig::default()
        };
        let (_, sart_rep) = sart(&ops, &stack, &cfg).unwrap();
        let (_, sirt_rep) = sirt(&ops, &stack, &cfg).unwrap();
        assert!(
            sart_rep.residuals.last().unwrap() <= sirt_rep.residuals.last().unwrap(),
            "SART {:?} vs SIRT {:?}",
            sart_rep.residuals,
            sirt_rep.residuals
        );
    }

    #[test]
    fn art_runs_and_converges() {
        let (ops, _, stack) = setup(8, 12);
        let cfg = IterConfig {
            iterations: 2,
            relaxation: 0.5,
            ..IterConfig::default()
        };
        let (_, rep) = art(&ops, &stack, &cfg).unwrap();
        assert!(rep.residuals[1] <= rep.residuals[0] * 1.02);
    }

    #[test]
    fn mlem_stays_nonnegative_and_converges() {
        let (ops, _, stack) = setup(10, 16);
        let cfg = IterConfig {
            iterations: 5,
            ..IterConfig::default()
        };
        let (x, rep) = mlem(&ops, &stack, &cfg).unwrap();
        assert!(x.data().iter().all(|&v| v >= 0.0));
        assert!(rep.residuals.last().unwrap() < &rep.residuals[0]);
    }

    #[test]
    fn mlem_rejects_negative_data() {
        let (ops, _, mut stack) = setup(8, 12);
        stack.get_mut(0).set(0, 0, -1.0);
        assert!(mlem(&ops, &stack, &IterConfig::default()).is_err());
    }

    #[test]
    fn config_validation() {
        let (ops, _, stack) = setup(8, 12);
        let bad = IterConfig {
            iterations: 0,
            ..IterConfig::default()
        };
        assert!(sart(&ops, &stack, &bad).is_err());
        let bad = IterConfig {
            relaxation: 0.0,
            ..IterConfig::default()
        };
        assert!(sart(&ops, &stack, &bad).is_err());
        let wrong = ProjectionStack::zeros(Dims2::new(4, 4), 12);
        assert!(sart(&ops, &wrong, &IterConfig::default()).is_err());
    }

    #[test]
    fn sparse_view_sart_beats_fdk() {
        // The iterative-methods motivation: with very few projections,
        // SART reconstructs better than filtered back-projection.
        let n = 12;
        let np = 10; // severely undersampled
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let phantom = Phantom::uniform_sphere(0.3 * n as f64);
        let stack = project_all_analytic(&geo, &phantom);
        let truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
            geo.voxel_position(i, j, k)
        });

        let ops = Operators::new(geo.clone(), Pool::auto(), 0.5).unwrap();
        let cfg = IterConfig {
            iterations: 8,
            subsets: 5,
            ..IterConfig::default()
        };
        let (x, _) = sart(&ops, &stack, &cfg).unwrap();
        let e_sart = ct_core::metrics::nrmse(truth.data(), x.data()).unwrap();

        let fdk = ifdk_free_reconstruct(&geo, &stack);
        let e_fdk = ct_core::metrics::nrmse(truth.data(), fdk.data()).unwrap();
        assert!(
            e_sart < e_fdk,
            "SART nrmse {e_sart} should beat FDK {e_fdk} at {np} views"
        );
    }

    /// Minimal FDK without depending on the ifdk crate (avoids a cycle):
    /// filter + standard back-projection + global scale.
    fn ifdk_free_reconstruct(geo: &CbctGeometry, stack: &ProjectionStack) -> Volume {
        use ct_filter::{FilterConfig, Filterer};
        let pool = Pool::auto();
        let filterer = Filterer::new(geo, FilterConfig::default());
        let filtered = filterer.filter_stack(&pool, stack);
        let mats = geo.projection_matrices();
        let mut vol = ct_bp::backproject_standard(&pool, &mats, &filtered, geo.volume);
        vol.scale(ct_bp::fdk_scale(geo));
        vol
    }
}
