//! # ct-pfs — striped parallel-file-system substrate
//!
//! iFDK's end-to-end time includes loading projections from, and storing
//! the volume to, a GPFS parallel file system (paper Sections 4.1.3 and
//! 5.3: "the volume of size Nx x Ny x Nz is stored as slices of number
//! Nz"; slice size should be tuned "to optimize for the throughput of
//! storing to the PFS (i.e. tune slice size to optimize for file
//! striping)"). This crate reproduces that I/O layer without a cluster
//! file system:
//!
//! * objects are striped round-robin across `n_osts` object storage
//!   targets in `stripe_size` chunks, exactly like Lustre/GPFS striping;
//! * per-OST byte counters expose the stripe balance, and
//!   [`PfsStore::modeled_seconds`] converts a transfer into the time the
//!   paper's bandwidth constants predict (`T_load`/`T_store`, Eqs. 8/16);
//! * two backends: in-memory (tests, benchmarks) and on-disk (examples
//!   that want real files).
//!
//! Concurrent access from many ranks is safe; each object is written
//! atomically under a store-wide lock (the lock covers metadata only —
//! payload copies happen outside it where possible).
//!
//! ```
//! use ct_pfs::PfsStore;
//!
//! let pfs = PfsStore::memory();
//! pfs.write_f32(&PfsStore::projection_name(0), &[1.0, 2.0]).unwrap();
//! assert_eq!(pfs.read_f32("proj_000000.f32").unwrap(), vec![1.0, 2.0]);
//! assert_eq!(pfs.stats().bytes_written, 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ct_sync::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Errors from the PFS substrate.
#[derive(Debug)]
pub enum PfsError {
    /// The named object does not exist.
    NotFound(String),
    /// Underlying disk I/O failed.
    Io(std::io::Error),
    /// The store was configured inconsistently.
    InvalidConfig(String),
    /// Fault injection tripped (see [`PfsConfig::fail_after_bytes`]).
    InjectedFailure(String),
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound(n) => write!(f, "object not found: {n}"),
            PfsError::Io(e) => write!(f, "pfs io error: {e}"),
            PfsError::InvalidConfig(m) => write!(f, "pfs config error: {m}"),
            PfsError::InjectedFailure(m) => write!(f, "pfs injected failure: {m}"),
        }
    }
}

impl std::error::Error for PfsError {}

impl From<std::io::Error> for PfsError {
    fn from(e: std::io::Error) -> Self {
        PfsError::Io(e)
    }
}

/// Result alias for PFS operations.
pub type Result<T> = std::result::Result<T, PfsError>;

/// Storage backend selection.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Objects held in memory (fast; used by tests and benchmarks).
    Memory,
    /// Objects stored as files under a directory.
    Disk(PathBuf),
}

/// Store configuration: striping geometry and modeled bandwidths.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Number of object storage targets data is striped over.
    pub n_osts: usize,
    /// Stripe chunk size in bytes.
    pub stripe_size: usize,
    /// Aggregate read bandwidth for the time model (bytes/s). The paper
    /// measures GPFS on ABCI with IOR (Section 4.2.1).
    pub read_bw: f64,
    /// Aggregate write bandwidth for the time model (bytes/s); 28.5 GB/s
    /// sequential write in the paper's testbed (Section 5.3.3).
    pub write_bw: f64,
    /// Fault injection: error any write once this many total bytes have
    /// been written (`None` disables).
    pub fail_after_bytes: Option<u64>,
}

impl Default for PfsConfig {
    fn default() -> Self {
        Self {
            n_osts: 8,
            stripe_size: 1 << 20, // 1 MiB, a typical Lustre/GPFS default
            read_bw: 28.5e9,
            write_bw: 28.5e9,
            fail_after_bytes: None,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    bytes_written: u64,
    bytes_read: u64,
    objects_written: u64,
    objects_read: u64,
    per_ost_bytes: Vec<u64>,
}

/// A point-in-time snapshot of I/O statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Objects (files/slices) written.
    pub objects_written: u64,
    /// Objects read.
    pub objects_read: u64,
    /// Bytes landed on each OST (stripe balance).
    pub per_ost_bytes: Vec<u64>,
}

/// The striped object store.
#[derive(Debug, Clone)]
pub struct PfsStore {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    config: PfsConfig,
    backend: Backend,
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
    counters: Mutex<Counters>,
}

impl PfsStore {
    /// Create a store.
    pub fn new(backend: Backend, config: PfsConfig) -> Result<Self> {
        if config.n_osts == 0 {
            return Err(PfsError::InvalidConfig("n_osts must be >= 1".into()));
        }
        if config.stripe_size == 0 {
            return Err(PfsError::InvalidConfig("stripe_size must be >= 1".into()));
        }
        if let Backend::Disk(dir) = &backend {
            std::fs::create_dir_all(dir)?;
        }
        Ok(Self {
            inner: Arc::new(Inner {
                counters: Mutex::new(Counters {
                    per_ost_bytes: vec![0; config.n_osts],
                    ..Counters::default()
                }),
                config,
                backend,
                objects: Mutex::new(BTreeMap::new()),
            }),
        })
    }

    /// In-memory store with default striping.
    pub fn memory() -> Self {
        Self::new(Backend::Memory, PfsConfig::default()).expect("default config is valid")
    }

    /// The configuration in force.
    pub fn config(&self) -> &PfsConfig {
        &self.inner.config
    }

    fn account_write(&self, len: usize) -> Result<()> {
        let mut c = self.inner.counters.lock();
        if let Some(limit) = self.inner.config.fail_after_bytes {
            if c.bytes_written + len as u64 > limit {
                return Err(PfsError::InjectedFailure(format!(
                    "write budget {limit} B exhausted"
                )));
            }
        }
        // Round-robin striping over OSTs, continuing from the global
        // stripe cursor implied by total bytes written.
        let stripe = self.inner.config.stripe_size as u64;
        let n = self.inner.config.n_osts as u64;
        let mut offset = c.bytes_written;
        let end = offset + len as u64;
        while offset < end {
            let stripe_idx = offset / stripe;
            let ost = (stripe_idx % n) as usize;
            let stripe_end = (stripe_idx + 1) * stripe;
            let take = stripe_end.min(end) - offset;
            c.per_ost_bytes[ost] += take;
            offset += take;
        }
        c.bytes_written = end;
        c.objects_written += 1;
        Ok(())
    }

    /// Write a named object (raw bytes).
    ///
    /// When the calling thread has an ambient [`ct_obs`] track installed
    /// (see `ct_obs::current`), the transfer is recorded as a `pfs.write`
    /// span tagged with the payload size; otherwise recording is a no-op.
    pub fn write_bytes(&self, name: &str, data: &[u8]) -> Result<()> {
        let mut span = ct_obs::current::span("pfs.write");
        span.set_bytes(data.len() as u64);
        self.account_write(data.len())?;
        match &self.inner.backend {
            Backend::Memory => {
                self.inner
                    .objects
                    .lock()
                    .insert(name.to_string(), data.to_vec());
            }
            Backend::Disk(dir) => {
                let path = dir.join(sanitize(name));
                let mut f = std::fs::File::create(path)?;
                f.write_all(data)?;
            }
        }
        Ok(())
    }

    /// Read a named object (raw bytes).
    ///
    /// Recorded as a `pfs.read` span on the calling thread's ambient
    /// [`ct_obs`] track, when one is installed.
    pub fn read_bytes(&self, name: &str) -> Result<Vec<u8>> {
        let mut span = ct_obs::current::span("pfs.read");
        let data = match &self.inner.backend {
            Backend::Memory => self
                .inner
                .objects
                .lock()
                .get(name)
                .cloned()
                .ok_or_else(|| PfsError::NotFound(name.to_string()))?,
            Backend::Disk(dir) => {
                let path = dir.join(sanitize(name));
                let mut f =
                    std::fs::File::open(&path).map_err(|_| PfsError::NotFound(name.to_string()))?;
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                buf
            }
        };
        let mut c = self.inner.counters.lock();
        c.bytes_read += data.len() as u64;
        c.objects_read += 1;
        drop(c);
        span.set_bytes(data.len() as u64);
        Ok(data)
    }

    /// Write an `f32` buffer (little-endian), the element type of every
    /// projection and volume slice in the pipeline.
    pub fn write_f32(&self, name: &str, data: &[f32]) -> Result<()> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for &x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.write_bytes(name, &bytes)
    }

    /// Read an `f32` buffer written by [`Self::write_f32`].
    pub fn read_f32(&self, name: &str) -> Result<Vec<f32>> {
        let bytes = self.read_bytes(name)?;
        if bytes.len() % 4 != 0 {
            return Err(PfsError::InvalidConfig(format!(
                "object {name} has {} bytes, not a multiple of 4",
                bytes.len()
            )));
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// True if the object exists.
    pub fn exists(&self, name: &str) -> bool {
        match &self.inner.backend {
            Backend::Memory => self.inner.objects.lock().contains_key(name),
            Backend::Disk(dir) => dir.join(sanitize(name)).exists(),
        }
    }

    /// Names of all stored objects (memory backend) or files (disk).
    pub fn list(&self) -> Vec<String> {
        match &self.inner.backend {
            Backend::Memory => self.inner.objects.lock().keys().cloned().collect(),
            Backend::Disk(dir) => {
                let mut out: Vec<String> = std::fs::read_dir(dir)
                    .map(|rd| {
                        rd.filter_map(|e| e.ok())
                            .filter_map(|e| e.file_name().into_string().ok())
                            .collect()
                    })
                    .unwrap_or_default();
                out.sort();
                out
            }
        }
    }

    /// I/O statistics snapshot.
    pub fn stats(&self) -> IoStats {
        let c = self.inner.counters.lock();
        IoStats {
            bytes_written: c.bytes_written,
            bytes_read: c.bytes_read,
            objects_written: c.objects_written,
            objects_read: c.objects_read,
            per_ost_bytes: c.per_ost_bytes.clone(),
        }
    }

    /// Time the paper's bandwidth model assigns to the traffic recorded so
    /// far: `(bytes_read / read_bw, bytes_written / write_bw)` seconds.
    pub fn modeled_seconds(&self) -> (f64, f64) {
        let s = self.stats();
        (
            s.bytes_read as f64 / self.inner.config.read_bw,
            s.bytes_written as f64 / self.inner.config.write_bw,
        )
    }

    /// Canonical object name for projection `i`.
    pub fn projection_name(i: usize) -> String {
        format!("proj_{i:06}.f32")
    }

    /// Canonical object name for volume slice `k`.
    pub fn slice_name(k: usize) -> String {
        format!("slice_{k:06}.f32")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip() {
        let s = PfsStore::memory();
        s.write_f32("a", &[1.0, -2.5, 3.25]).unwrap();
        assert_eq!(s.read_f32("a").unwrap(), vec![1.0, -2.5, 3.25]);
        assert!(s.exists("a"));
        assert!(!s.exists("b"));
        assert!(matches!(s.read_f32("b"), Err(PfsError::NotFound(_))));
        assert_eq!(s.list(), vec!["a".to_string()]);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ct_pfs_test_{}", std::process::id()));
        let s = PfsStore::new(Backend::Disk(dir.clone()), PfsConfig::default()).unwrap();
        s.write_f32("vol/slice 1", &[9.0; 7]).unwrap();
        assert_eq!(s.read_f32("vol/slice 1").unwrap(), vec![9.0; 7]);
        assert!(s.exists("vol/slice 1"));
        assert_eq!(s.list().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stats_track_traffic() {
        let s = PfsStore::memory();
        s.write_f32("x", &[0.0; 100]).unwrap();
        s.read_f32("x").unwrap();
        s.read_f32("x").unwrap();
        let st = s.stats();
        assert_eq!(st.bytes_written, 400);
        assert_eq!(st.bytes_read, 800);
        assert_eq!(st.objects_written, 1);
        assert_eq!(st.objects_read, 2);
    }

    #[test]
    fn striping_balances_across_osts() {
        let cfg = PfsConfig {
            n_osts: 4,
            stripe_size: 10,
            ..PfsConfig::default()
        };
        let s = PfsStore::new(Backend::Memory, cfg).unwrap();
        // 80 bytes = 8 stripes of 10 -> 2 per OST.
        s.write_bytes("x", &[0u8; 80]).unwrap();
        assert_eq!(s.stats().per_ost_bytes, vec![20, 20, 20, 20]);
        // 15 more bytes continue the cursor: stripe 8 (ost 0) gets 10,
        // stripe 9 (ost 1) gets 5.
        s.write_bytes("y", &[0u8; 15]).unwrap();
        assert_eq!(s.stats().per_ost_bytes, vec![30, 25, 20, 20]);
    }

    #[test]
    fn modeled_seconds_use_configured_bandwidth() {
        let cfg = PfsConfig {
            read_bw: 100.0,
            write_bw: 50.0,
            ..PfsConfig::default()
        };
        let s = PfsStore::new(Backend::Memory, cfg).unwrap();
        s.write_bytes("x", &[0u8; 500]).unwrap();
        s.read_bytes("x").unwrap();
        let (r, w) = s.modeled_seconds();
        assert!((w - 10.0).abs() < 1e-12);
        assert!((r - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fault_injection_trips() {
        let cfg = PfsConfig {
            fail_after_bytes: Some(100),
            ..PfsConfig::default()
        };
        let s = PfsStore::new(Backend::Memory, cfg).unwrap();
        s.write_bytes("ok", &[0u8; 100]).unwrap();
        let err = s.write_bytes("fail", &[0u8; 1]).unwrap_err();
        assert!(matches!(err, PfsError::InjectedFailure(_)));
        // The failed object must not exist.
        assert!(!s.exists("fail"));
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = PfsConfig {
            n_osts: 0,
            ..PfsConfig::default()
        };
        assert!(PfsStore::new(Backend::Memory, bad).is_err());
        let bad = PfsConfig {
            stripe_size: 0,
            ..PfsConfig::default()
        };
        assert!(PfsStore::new(Backend::Memory, bad).is_err());
    }

    #[test]
    fn concurrent_writers_are_safe() {
        let s = PfsStore::memory();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        s.write_f32(&format!("obj_{t}_{i}"), &[t as f32; 16])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.stats().objects_written, 400);
        assert_eq!(s.list().len(), 400);
        assert_eq!(s.read_f32("obj_3_7").unwrap(), vec![3.0; 16]);
    }

    #[test]
    fn canonical_names_are_sortable() {
        assert_eq!(PfsStore::projection_name(5), "proj_000005.f32");
        assert_eq!(PfsStore::slice_name(123), "slice_000123.f32");
        assert!(PfsStore::slice_name(2) < PfsStore::slice_name(10));
    }

    #[test]
    fn io_records_spans_on_ambient_track() {
        let rec = ct_obs::Recorder::trace();
        let track = rec.track(7, ct_obs::ThreadRole::Io);
        {
            let _cur = ct_obs::current::set_current(&track);
            let s = PfsStore::memory();
            s.write_f32("x", &[1.0; 8]).unwrap();
            s.read_f32("x").unwrap();
        }
        drop(track);
        let data = rec.collect();
        let w = data.stage(7, ct_obs::ThreadRole::Io, "pfs.write").unwrap();
        assert_eq!(w.count, 1);
        assert_eq!(w.bytes, 32);
        let r = data.stage(7, ct_obs::ThreadRole::Io, "pfs.read").unwrap();
        assert_eq!(r.count, 1);
        assert_eq!(r.bytes, 32);
    }

    #[test]
    fn io_without_ambient_track_records_nothing() {
        // No set_current in scope: the recorder must stay empty.
        let rec = ct_obs::Recorder::trace();
        let s = PfsStore::memory();
        s.write_f32("x", &[1.0; 4]).unwrap();
        s.read_f32("x").unwrap();
        assert!(rec.collect().is_empty());
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize("a/b c.f32"), "a_b_c.f32");
        assert_eq!(sanitize("ok-name_1.bin"), "ok-name_1.bin");
    }
}
