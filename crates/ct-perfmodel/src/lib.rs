//! # ct-perfmodel — the iFDK performance model and pipeline simulator
//!
//! The paper validates iFDK against an analytic performance model
//! (Section 4.2, Eqs. 8-19) whose constants come from micro-benchmarks of
//! the ABCI machine (IOR for the PFS, Intel MPI benchmarks for the
//! collectives, `bandwidthTest` for PCIe, the kernel itself for
//! back-projection). This crate carries:
//!
//! * [`machine`] — the machine-constant bundle, with defaults calibrated
//!   to the published ABCI values (PCIe 11.9 GB/s, GPFS 28.5 GB/s
//!   sequential write, ~200 GUPS kernel, ...).
//! * [`kernel`] — a two-parameter cost model of the proposed
//!   back-projection kernel (per-column setup + per-voxel cost) fitted to
//!   the paper's Table 4/Figure 5 throughputs, reproducing the
//!   shape-dependence that makes 8K slabs slower per update than 4K
//!   slabs.
//! * [`model`] — Eqs. 8-19 verbatim: per-stage times, `T_compute` as the
//!   max of the overlapped stages, `T_post` and the end-to-end runtime +
//!   GUPS, plus the `R`/`C` planner of Section 4.1.5.
//! * [`des`] — a discrete-event simulation of one rank's three-thread
//!   pipeline (Figure 4) with finite circular buffers and documented
//!   overhead factors, producing the "measured" series of Figures 5-6 /
//!   Table 5 and the timeline of Figure 4c.
//!
//! Everything is pure arithmetic — no threads, no clock — so the model
//! runs at any scale (the paper's 2,048 GPUs included) in microseconds.
//!
//! ```
//! use ct_perfmodel::{ModelBreakdown, ModelInput};
//!
//! // The paper's 4K problem on 2,048 V100s: "within 30 seconds".
//! let breakdown = ModelBreakdown::evaluate(&ModelInput::paper_4k(2048));
//! assert!(breakdown.t_runtime < 30.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cloud;
pub mod des;
pub mod kernel;
pub mod machine;
pub mod model;

pub use cloud::{estimate_cost, CloudPricing, CostEstimate};
pub use des::{simulate_pipeline, PipelineSim, ThreadSegment, TimelineTrace};
pub use kernel::KernelModel;
pub use machine::MachineConfig;
pub use model::{plan_grid, GridPlan, ModelBreakdown, ModelInput};
