//! The iFDK performance model — paper Section 4.2, Eqs. 8-19 — and the
//! `R`/`C` grid planner of Section 4.1.5.

use crate::kernel::KernelModel;
use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};

const F32: f64 = 4.0; // sizeof(float), as the paper writes it

/// Everything the model needs to evaluate one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInput {
    /// Detector width `Nu`.
    pub nu: usize,
    /// Detector height `Nv`.
    pub nv: usize,
    /// Number of projections `Np`.
    pub np: usize,
    /// Volume dims.
    pub nx: usize,
    /// Volume dims.
    pub ny: usize,
    /// Volume dims.
    pub nz: usize,
    /// Rows of the rank grid (`R`): output decomposition factor.
    pub r: usize,
    /// Columns of the rank grid (`C`): input decomposition factor.
    pub c: usize,
    /// Machine constants.
    pub machine: MachineConfig,
    /// Back-projection kernel cost model.
    pub kernel: KernelModel,
}

impl ModelInput {
    /// The paper's 4K problem (`2048^2 x 4096 -> 4096^3`) on `n_gpus`
    /// V100s with the paper's `R = 32`.
    pub fn paper_4k(n_gpus: usize) -> Self {
        Self {
            nu: 2048,
            nv: 2048,
            np: 4096,
            nx: 4096,
            ny: 4096,
            nz: 4096,
            r: 32,
            c: n_gpus / 32,
            machine: MachineConfig::abci(),
            kernel: KernelModel::v100_proposed(),
        }
    }

    /// The paper's 8K problem (`2048^2 x 4096 -> 8192^3`) with `R = 256`.
    pub fn paper_8k(n_gpus: usize) -> Self {
        Self {
            nu: 2048,
            nv: 2048,
            np: 4096,
            nx: 8192,
            ny: 8192,
            nz: 8192,
            r: 256,
            c: n_gpus / 256,
            machine: MachineConfig::abci(),
            kernel: KernelModel::v100_proposed(),
        }
    }

    /// Total ranks / GPUs (`Nranks = C * R`, Eqs. 4 and 6).
    pub fn n_gpus(&self) -> usize {
        self.r * self.c
    }

    /// Sub-volume bytes per GPU (`sizeof(float) * Nx*Ny*Nz / R`).
    pub fn sub_volume_bytes(&self) -> f64 {
        F32 * (self.nx as f64) * (self.ny as f64) * (self.nz as f64) / self.r as f64
    }

    /// Local slab height per GPU (`Nz / R` slices, as a symmetric pair).
    pub fn nz_local(&self) -> usize {
        self.nz / self.r
    }

    /// Bytes of one projection.
    pub fn projection_bytes(&self) -> f64 {
        F32 * self.nu as f64 * self.nv as f64
    }

    /// AllGather operations per rank (`Nproj_per_rank = Np / (C*R)`,
    /// Eq. 5).
    pub fn ops_per_rank(&self) -> usize {
        self.np / (self.c * self.r)
    }

    /// Validate divisibility and machine constants.
    pub fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        if self.r == 0 || self.c == 0 {
            return Err("R and C must be >= 1".into());
        }
        if !self.np.is_multiple_of(self.r * self.c) {
            return Err(format!(
                "Np = {} must divide by R*C = {}",
                self.np,
                self.r * self.c
            ));
        }
        if !self.nz.is_multiple_of(2 * self.r) {
            return Err(format!(
                "Nz = {} must divide into 2*R = {} symmetric half-slabs",
                self.nz,
                2 * self.r
            ));
        }
        // GPU memory constraint of Section 4.1.5:
        // sub_volume + Nu*Nv*Nbatch floats must fit.
        let need = self.sub_volume_bytes() + self.projection_bytes() * 32.0;
        if need > self.machine.gpu_mem_bytes as f64 {
            return Err(format!(
                "sub-volume + projection batch ({:.1} GiB) exceeds GPU memory ({:.1} GiB)",
                need / (1u64 << 30) as f64,
                self.machine.gpu_mem_bytes as f64 / (1u64 << 30) as f64
            ));
        }
        Ok(())
    }
}

/// Per-stage model times, in seconds (Eqs. 8-19).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelBreakdown {
    /// Eq. 8: reading projections from the PFS.
    pub t_load: f64,
    /// Eq. 9: CPU filtering.
    pub t_flt: f64,
    /// Eq. 10 (ring refinement): per-projection AllGather total.
    pub t_allgather: f64,
    /// Eq. 11: host-to-device copies.
    pub t_h2d: f64,
    /// Eq. 12: back-projection (includes `t_h2d`).
    pub t_bp: f64,
    /// Eq. 13: on-GPU sub-volume transpose.
    pub t_trans: f64,
    /// Eq. 14: device-to-host copy of the sub-volume.
    pub t_d2h: f64,
    /// Eq. 15: sub-volume reduction (zero when `C = 1`).
    pub t_reduce: f64,
    /// Eq. 16: storing the volume to the PFS.
    pub t_store: f64,
    /// Eq. 17: the overlapped compute phase.
    pub t_compute: f64,
    /// Eq. 18: the post phase.
    pub t_post: f64,
    /// Eq. 19: end-to-end runtime.
    pub t_runtime: f64,
    /// End-to-end GUPS (Section 2.3).
    pub gups: f64,
}

impl ModelBreakdown {
    /// Evaluate the model for an input.
    pub fn evaluate(input: &ModelInput) -> ModelBreakdown {
        let m = &input.machine;
        let (nu, nv, np) = (input.nu as f64, input.nv as f64, input.np as f64);
        let (nx, ny, nz) = (input.nx as f64, input.ny as f64, input.nz as f64);
        let (r, c) = (input.r as f64, input.c as f64);
        let gpn = m.gpus_per_node as f64;

        // Eq. 8.
        let t_load = F32 * nu * nv * np / m.bw_load;
        // Eq. 9 (Nnodes = C*R / gpus_per_node).
        let t_flt = np * gpn / (c * r * m.th_flt);
        // Eq. 10 with the ring-algorithm per-operation cost: each of the
        // Np/(C*R) operations circulates (R-1) blocks of one projection
        // around the column ring.
        let ops = np / (c * r);
        let t_allgather = ops * (r - 1.0) * input.projection_bytes() / m.allgather_bw;
        // Eq. 11.
        let t_h2d = F32 * gpn * nu * nv * np / (c * m.pcie_bw * m.pcie_links_h2d as f64);
        // Eq. 12: H2D plus the kernel over the per-GPU symmetric slab.
        let t_kernel = (np / c)
            * input
                .kernel
                .seconds_per_projection(input.nx, input.ny, input.nz_local());
        let t_bp = t_h2d + t_kernel;
        // Eq. 13.
        let t_trans = input.sub_volume_bytes() / m.th_trans;
        // Eq. 14.
        let t_d2h = gpn * input.sub_volume_bytes() / (m.pcie_bw * m.pcie_links_d2h as f64);
        // Eq. 15 (no reduction when a column group is a single rank).
        let t_reduce = if input.c > 1 {
            input.sub_volume_bytes() / m.th_reduce
        } else {
            0.0
        };
        // Eq. 16.
        let t_store = F32 * nx * ny * nz / m.bw_store;
        // Eq. 17.
        let t_compute = t_load.max(t_flt).max(t_allgather).max(t_bp);
        // Eq. 18 (T_trans << T_D2H/10 is dropped, as the paper does).
        let t_post = t_d2h + t_reduce + t_store;
        // Eq. 19.
        let t_runtime = t_compute + t_post;
        let updates = nx * ny * nz * np;
        let gups = updates / (t_runtime * (1u64 << 30) as f64);

        ModelBreakdown {
            t_load,
            t_flt,
            t_allgather,
            t_h2d,
            t_bp,
            t_trans,
            t_d2h,
            t_reduce,
            t_store,
            t_compute,
            t_post,
            t_runtime,
            gups,
        }
    }

    /// The paper's Table 5 overlap ratio
    /// `delta = (T_flt + T_AllGather + T_bp) / T_compute`.
    pub fn delta(&self) -> f64 {
        (self.t_flt + self.t_allgather + self.t_bp) / self.t_compute
    }
}

/// A planned 2D rank grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPlan {
    /// Rows (`R`): number of slab pairs the output is split into.
    pub r: usize,
    /// Columns (`C`): number of input projection groups.
    pub c: usize,
    /// Sub-volume bytes per GPU implied by `R`.
    pub sub_volume_bytes: u64,
}

/// The Section 4.1.5 planner: choose the smallest power-of-two `R` whose
/// sub-volumes fit in GPU memory (leaving room for a 32-projection batch),
/// then `C = n_gpus / R` — minimising `R` and maximising `C`, as the paper
/// argues.
pub fn plan_grid(
    nu: usize,
    nv: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    n_gpus: usize,
    machine: &MachineConfig,
) -> Result<GridPlan, String> {
    if n_gpus == 0 || !n_gpus.is_power_of_two() {
        return Err(format!("n_gpus = {n_gpus} must be a nonzero power of two"));
    }
    let vol_bytes = 4u64 * nx as u64 * ny as u64 * nz as u64;
    let batch_bytes = 4u64 * nu as u64 * nv as u64 * 32;
    if batch_bytes >= machine.gpu_mem_bytes {
        return Err("projection batch alone exceeds GPU memory".into());
    }
    let budget = machine.gpu_mem_bytes - batch_bytes;
    // Smallest power-of-two R with vol_bytes / R <= budget; the paper also
    // caps sub-volumes at 8 GB on 16 GB GPUs (dual-buffer headroom).
    let cap = budget.min(8 * (1 << 30));
    let mut r = 1usize;
    while vol_bytes.div_ceil(r as u64) > cap {
        r = r.checked_mul(2).ok_or_else(|| "R overflow".to_string())?;
    }
    if r > n_gpus {
        return Err(format!(
            "problem needs R = {r} GPUs just to hold the volume, but only {n_gpus} available"
        ));
    }
    if !nz.is_multiple_of(2 * r) {
        return Err(format!(
            "Nz = {nz} cannot split into 2*R = {} half-slabs",
            2 * r
        ));
    }
    Ok(GridPlan {
        r,
        c: n_gpus / r,
        sub_volume_bytes: vol_bytes / r as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol_frac: f64) -> bool {
        (a - b).abs() <= tol_frac * b.abs().max(1e-12)
    }

    #[test]
    fn paper_inputs_validate() {
        for g in [32, 64, 128, 256, 512, 1024, 2048] {
            ModelInput::paper_4k(g).validate().unwrap();
        }
        for g in [256, 512, 1024, 2048] {
            ModelInput::paper_8k(g).validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_bad_divisibility() {
        let mut i = ModelInput::paper_4k(32);
        i.np = 1000; // not divisible by 32
        assert!(i.validate().is_err());
        let mut i = ModelInput::paper_4k(32);
        i.nz = 100; // not divisible by 2R = 64
        assert!(i.validate().is_err());
        let mut i = ModelInput::paper_4k(32);
        i.r = 1; // 256 GB sub-volume in a 16 GB GPU
        assert!(i.validate().is_err());
    }

    #[test]
    fn fig5a_theoretical_compute_series() {
        // Paper Figure 5a "peak" T_compute for 4K strong scaling:
        // 32 -> 54.8, 64 -> 27.5, 128 -> 14.0, 256 -> 7.0, 512 -> 3.5,
        // 1024 -> 1.8, 2048 -> 0.9 (dominated by T_bp until the tail).
        let expect = [(32, 54.8), (64, 27.5), (128, 14.0), (256, 7.0), (512, 3.5)];
        for (g, t) in expect {
            let b = ModelBreakdown::evaluate(&ModelInput::paper_4k(g));
            assert!(
                close(b.t_compute, t, 0.08),
                "{g} GPUs: {} vs paper {t}",
                b.t_compute
            );
        }
    }

    #[test]
    fn fig5a_theoretical_post_series() {
        let b = ModelBreakdown::evaluate(&ModelInput::paper_4k(128));
        // Paper: D2H 2.6 (the paper rounds 32 GiB / 11.9 GB/s down),
        // store 9.0, reduce 2.7.
        assert!(close(b.t_d2h, 2.6, 0.12), "{}", b.t_d2h);
        assert!(close(b.t_store, 9.0, 0.05), "{}", b.t_store);
        assert!(close(b.t_reduce, 2.7, 0.05), "{}", b.t_reduce);
        // C = 1 -> no reduction.
        let b32 = ModelBreakdown::evaluate(&ModelInput::paper_4k(32));
        assert_eq!(b32.t_reduce, 0.0);
    }

    #[test]
    fn fig5b_theoretical_compute_series() {
        // Paper Figure 5b: 256 -> 83.0, 512 -> 41.5, 1024 -> 20.8,
        // 2048 -> 10.4.
        for (g, t) in [(256, 83.0), (512, 41.5), (1024, 20.8), (2048, 10.4)] {
            let b = ModelBreakdown::evaluate(&ModelInput::paper_8k(g));
            assert!(
                close(b.t_compute, t, 0.08),
                "{g} GPUs: {} vs paper {t}",
                b.t_compute
            );
        }
        // Store of the 2 TB volume ~ 72-78 s.
        let b = ModelBreakdown::evaluate(&ModelInput::paper_8k(512));
        assert!(b.t_store > 70.0 && b.t_store < 80.0, "{}", b.t_store);
    }

    #[test]
    fn table5_allgather_magnitudes() {
        // Table 5: 4K at 32 GPUs T_AllGather = 31.4 s; 8K at 256 GPUs
        // T_AllGather = 46.9 s. The ring model lands within ~35 %.
        let b = ModelBreakdown::evaluate(&ModelInput::paper_4k(32));
        assert!(close(b.t_allgather, 31.4, 0.2), "{}", b.t_allgather);
        let b = ModelBreakdown::evaluate(&ModelInput::paper_8k(256));
        assert!(close(b.t_allgather, 46.9, 0.35), "{}", b.t_allgather);
    }

    #[test]
    fn delta_indicates_overlap_win() {
        // Paper Table 5: delta in 1.2-1.6 — overlap hides real work.
        for g in [32, 64, 128, 256] {
            let b = ModelBreakdown::evaluate(&ModelInput::paper_4k(g));
            let d = b.delta();
            assert!(d > 1.0 && d < 2.5, "{g} GPUs: delta {d}");
        }
    }

    #[test]
    fn fig6_gups_at_2048_gpus() {
        // Paper Figure 6: 8K at 2,048 GPUs ~ 22,599 GUPS end-to-end.
        let b = ModelBreakdown::evaluate(&ModelInput::paper_8k(2048));
        assert!(close(b.gups, 22599.0, 0.1), "{}", b.gups);
        // 4K at 2,048 GPUs ~ 20,480 GUPS; the post phase (D2H + reduce +
        // store, ~14 s) dominates there and the model sits ~20 % under
        // the published point.
        let b = ModelBreakdown::evaluate(&ModelInput::paper_4k(2048));
        assert!(b.gups > 14_000.0 && b.gups < 24_000.0, "{}", b.gups);
    }

    #[test]
    fn strong_scaling_is_monotonic() {
        let mut last = f64::INFINITY;
        for g in [32, 64, 128, 256, 512, 1024, 2048] {
            let b = ModelBreakdown::evaluate(&ModelInput::paper_4k(g));
            assert!(b.t_compute < last, "{g} GPUs not faster");
            last = b.t_compute;
        }
    }

    #[test]
    fn planner_reproduces_paper_grids() {
        let m = MachineConfig::abci();
        // 4K on any power-of-two GPU count >= 32 -> R = 32 (8 GB subvols).
        let p = plan_grid(2048, 2048, 4096, 4096, 4096, 128, &m).unwrap();
        assert_eq!(p.r, 32);
        assert_eq!(p.c, 4);
        assert_eq!(p.sub_volume_bytes, 8 << 30);
        // 8K -> R = 256.
        let p = plan_grid(2048, 2048, 8192, 8192, 8192, 2048, &m).unwrap();
        assert_eq!(p.r, 256);
        assert_eq!(p.c, 8);
        // Too few GPUs for the volume.
        assert!(plan_grid(2048, 2048, 8192, 8192, 8192, 128, &m).is_err());
        // Non-power-of-two GPU count.
        assert!(plan_grid(2048, 2048, 4096, 4096, 4096, 96, &m).is_err());
    }

    #[test]
    fn planner_small_problem_fits_one_gpu() {
        let m = MachineConfig::abci();
        let p = plan_grid(512, 512, 1024, 1024, 1024, 4, &m).unwrap();
        assert_eq!(p.r, 1);
        assert_eq!(p.c, 4);
    }

    #[test]
    fn weak_scaling_compute_is_flat() {
        // Fig 5c: Np = 16 * n_gpus, R = 32 -> T_compute roughly constant.
        let mut times = Vec::new();
        for g in [32usize, 128, 512, 2048] {
            let mut i = ModelInput::paper_4k(g);
            i.np = 16 * g;
            times.push(ModelBreakdown::evaluate(&i).t_compute);
        }
        let (min, max) = times.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
        assert!(max / min < 1.25, "weak scaling spread {times:?}");
    }
}
