//! Machine constants for the performance model.
//!
//! Defaults are calibrated to the paper's testbed — AIST's ABCI
//! supercomputer (Section 5.1: two Xeon Gold 6148 + four 16 GB Tesla V100
//! per node, PCIe gen3 x16, dual InfiniBand EDR, 6.6 PB GPFS) — using the
//! micro-benchmark values the paper publishes:
//!
//! * `BW_PCIe = 11.9 GB/s` per x16 link (Section 5.3.3, `bandwidthTest`);
//! * GPFS sequential write "28.5 GB/s" — read as GiB/s (30.5e9 B/s) so
//!   that the published `T_store(256 GiB) ~ 9 s` and `T_store(2 TiB) ~
//!   71.8 s` both come out exactly;
//! * device-to-host of 32 GB (four 8 GB sub-volumes) `~2.6 s` per node —
//!   i.e. effectively one PCIe link's bandwidth serves the node's D2H
//!   drain (the paper attributes the gap to PCIe-switch contention,
//!   two GPUs per switch);
//! * reducing an 8 GB sub-volume over dual InfiniBand EDR `~2.7 s`
//!   (`TH_Reduce ~ 3.18 GB/s`);
//! * filtering throughput derived from Table 5 (`T_flt = 1.4 s` for 4,096
//!   projections of 2048^2 on 8 nodes -> ~366 projections/s/node);
//! * AllGather ring bandwidth derived from Table 5
//!   (`T_AllGather = 31.4 s` for 128 ops x 31 blocks x 16.8 MB ->
//!   ~2.1 GB/s effective per column ring).

use serde::{Deserialize, Serialize};

/// Constants describing one GPU-accelerated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// GPUs (and hence MPI ranks) per compute node.
    pub gpus_per_node: usize,
    /// GPU device memory per GPU, bytes (16 GB on V100).
    pub gpu_mem_bytes: u64,
    /// PCIe bandwidth per x16 link, bytes/s.
    pub pcie_bw: f64,
    /// Effective PCIe links per node for host-to-device traffic.
    pub pcie_links_h2d: usize,
    /// Effective PCIe links per node for device-to-host traffic (1 on
    /// ABCI due to switch contention; see module docs).
    pub pcie_links_d2h: usize,
    /// Aggregate PFS read bandwidth, bytes/s.
    pub bw_load: f64,
    /// Aggregate PFS write bandwidth, bytes/s.
    pub bw_store: f64,
    /// Filtering throughput, projections/s per node (`TH_flt`).
    pub th_flt: f64,
    /// Effective ring bandwidth of the per-projection AllGather, bytes/s
    /// per column group.
    pub allgather_bw: f64,
    /// Sub-volume reduction throughput, bytes/s per rank (`TH_Reduce`).
    pub th_reduce: f64,
    /// On-GPU sub-volume transpose throughput, bytes/s (`TH_trans`; the
    /// paper measures `T_trans` ~ 0.29 s for 8 GB, i.e. ~27 GB/s).
    pub th_trans: f64,
}

impl MachineConfig {
    /// The paper's ABCI testbed.
    pub fn abci() -> Self {
        Self {
            gpus_per_node: 4,
            gpu_mem_bytes: 16 * (1 << 30),
            pcie_bw: 11.9e9,
            pcie_links_h2d: 2,
            pcie_links_d2h: 1,
            bw_load: 100.0e9,
            bw_store: 30.5e9,
            th_flt: 366.0,
            allgather_bw: 2.1e9,
            th_reduce: 3.18e9,
            th_trans: 27.0e9,
        }
    }

    /// An Nvidia DGX-2-like single node (Section 6.2.2): 16 GPUs, NVSwitch
    /// interconnect (no PCIe bottleneck to speak of), fast local NVMe.
    pub fn dgx2() -> Self {
        Self {
            gpus_per_node: 16,
            gpu_mem_bytes: 32 * (1 << 30),
            pcie_bw: 60.0e9, // NVSwitch-class effective link
            pcie_links_h2d: 8,
            pcie_links_d2h: 8,
            bw_load: 8.0e9,  // local NVMe array read
            bw_store: 5.0e9, // local NVMe array write
            th_flt: 366.0,
            allgather_bw: 40.0e9,
            th_reduce: 30.0e9,
            th_trans: 27.0e9,
        }
    }

    /// An AWS p3.8xlarge-like cluster (Section 6.2.1): same V100 GPUs but
    /// a 10 Gb/s network and EBS-class storage.
    pub fn aws_p3() -> Self {
        Self {
            gpus_per_node: 4,
            gpu_mem_bytes: 16 * (1 << 30),
            pcie_bw: 11.9e9,
            pcie_links_h2d: 2,
            pcie_links_d2h: 1,
            bw_load: 10.0e9,
            bw_store: 5.0e9,
            th_flt: 366.0,
            allgather_bw: 1.0e9, // 10 Gbps network, some overlap
            th_reduce: 0.8e9,
            th_trans: 27.0e9,
        }
    }

    /// Basic sanity checks.
    // `!(v > 0.0)` deliberately rejects NaN constants as invalid.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if self.gpus_per_node == 0 {
            return Err("gpus_per_node must be >= 1".into());
        }
        for (name, v) in [
            ("pcie_bw", self.pcie_bw),
            ("bw_load", self.bw_load),
            ("bw_store", self.bw_store),
            ("th_flt", self.th_flt),
            ("allgather_bw", self.allgather_bw),
            ("th_reduce", self.th_reduce),
            ("th_trans", self.th_trans),
        ] {
            if !(v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.pcie_links_h2d == 0 || self.pcie_links_d2h == 0 {
            return Err("pcie link counts must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::abci()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abci_matches_published_constants() {
        let m = MachineConfig::abci();
        assert_eq!(m.gpus_per_node, 4);
        assert_eq!(m.gpu_mem_bytes, 16 * (1 << 30));
        assert!((m.pcie_bw - 11.9e9).abs() < 1.0);
        assert!((m.bw_store - 30.5e9).abs() < 1.0);
        m.validate().unwrap();
    }

    #[test]
    fn store_time_of_256_gb_is_about_9s() {
        // The paper: "the projected time required to store data of size
        // 256GB and 2TB is ~9.0s and 87.7s".
        let m = MachineConfig::abci();
        let t256 = 256.0 * (1u64 << 30) as f64 / m.bw_store;
        assert!((t256 - 9.0).abs() < 0.8, "{t256}");
        let t2t = 2048.0 * (1u64 << 30) as f64 / m.bw_store;
        assert!((t2t - 77.0).abs() < 11.0, "{t2t}");
    }

    #[test]
    fn d2h_of_32_gb_is_about_2_6s() {
        // "copy data of size 32GB ... to the host ... is ~2.6s".
        let m = MachineConfig::abci();
        let t = 32.0 * (1u64 << 30) as f64 / (m.pcie_bw * m.pcie_links_d2h as f64);
        assert!((t - 2.6).abs() < 0.5, "{t}");
    }

    #[test]
    fn reduce_of_8_gb_is_about_2_7s() {
        let m = MachineConfig::abci();
        let t = 8.0 * (1u64 << 30) as f64 / m.th_reduce;
        assert!((t - 2.7).abs() < 0.4, "{t}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut m = MachineConfig::abci();
        m.pcie_bw = 0.0;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::abci();
        m.gpus_per_node = 0;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::abci();
        m.pcie_links_d2h = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn presets_are_valid() {
        MachineConfig::abci().validate().unwrap();
        MachineConfig::dgx2().validate().unwrap();
        MachineConfig::aws_p3().validate().unwrap();
        assert_eq!(MachineConfig::default(), MachineConfig::abci());
    }
}
