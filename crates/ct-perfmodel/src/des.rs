//! Discrete-event simulation of one rank's three-thread pipeline
//! (paper Figure 4), producing the "measured" counterpart of the analytic
//! model.
//!
//! The paper reports ~76 % of model peak on average and attributes the gap
//! to identifiable overheads (Section 5.3.3): inter-thread data exchange
//! through the circular buffers, the batch-granularity H2D staging, PCIe
//! switch contention on the D2H drain, the cold first call of
//! `MPI_Reduce`, and volume slices not tuned to the PFS stripe size. The
//! simulator models the pipeline at *batch* granularity — filtered
//! projections flow through AllGather operations into 32-projection
//! back-projection batches — and applies those overheads as explicit,
//! documented factors (see [`Overheads`]). All ranks are symmetric, so
//! simulating one representative rank suffices.

use crate::model::{ModelBreakdown, ModelInput};
use serde::{Deserialize, Serialize};

/// Documented overhead factors on top of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Multiplier on kernel batch time: circular-buffer exchange, batch
    /// assembly, kernel launch (paper Section 5.3.3, first gap item).
    pub bp_exchange: f64,
    /// AllGather contention growth per doubling of total ranks.
    pub allgather_contention_per_log2: f64,
    /// Multiplier on the D2H drain (PCIe switch contention: measured
    /// 4.8 s vs 2.6 s peak in Figure 5).
    pub d2h_contention: f64,
    /// Reduce overhead: cold-start base plus growth per doubling of `C`
    /// (measured 2.4-4.2 s vs 2.7 s peak).
    pub reduce_base: f64,
    /// See [`Overheads::reduce_base`].
    pub reduce_per_log2c: f64,
    /// Multiplier on the PFS store (slices not stripe-aligned: measured
    /// 11.2 s vs 9.0 s peak).
    pub store_misalignment: f64,
}

impl Default for Overheads {
    fn default() -> Self {
        Self {
            bp_exchange: 1.25,
            allgather_contention_per_log2: 0.04,
            d2h_contention: 1.8,
            reduce_base: 0.9,
            reduce_per_log2c: 0.08,
            store_misalignment: 1.17,
        }
    }
}

/// One contiguous activity of one pipeline thread (for Figure 4c-style
/// timelines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadSegment {
    /// Thread name: `"filter"`, `"main"` or `"bp"`.
    pub thread: String,
    /// Activity label (e.g. `"allgather"`, `"h2d+bp"`, `"store"`).
    pub label: String,
    /// Start time, seconds.
    pub t0: f64,
    /// End time, seconds.
    pub t1: f64,
}

/// A full per-rank timeline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimelineTrace {
    /// Segments in chronological order per thread.
    pub segments: Vec<ThreadSegment>,
}

impl TimelineTrace {
    /// Last event end time.
    pub fn makespan(&self) -> f64 {
        self.segments.iter().map(|s| s.t1).fold(0.0, f64::max)
    }

    /// Total busy time of one thread.
    pub fn busy(&self, thread: &str) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.thread == thread)
            .map(|s| s.t1 - s.t0)
            .sum()
    }
}

/// Simulation output: per-stage times comparable to both the analytic
/// model and the paper's measured series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSim {
    /// Busy time of the filter thread (load + filter).
    pub t_flt: f64,
    /// Busy time of the AllGather operations on the main thread.
    pub t_allgather: f64,
    /// Busy time of the BP thread (H2D + kernel).
    pub t_bp: f64,
    /// Makespan of the overlapped phase (Table 5's `T_compute`).
    pub t_compute: f64,
    /// D2H drain after compute.
    pub t_d2h: f64,
    /// Volume reduction (zero when `C = 1`).
    pub t_reduce: f64,
    /// PFS store.
    pub t_store: f64,
    /// End-to-end runtime.
    pub t_runtime: f64,
    /// End-to-end GUPS.
    pub gups: f64,
    /// Table 5's overlap ratio.
    pub delta: f64,
    /// The per-rank timeline.
    pub trace: TimelineTrace,
}

/// Run the pipeline simulation for one configuration.
pub fn simulate_pipeline(input: &ModelInput, ov: &Overheads) -> PipelineSim {
    let model = ModelBreakdown::evaluate(input);
    let m = &input.machine;
    let n_ranks = input.n_gpus();

    // --- Stage rates -----------------------------------------------------
    // Filter thread: this rank loads+filters `ops` projections; the node's
    // filtering throughput is shared by its resident ranks.
    let ops = input.ops_per_rank();
    let flt_rate_rank = m.th_flt / m.gpus_per_node as f64; // proj/s per rank
    let t_load_share = model.t_load / ops.max(1) as f64; // amortised load per projection

    // AllGather: ring of R blocks, with a contention factor growing with
    // the total rank count.
    let contention = 1.0 + ov.allgather_contention_per_log2 * (n_ranks.max(1) as f64).log2();
    let ag_op =
        (input.r.saturating_sub(1)) as f64 * input.projection_bytes() / m.allgather_bw * contention;

    // BP thread: batches of up to 32 projections; each batch is staged H2D
    // then back-projected.
    let batch = 32usize;
    let received = input.np / input.c; // projections this rank back-projects
    let n_batches = received.div_ceil(batch);
    let h2d_rank_bw = m.pcie_bw * m.pcie_links_h2d as f64 / m.gpus_per_node as f64;
    let per_proj_kernel = input
        .kernel
        .seconds_per_projection(input.nx, input.ny, input.nz_local());

    // --- Event loop -------------------------------------------------------
    let mut trace = TimelineTrace::default();
    // Filter completions (time when the o-th local projection is ready).
    let per_proj_flt = 1.0 / flt_rate_rank + t_load_share;
    let flt_done = |o: usize| (o + 1) as f64 * per_proj_flt;
    if ops > 0 {
        trace.segments.push(ThreadSegment {
            thread: "filter".to_string(),
            label: format!("load+filter x{ops}"),
            t0: 0.0,
            t1: flt_done(ops - 1),
        });
    }

    // AllGather ops: serialized on the main thread, each needs the local
    // projection it contributes.
    let mut ag_done = vec![0.0f64; ops.max(1)];
    let mut prev = 0.0f64;
    for (o, slot) in ag_done.iter_mut().enumerate().take(ops) {
        let start = prev.max(flt_done(o));
        *slot = start + ag_op;
        trace.segments.push(ThreadSegment {
            thread: "main".to_string(),
            label: format!("allgather #{o}"),
            t0: start,
            t1: *slot,
        });
        prev = *slot;
    }
    let t_allgather_busy = ops as f64 * ag_op;

    // BP batches: batch b needs (b+1)*batch projections available; each
    // AllGather op delivers R projections.
    let mut bp_prev = 0.0f64;
    let mut bp_busy = 0.0f64;
    for b in 0..n_batches {
        let this_batch = batch.min(received - b * batch);
        let needed = b * batch + this_batch;
        let ops_needed = needed.div_ceil(input.r).min(ops.max(1));
        let avail_at = if ops == 0 {
            0.0
        } else {
            ag_done[ops_needed - 1]
        };
        let start = bp_prev.max(avail_at);
        let h2d = this_batch as f64 * input.projection_bytes() / h2d_rank_bw;
        let kernel = this_batch as f64 * per_proj_kernel * ov.bp_exchange;
        let end = start + h2d + kernel;
        trace.segments.push(ThreadSegment {
            thread: "bp".to_string(),
            label: format!("h2d+bp batch {b}"),
            t0: start,
            t1: end,
        });
        bp_busy += h2d + kernel;
        bp_prev = end;
    }
    let t_compute = bp_prev
        .max(prev)
        .max(if ops > 0 { flt_done(ops - 1) } else { 0.0 });

    // --- Post phase -------------------------------------------------------
    let t_d2h = model.t_d2h * ov.d2h_contention;
    let t_reduce = if input.c > 1 {
        (input.sub_volume_bytes() / m.th_reduce)
            * (ov.reduce_base + ov.reduce_per_log2c * (input.c as f64).log2())
    } else {
        0.0
    };
    let t_store = model.t_store * ov.store_misalignment;
    let mut t = t_compute;
    for (label, dur, thread) in [
        ("d2h", t_d2h, "bp"),
        ("reduce", t_reduce, "main"),
        ("store", t_store, "main"),
    ] {
        if dur > 0.0 {
            trace.segments.push(ThreadSegment {
                thread: thread.to_string(),
                label: label.to_string(),
                t0: t,
                t1: t + dur,
            });
        }
        t += dur;
    }
    let t_runtime = t;
    let updates = (input.nx as f64) * (input.ny as f64) * (input.nz as f64) * (input.np as f64);
    let gups = updates / (t_runtime * (1u64 << 30) as f64);
    let t_flt_busy = if ops > 0 { flt_done(ops - 1) } else { 0.0 };
    let delta = (t_flt_busy + t_allgather_busy + bp_busy) / t_compute.max(1e-12);

    PipelineSim {
        t_flt: t_flt_busy,
        t_allgather: t_allgather_busy,
        t_bp: bp_busy,
        t_compute,
        t_d2h,
        t_reduce,
        t_store,
        t_runtime,
        gups,
        delta,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol_frac: f64) -> bool {
        (a - b).abs() <= tol_frac * b.abs().max(1e-12)
    }

    #[test]
    fn fig5a_measured_compute_series() {
        // Paper Figure 5a measured T_compute: 32 -> 70.2, 64 -> 35.6,
        // 128 -> 18.9, 256 -> 10.2.
        let ov = Overheads::default();
        for (g, t) in [(32, 70.2), (64, 35.6), (128, 18.9), (256, 10.2)] {
            let s = simulate_pipeline(&ModelInput::paper_4k(g), &ov);
            assert!(
                close(s.t_compute, t, 0.2),
                "{g} GPUs: sim {} vs paper {t}",
                s.t_compute
            );
        }
    }

    #[test]
    fn fig5b_measured_compute_series() {
        // Paper Figure 5b measured: 256 -> 101.3, 512 -> 53.1,
        // 1024 -> 29.7, 2048 -> 17.2.
        let ov = Overheads::default();
        for (g, t) in [(256, 101.3), (512, 53.1), (1024, 29.7)] {
            let s = simulate_pipeline(&ModelInput::paper_8k(g), &ov);
            assert!(
                close(s.t_compute, t, 0.15),
                "{g} GPUs: sim {} vs paper {t}",
                s.t_compute
            );
        }
    }

    #[test]
    fn measured_post_times_match_paper() {
        let ov = Overheads::default();
        let s = simulate_pipeline(&ModelInput::paper_4k(128), &ov);
        // Paper: D2H 4.8, store 11.2, reduce ~2.8 measured.
        assert!(close(s.t_d2h, 4.8, 0.1), "{}", s.t_d2h);
        assert!(close(s.t_store, 11.2, 0.1), "{}", s.t_store);
        assert!(close(s.t_reduce, 2.8, 0.15), "{}", s.t_reduce);
    }

    #[test]
    fn delta_in_table5_band() {
        // Table 5: delta between 1.2 and 1.6 for the 4K strong scaling.
        let ov = Overheads::default();
        for g in [32, 64, 128, 256] {
            let s = simulate_pipeline(&ModelInput::paper_4k(g), &ov);
            assert!(
                s.delta > 1.1 && s.delta < 1.8,
                "{g} GPUs: delta {}",
                s.delta
            );
        }
    }

    #[test]
    fn sim_is_slower_than_model_but_not_wildly() {
        // The paper achieves ~76 % of model peak on average.
        let ov = Overheads::default();
        for g in [32, 128, 512] {
            let input = ModelInput::paper_4k(g);
            let model = ModelBreakdown::evaluate(&input);
            let sim = simulate_pipeline(&input, &ov);
            let eff = model.t_runtime / sim.t_runtime;
            assert!(eff > 0.55 && eff < 1.0, "{g} GPUs: efficiency {eff}");
        }
    }

    #[test]
    fn trace_is_consistent() {
        let ov = Overheads::default();
        let s = simulate_pipeline(&ModelInput::paper_4k(128), &ov);
        // Makespan equals runtime.
        assert!(close(s.trace.makespan(), s.t_runtime, 1e-9));
        // Threads are busy no longer than the makespan.
        for th in ["filter", "main", "bp"] {
            assert!(s.trace.busy(th) <= s.trace.makespan() + 1e-9, "{th}");
        }
        // Segments have positive duration and per-thread ordering.
        for seg in &s.trace.segments {
            assert!(seg.t1 >= seg.t0, "{seg:?}");
        }
    }

    #[test]
    fn fig4c_shape_bp_dominates_then_post() {
        // The Figure 4c example: 4K on 128 GPUs. BP busy ~15 s in a ~19 s
        // compute phase; post adds D2H + reduce + store.
        let ov = Overheads::default();
        let s = simulate_pipeline(&ModelInput::paper_4k(128), &ov);
        assert!(
            s.t_bp > 0.7 * s.t_compute,
            "bp {} compute {}",
            s.t_bp,
            s.t_compute
        );
        assert!(s.t_compute > s.t_bp, "overlap still leaves gaps");
        assert!(s.t_runtime > s.t_compute + s.t_d2h);
    }

    #[test]
    fn single_gpu_no_reduce() {
        let mut i = ModelInput::paper_4k(32);
        i.c = 1;
        let s = simulate_pipeline(&i, &Overheads::default());
        assert_eq!(s.t_reduce, 0.0);
    }
}
