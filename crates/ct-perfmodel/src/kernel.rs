//! A two-parameter cost model of the proposed back-projection kernel.
//!
//! The proposed kernel (paper Algorithm 4 / Listing 1) does a fixed amount
//! of work per voxel *column* — the two inner products, reciprocal and
//! `u`/`W` setup shared along z — plus a per-voxel amount (one inner
//! product, two interpolations for the symmetric pair). Its time to
//! back-project one projection over a slab of `nx * ny` columns of local
//! height `nz` is therefore:
//!
//! ```text
//! t_proj = nx * ny * (col_setup + per_voxel * nz)
//! ```
//!
//! Fitting the two constants to the paper's published throughputs —
//! ~189 GUPS effective on the 4K per-GPU slab (4096 x 4096 x 128,
//! Figure 5a: `T_bp = 54.8 s` minus the H2D term) and ~114 GUPS on the 8K
//! per-GPU slab (8192 x 8192 x 32, Figure 5b: `T_bp = 83.0 s`) — gives
//! `col_setup ~ 138 ps` and `per_voxel ~ 3.8 ps`, consistent with the
//! ~200 GUPS the paper reports for large self-contained volumes
//! (Table 4, `L1-Tran` column). The same model explains Table 4's trend
//! of GUPS falling as volumes get shallow (large `alpha`).

use serde::{Deserialize, Serialize};

/// Cost model of the proposed kernel on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// Per-voxel-column setup time, seconds.
    pub col_setup_s: f64,
    /// Per-voxel update time, seconds.
    pub per_voxel_s: f64,
}

impl KernelModel {
    /// Constants fitted to the paper's V100 numbers.
    pub fn v100_proposed() -> Self {
        Self {
            col_setup_s: 1.38e-10,
            per_voxel_s: 3.83e-12,
        }
    }

    /// Seconds to back-project ONE projection over an
    /// `nx * ny * nz_local` slab.
    pub fn seconds_per_projection(&self, nx: usize, ny: usize, nz_local: usize) -> f64 {
        let cols = (nx * ny) as f64;
        cols * (self.col_setup_s + self.per_voxel_s * nz_local as f64)
    }

    /// Projections per second over the slab.
    pub fn projections_per_sec(&self, nx: usize, ny: usize, nz_local: usize) -> f64 {
        1.0 / self.seconds_per_projection(nx, ny, nz_local)
    }

    /// Effective kernel GUPS over the slab (updates = voxels per
    /// projection).
    pub fn gups(&self, nx: usize, ny: usize, nz_local: usize) -> f64 {
        let updates = (nx * ny * nz_local) as f64;
        updates / (self.seconds_per_projection(nx, ny, nz_local) * (1u64 << 30) as f64)
    }
}

impl Default for KernelModel {
    fn default() -> Self {
        Self::v100_proposed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_paper_4k_slab_throughput() {
        // 4K strong scaling, R=32: per-GPU slab 4096 x 4096 x 128.
        // Fig 5a theoretical T_bp = 54.8 s includes ~11.6 s of H2D, so the
        // kernel does 4,096 projections in ~43 s -> ~95 proj/s.
        let k = KernelModel::v100_proposed();
        let rate = k.projections_per_sec(4096, 4096, 128);
        assert!((rate - 95.0).abs() < 5.0, "{rate}");
        // Effective GUPS ~ 186-192.
        let g = k.gups(4096, 4096, 128);
        assert!((g - 189.0).abs() < 8.0, "{g}");
    }

    #[test]
    fn fits_paper_8k_slab_throughput() {
        // 8K strong scaling, R=256: per-GPU slab 8192 x 8192 x 32.
        // Fig 5b theoretical T_bp = 83.0 s minus ~11.6 s H2D -> ~57 proj/s.
        let k = KernelModel::v100_proposed();
        let rate = k.projections_per_sec(8192, 8192, 32);
        assert!((rate - 57.0).abs() < 4.0, "{rate}");
        let g = k.gups(8192, 8192, 32);
        assert!((g - 114.0).abs() < 8.0, "{g}");
    }

    #[test]
    fn deep_volumes_approach_asymptotic_gups() {
        // As nz grows the column setup amortises away and GUPS saturates
        // near 1 / per_voxel / 2^30 ~ 243; a self-contained 1k^3 volume
        // sits at ~235 model GUPS, bracketing the paper's measured
        // 206-211 (Table 4) from above since the measurement includes
        // volume write-back traffic the two-parameter model folds into
        // the slab fits.
        let k = KernelModel::v100_proposed();
        let g1k = k.gups(1024, 1024, 1024);
        assert!((g1k - 235.0).abs() < 12.0, "{g1k}");
        assert!(k.gups(1024, 1024, 4096) > g1k);
    }

    #[test]
    fn shallow_volumes_lose_throughput() {
        // Table 4's trend: large alpha (shallow output) -> lower GUPS.
        let k = KernelModel::v100_proposed();
        assert!(k.gups(128, 128, 128) > k.gups(512, 512, 8));
        let deep = k.gups(256, 256, 1024);
        let shallow = k.gups(2048, 2048, 16);
        assert!(deep > 1.5 * shallow);
    }

    #[test]
    fn per_projection_time_is_linear_in_columns() {
        let k = KernelModel::v100_proposed();
        let t1 = k.seconds_per_projection(100, 100, 64);
        let t4 = k.seconds_per_projection(200, 200, 64);
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
    }
}
