//! Cloud cost estimation — the paper's Section 6.2.1 argument that iFDK
//! is not locked to top-tier HPC systems: "generating a 4K volume ... can
//! be done, for example, on Amazon's AWS HPC offerings for the cost of
//! less than $100 ... using 256 p3.8xlarge EC2 instances ... at the price
//! of $12.24 per hour (March 2019 US east Ohio region) ... with billing
//! timed by seconds".

use crate::des::{simulate_pipeline, Overheads, PipelineSim};
use crate::model::ModelInput;
use serde::{Deserialize, Serialize};

/// Per-instance cloud pricing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudPricing {
    /// On-demand price per instance-hour (USD).
    pub usd_per_instance_hour: f64,
    /// GPUs per instance.
    pub gpus_per_instance: usize,
    /// Billing granularity in seconds (AWS bills per second with a
    /// 60-second minimum).
    pub min_billing_secs: f64,
}

impl CloudPricing {
    /// The paper's AWS p3.8xlarge quote (March 2019, us-east-2).
    pub fn aws_p3_8xlarge_2019() -> Self {
        Self {
            usd_per_instance_hour: 12.24,
            gpus_per_instance: 4,
            min_billing_secs: 60.0,
        }
    }
}

/// A costed reconstruction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Instances needed (`n_gpus / gpus_per_instance`).
    pub instances: usize,
    /// Billed wall time per instance, seconds.
    pub billed_secs: f64,
    /// Total cost (USD).
    pub usd: f64,
    /// The simulated run behind the estimate.
    pub sim: PipelineSim,
}

/// Estimate the cost of one reconstruction under `pricing`.
pub fn estimate_cost(
    input: &ModelInput,
    overheads: &Overheads,
    pricing: &CloudPricing,
) -> Result<CostEstimate, String> {
    input.validate()?;
    if pricing.gpus_per_instance == 0 {
        return Err("gpus_per_instance must be >= 1".into());
    }
    if !input.n_gpus().is_multiple_of(pricing.gpus_per_instance) {
        return Err(format!(
            "{} GPUs do not fill whole instances of {}",
            input.n_gpus(),
            pricing.gpus_per_instance
        ));
    }
    let sim = simulate_pipeline(input, overheads);
    let instances = input.n_gpus() / pricing.gpus_per_instance;
    let billed_secs = sim.t_runtime.max(pricing.min_billing_secs);
    let usd = instances as f64 * pricing.usd_per_instance_hour * billed_secs / 3600.0;
    Ok(CostEstimate {
        instances,
        billed_secs,
        usd,
        sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn paper_aws_claim_under_100_usd() {
        // Section 6.2.1: a 4K reconstruction on 256 p3.8xlarge (1,024
        // GPUs) with a slow (10 Gb/s) network costs < $100.
        let mut input = ModelInput::paper_4k(1024);
        input.machine = MachineConfig::aws_p3();
        let est = estimate_cost(
            &input,
            &Overheads::default(),
            &CloudPricing::aws_p3_8xlarge_2019(),
        )
        .unwrap();
        assert_eq!(est.instances, 256);
        assert!(
            est.usd < 100.0,
            "estimated ${:.2} for {:.0} s on 256 instances",
            est.usd,
            est.billed_secs
        );
        // And it is a real cost, not a degenerate zero.
        assert!(est.usd > 1.0);
    }

    #[test]
    fn minimum_billing_applies() {
        let mut input = ModelInput::paper_4k(2048);
        input.machine = MachineConfig::abci();
        let pricing = CloudPricing {
            usd_per_instance_hour: 1.0,
            gpus_per_instance: 4,
            min_billing_secs: 3600.0, // hour-granularity billing
        };
        let est = estimate_cost(&input, &Overheads::default(), &pricing).unwrap();
        assert_eq!(est.billed_secs, 3600.0);
        assert!((est.usd - 512.0).abs() < 1e-9); // 512 instances * $1
    }

    #[test]
    fn partial_instances_rejected() {
        let input = ModelInput::paper_4k(32);
        let pricing = CloudPricing {
            gpus_per_instance: 5,
            ..CloudPricing::aws_p3_8xlarge_2019()
        };
        assert!(estimate_cost(&input, &Overheads::default(), &pricing).is_err());
    }
}
