//! Criterion benchmarks of the FFT substrate: plan reuse (the filtering
//! stage's hot path), arbitrary-size Bluestein overhead, and FFT-vs-direct
//! convolution crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_fft::conv::RowConvolver;
use ct_fft::{convolve_direct, convolve_fft, Complex, FftPlan};
use std::time::Duration;

fn bench_fft_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_pow2");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), 0.0))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                buf
            });
        });
    }
    group.finish();
}

fn bench_bluestein(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_bluestein");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    for &n in &[255usize, 1000] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).cos(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| ct_fft::fft_any(d));
        });
    }
    group.finish();
}

fn bench_convolution_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolution");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    for &n in &[64usize, 512] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let k: Vec<f64> = (0..2 * n + 1).map(|i| 1.0 / (1.0 + i as f64)).collect();
        group.bench_with_input(BenchmarkId::new("direct", n), &(), |b, _| {
            b.iter(|| convolve_direct(&a, &k));
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &(), |b, _| {
            b.iter(|| convolve_fft(&a, &k));
        });
    }
    group.finish();
}

fn bench_row_convolver(c: &mut Criterion) {
    // The exact per-row hot loop of the filtering stage.
    let mut group = c.benchmark_group("row_convolver");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let n = 2048usize;
    let kernel: Vec<f64> = (0..2 * n + 1).map(|i| (i as f64 * 1e-4).cos()).collect();
    let conv = RowConvolver::new(n, &kernel);
    let mut scratch = conv.make_scratch();
    let row: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("2048_row", |b| {
        b.iter(|| {
            let mut r = row.clone();
            conv.convolve_row_f32(&mut r, &mut scratch);
            r
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft_sizes,
    bench_bluestein,
    bench_convolution_crossover,
    bench_row_convolver
);
criterion_main!(benches);
