//! Criterion benchmarks of the communication substrate: the two
//! collectives iFDK leans on (per-projection AllGather, one sub-volume
//! Reduce), across rank counts and payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_comm::Universe;
use std::time::Duration;

fn bench_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("allgather");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        for &len in &[1024usize, 65536] {
            group.throughput(Throughput::Bytes((ranks * len * 4) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{ranks}ranks"), len),
                &(ranks, len),
                |b, &(ranks, len)| {
                    b.iter(|| {
                        Universe::run(ranks, |comm| {
                            let block = vec![comm.rank() as f32; len];
                            comm.all_gather(&block).len()
                        })
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_sum");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        let len = 65536usize;
        group.throughput(Throughput::Bytes((len * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Universe::run(ranks, |comm| {
                    let data = vec![1.0f32; len];
                    comm.reduce_sum_f32(0, &data).map(|v| v.len())
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_barrier_and_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_collectives");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("barrier_8", |b| {
        b.iter(|| {
            Universe::run(8, |comm| {
                for _ in 0..10 {
                    comm.barrier();
                }
            })
            .unwrap()
        });
    });
    group.bench_function("bcast_8x64k", |b| {
        b.iter(|| {
            Universe::run(8, |comm| {
                let v = if comm.rank() == 0 {
                    Some(vec![7u8; 65536])
                } else {
                    None
                };
                comm.broadcast(0, v).len()
            })
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_allgather,
    bench_reduce,
    bench_barrier_and_bcast
);
criterion_main!(benches);
