//! Criterion benchmarks of the back-projection kernels — the Table 4
//! measurement core (the `table4` binary sweeps all 15 problems; this
//! bench gives high-precision numbers for a representative subset).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_bp::{backproject, BpConfig, KernelVariant};
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_par::Pool;
use ifdk_bench::{geometry_for, synthetic_stack};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let pool = Pool::auto();
    let mut group = c.benchmark_group("backprojection");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    // Three alpha classes: shallow (alpha >> 1), balanced, deep.
    let problems = [
        ReconProblem::new(Dims2::new(128, 128), 64, Dims3::cube(16)).unwrap(),
        ReconProblem::new(Dims2::new(64, 64), 64, Dims3::cube(32)).unwrap(),
        ReconProblem::new(Dims2::new(64, 64), 64, Dims3::new(32, 32, 64)).unwrap(),
    ];
    for problem in problems {
        let geo = geometry_for(&problem);
        let mats = geo.projection_matrices();
        let stack = synthetic_stack(problem.detector, problem.num_projections);
        group.throughput(Throughput::Elements(problem.updates() as u64));
        for variant in KernelVariant::ALL {
            let cfg = BpConfig {
                variant,
                ..BpConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(variant.name(), problem.label()),
                &cfg,
                |b, cfg| {
                    b.iter(|| backproject(&pool, *cfg, &mats, &stack, problem.volume));
                },
            );
        }
    }
    group.finish();
}

fn bench_batch_sizes(c: &mut Criterion) {
    // Ablation: the Listing 1 batch size (in-register accumulation).
    let pool = Pool::auto();
    let mut group = c.benchmark_group("bp_batch_ablation");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    let problem = ReconProblem::new(Dims2::new(64, 64), 64, Dims3::cube(32)).unwrap();
    let geo = geometry_for(&problem);
    let mats = geo.projection_matrices();
    let stack = synthetic_stack(problem.detector, problem.num_projections);
    for batch in [1usize, 4, 16, 32] {
        let cfg = BpConfig {
            variant: KernelVariant::L1Tran,
            batch,
            ..BpConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(batch), &cfg, |b, cfg| {
            b.iter(|| backproject(&pool, *cfg, &mats, &stack, problem.volume));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_batch_sizes);
criterion_main!(benches);
