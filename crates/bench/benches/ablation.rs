//! Ablation bench: where does the proposed kernel's speedup come from?
//!
//! Four kernels, each adding one optimisation (see
//! `ct_bp::ablation`): standard (Alg. 2) -> +layouts -> +column reuse
//! (Theorems 2/3) -> +mirror symmetry (Theorem 1, the full Alg. 4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bp::ablation::{backproject_full_recompute, backproject_no_symmetry};
use ct_bp::{backproject_standard, backproject_warp};
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_par::Pool;
use ifdk_bench::{geometry_for, synthetic_stack};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let pool = Pool::auto();
    let problem = ReconProblem::new(Dims2::new(128, 128), 64, Dims3::cube(64)).unwrap();
    let geo = geometry_for(&problem);
    let mats = geo.projection_matrices();
    let stack = synthetic_stack(problem.detector, problem.num_projections);

    let mut group = c.benchmark_group("ablation");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(problem.updates() as u64));
    group.bench_function("1_standard_alg2", |b| {
        b.iter(|| backproject_standard(&pool, &mats, &stack, problem.volume));
    });
    group.bench_function("2_plus_layouts", |b| {
        b.iter(|| backproject_full_recompute(&pool, &mats, &stack, problem.volume));
    });
    group.bench_function("3_plus_column_reuse", |b| {
        b.iter(|| backproject_no_symmetry(&pool, &mats, &stack, problem.volume));
    });
    group.bench_function("4_plus_symmetry_full_alg4", |b| {
        b.iter(|| backproject_warp(&pool, &mats, &stack, problem.volume));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
