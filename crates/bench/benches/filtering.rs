//! Criterion benchmarks of the filtering stage (`TH_flt` of the model):
//! per-projection cost, scaling with threads, and ramp-window cost parity
//! (the paper: the window "has no effect on the compute intensity").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_core::problem::{Dims2, Dims3};
use ct_core::CbctGeometry;
use ct_filter::{FilterConfig, Filterer, RampKind};
use ct_par::Pool;
use ifdk_bench::synthetic_stack;
use std::time::Duration;

fn bench_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("filtering");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for det in [128usize, 256] {
        let geo = CbctGeometry::standard(Dims2::new(det, det), 16, Dims3::cube(det / 2));
        let filterer = Filterer::new(&geo, FilterConfig::default());
        let stack = synthetic_stack(geo.detector, 16);
        group.throughput(Throughput::Elements((det * det * 16) as u64));
        for threads in [1usize, 4] {
            let pool = Pool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{det}x{det}"), threads),
                &pool,
                |b, pool| {
                    b.iter(|| filterer.filter_stack(pool, &stack));
                },
            );
        }
    }
    group.finish();
}

fn bench_ramp_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("ramp_window_parity");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    let geo = CbctGeometry::standard(Dims2::new(256, 256), 8, Dims3::cube(64));
    let stack = synthetic_stack(geo.detector, 8);
    let pool = Pool::new(2);
    for ramp in RampKind::ALL {
        let filterer = Filterer::new(
            &geo,
            FilterConfig {
                ramp,
                kernel_half_width: None,
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(ramp.name()),
            &filterer,
            |b, f| {
                b.iter(|| f.filter_stack(&pool, &stack));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_filtering, bench_ramp_windows);
criterion_main!(benches);
