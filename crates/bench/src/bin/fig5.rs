//! Regenerates the paper's **Figure 5**: strong and weak scaling of iFDK
//! on up to 2,048 GPUs, as stacked `T_compute` / `T_D2H` / `T_store` /
//! `T_reduce` bars, with both the measured-equivalent (pipeline
//! simulation) and theoretical-peak (analytic model) series.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin fig5            # all four panels
//! cargo run --release -p ifdk-bench --bin fig5 -- a       # one panel
//! ```

use ct_perfmodel::des::{simulate_pipeline, Overheads};
use ct_perfmodel::{ModelBreakdown, ModelInput};
use ifdk::report::RunReport;
use ifdk_bench::{maybe_write_json, print_table};

fn panel(
    name: &str,
    title: &str,
    gpus: &[usize],
    make: impl Fn(usize) -> ModelInput,
    reports: &mut Vec<RunReport>,
) {
    println!("\nFigure 5{name}: {title}");
    let ov = Overheads::default();
    let mut rows = Vec::new();
    for &g in gpus {
        let input = make(g);
        let model = ModelBreakdown::evaluate(&input);
        let sim = simulate_pipeline(&input, &ov);
        let fmt = |x: f64| {
            if x == 0.0 {
                "N/A".to_string()
            } else {
                format!("{x:.1}")
            }
        };
        rows.push(vec![
            g.to_string(),
            format!("{:.1}", sim.t_compute),
            format!("{:.1}", sim.t_d2h),
            format!("{:.1}", sim.t_store),
            fmt(sim.t_reduce),
            format!("{:.1}", model.t_compute),
            format!("{:.1}", model.t_d2h),
            format!("{:.1}", model.t_store),
            fmt(model.t_reduce),
            format!("{:.1}", sim.t_runtime),
        ]);
        let mut r = RunReport::new(&format!("fig5{name}"), &format!("{g} gpus"));
        for (k, v) in [
            ("sim_t_compute", sim.t_compute),
            ("sim_t_d2h", sim.t_d2h),
            ("sim_t_store", sim.t_store),
            ("sim_t_reduce", sim.t_reduce),
            ("model_t_compute", model.t_compute),
            ("model_t_d2h", model.t_d2h),
            ("model_t_store", model.t_store),
            ("model_t_reduce", model.t_reduce),
            ("sim_t_runtime", sim.t_runtime),
        ] {
            r.set(k, v);
        }
        reports.push(r);
    }
    print_table(
        &[
            "GPUs",
            "Tc(sim)",
            "D2H(sim)",
            "store(sim)",
            "reduce(sim)",
            "Tc(peak)",
            "D2H(peak)",
            "store(peak)",
            "reduce(peak)",
            "total(sim)",
        ],
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let mut reports = Vec::new();

    if matches!(which, "all" | "a") {
        panel(
            "a",
            "strong scaling 2048^2x4096 -> 4096^3 (R=32)",
            &[32, 64, 128, 256, 512, 1024, 2048],
            ModelInput::paper_4k,
            &mut reports,
        );
    }
    if matches!(which, "all" | "b") {
        panel(
            "b",
            "strong scaling 2048^2x4096 -> 8192^3 (R=256)",
            &[256, 512, 1024, 2048],
            ModelInput::paper_8k,
            &mut reports,
        );
    }
    if matches!(which, "all" | "c") {
        panel(
            "c",
            "weak scaling 2048^2 x Np -> 4096^3 (Np = 16*gpus, R=32)",
            &[32, 64, 128, 256, 512, 1024, 2048],
            |g| {
                let mut i = ModelInput::paper_4k(g);
                i.np = 16 * g;
                i
            },
            &mut reports,
        );
    }
    if matches!(which, "all" | "d") {
        panel(
            "d",
            "weak scaling 2048^2 x Np -> 8192^3 (Np = 4*gpus, R=256)",
            &[256, 512, 1024, 2048],
            |g| {
                let mut i = ModelInput::paper_8k(g);
                i.np = 4 * g;
                i
            },
            &mut reports,
        );
    }
    println!(
        "\npaper anchors — 5a measured Tc: 70.2/35.6/18.9/10.2/5.6/3.3/2.1; \
         5b: 101.3/53.1/29.7/17.2; 5c Tc ~ 9.9-11.0 flat; 5d Tc ~ 28.9-30.6 flat"
    );
    maybe_write_json(&args, &reports);
}
