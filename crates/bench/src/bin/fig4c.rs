//! Regenerates the paper's **Figure 4c**: the three-thread pipeline
//! timeline for the 4K problem on 128 GPUs (R=32, C=4) — load+filter on
//! the Filtering thread, per-projection AllGathers on the Main thread,
//! H2D + back-projection batches on the BP thread, then D2H, Reduce and
//! Store.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin fig4c [-- --gpus 128]
//! ```

use ct_perfmodel::des::{simulate_pipeline, Overheads};
use ct_perfmodel::ModelInput;
use ifdk_bench::arg_usize;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gpus = arg_usize(&args, "gpus", 128);
    let input = ModelInput::paper_4k(gpus);
    let sim = simulate_pipeline(&input, &Overheads::default());

    println!(
        "Figure 4c: pipeline timeline, 2048^2x4096 -> 4096^3 on {gpus} GPUs (R={}, C={})\n",
        input.r, input.c
    );
    let span = sim.t_runtime;
    let width = 78usize;
    for thread in ["filter", "main", "bp"] {
        let mut lane = vec![b' '; width];
        for seg in &sim.trace.segments {
            if seg.thread != thread {
                continue;
            }
            let a = ((seg.t0 / span) * width as f64) as usize;
            let b = (((seg.t1 / span) * width as f64).ceil() as usize).min(width);
            let ch = match seg.label.as_str() {
                l if l.starts_with("load") => b'F',
                l if l.starts_with("allgather") => b'A',
                l if l.starts_with("h2d") => b'B',
                "d2h" => b'D',
                "reduce" => b'R',
                "store" => b'S',
                _ => b'#',
            };
            for c in lane.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        println!("{:>7} |{}|", thread, String::from_utf8_lossy(&lane));
    }
    println!("{:>7}  0{:>width$.1}s", "", span, width = width);
    println!("\nF=load+filter  A=AllGather  B=H2D+back-projection  D=D2H  R=Reduce  S=Store");
    println!(
        "\nphase totals: filter {:.1}s | allgather {:.1}s | bp {:.1}s | compute {:.1}s",
        sim.t_flt, sim.t_allgather, sim.t_bp, sim.t_compute
    );
    println!(
        "post: d2h {:.1}s | reduce {:.1}s | store {:.1}s | end-to-end {:.1}s ({:.0} GUPS)",
        sim.t_d2h, sim.t_reduce, sim.t_store, sim.t_runtime, sim.gups
    );
    println!(
        "\npaper's example: filter 19s, allgather ~19s span, bp 15s, d2h 4.7s, reduce 4.2s, store 11s"
    );
}
