//! Regenerates the paper's **Figure 6**: end-to-end GUPS versus GPU count
//! for output volumes 2048^3, 4096^3 and 8192^3 (input 2048^2 x 4096).
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin fig6 [-- --json fig6.json]
//! ```

use ct_perfmodel::des::{simulate_pipeline, Overheads};
use ct_perfmodel::{KernelModel, MachineConfig, ModelInput};
use ifdk::report::RunReport;
use ifdk_bench::{maybe_write_json, print_table};

/// Paper Figure 6 anchor points (GUPS).
const PAPER_4096: [(usize, f64); 7] = [
    (32, 3495.0),
    (64, 5851.0),
    (128, 9134.0),
    (256, 13240.0),
    (512, 17361.0),
    (1024, 20480.0),
    (2048, 22599.0),
];

fn input_for(nx: usize, gpus: usize) -> ModelInput {
    // R per the Section 4.1.5 planner: 8 GB sub-volumes.
    let r = match nx {
        2048 => 4,
        4096 => 32,
        _ => 256,
    };
    ModelInput {
        nu: 2048,
        nv: 2048,
        np: 4096,
        nx,
        ny: nx,
        nz: nx,
        r,
        c: gpus / r,
        machine: MachineConfig::abci(),
        kernel: KernelModel::v100_proposed(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ov = Overheads::default();
    println!("Figure 6: end-to-end GUPS vs GPUs (sim; paper anchors in parentheses)\n");

    let gpu_counts = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &g in &gpu_counts {
        let mut row = vec![g.to_string()];
        for nx in [2048usize, 4096, 8192] {
            let input = input_for(nx, g);
            if input.c == 0 || input.validate().is_err() {
                row.push("-".into());
                continue;
            }
            let sim = simulate_pipeline(&input, &ov);
            let anchor = if nx == 4096 {
                PAPER_4096
                    .iter()
                    .find(|&&(pg, _)| pg == g)
                    .map(|&(_, v)| format!(" ({v:.0})"))
                    .unwrap_or_default()
            } else {
                String::new()
            };
            row.push(format!("{:.0}{anchor}", sim.gups));
            let mut r = RunReport::new("fig6", &format!("{nx}^3 @ {g} gpus"));
            r.set("sim_gups", sim.gups);
            r.set("sim_runtime", sim.t_runtime);
            reports.push(r);
        }
        rows.push(row);
    }
    print_table(&["GPUs", "2048^3", "4096^3", "8192^3"], &rows);
    println!(
        "\nshape checks: GUPS grows with GPUs; at fixed GPUs larger outputs \
         reach higher GUPS (the paper's better-device-utilisation point);\n\
         4K @ 2048 GPUs stays under 30 s end-to-end, 8K under 2 min."
    );
    maybe_write_json(&args, &reports);
}
