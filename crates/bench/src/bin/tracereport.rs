//! Critical-path & overlap report over a Chrome trace-event capture.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin tracereport -- trace.json \
//!     [--min-overlap 0.5] [--format text|json] [--record trajectory.jsonl]
//! ```
//!
//! Re-imports the trace with `ct_obs::chrome::parse_trace`, runs
//! `ct_obs::analysis::PipelineAnalysis` over it and prints the report:
//! the critical path through the producer→consumer dependency graph,
//! per-lane busy/stall/idle utilization, ring-stall attribution and the
//! Eq.-19 overlap-efficiency figure (`max_stage / wall`). With
//! `--min-overlap <frac>` the report doubles as a CI gate: overlap
//! efficiency below the threshold fails the check. `--format json`
//! emits the analysis as machine-readable JSON instead of the text
//! report (the same hand-rolled serializer the live metrics frames
//! use), for dashboards and diffing. `--record <path>` appends an
//! `ifdk-run/v1` record (overlap efficiency, wall/critical-path
//! seconds) to the `ct-perfdb` trajectory store so `perfscope` can
//! trend overlap across runs. Exit codes follow `ifdk_bench::check`:
//! 0 ok, 1 gate failed (or unanalyzable trace), 2 unreadable file,
//! 3 usage.

use ifdk_bench::check::{read_input, Gate};
use std::process::ExitCode;

fn run(args: &[String]) -> Gate {
    let usage = "usage: tracereport <trace.json> [--min-overlap <0..=1>] \
                 [--format text|json] [--record <trajectory.jsonl>]";
    let mut path: Option<&str> = None;
    let mut min_overlap: Option<f64> = None;
    let mut json_out = false;
    let mut record: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--record" => {
                let Some(v) = args.get(i + 1) else {
                    return Gate::Usage(format!("--record needs a path\n{usage}"));
                };
                record = Some(v);
                i += 2;
            }
            "--format" => {
                let Some(v) = args.get(i + 1) else {
                    return Gate::Usage(format!("--format needs a value\n{usage}"));
                };
                match v.as_str() {
                    "text" => json_out = false,
                    "json" => json_out = true,
                    other => {
                        return Gate::Usage(format!(
                            "--format must be text or json, got {other:?}\n{usage}"
                        ))
                    }
                }
                i += 2;
            }
            "--min-overlap" => {
                let Some(v) = args.get(i + 1) else {
                    return Gate::Usage(format!("--min-overlap needs a value\n{usage}"));
                };
                match v.parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => min_overlap = Some(f),
                    _ => {
                        return Gate::Usage(format!(
                            "--min-overlap must be a fraction in 0..=1, got {v:?}\n{usage}"
                        ))
                    }
                }
                i += 2;
            }
            a if a.starts_with("--") => {
                return Gate::Usage(format!("unknown flag {a:?}\n{usage}"));
            }
            a => {
                if path.is_some() {
                    return Gate::Usage(usage.into());
                }
                path = Some(a);
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        return Gate::Usage(usage.into());
    };

    let json = match read_input(path) {
        Ok(s) => s,
        Err(g) => return g,
    };
    // The JSON is the artifact under test: a malformed trace is a failed
    // check, not an unreadable input.
    let trace = match ct_obs::chrome::parse_trace(&json) {
        Ok(t) => t,
        Err(e) => return Gate::CheckFailed(format!("{path} is not a valid trace: {e}")),
    };
    let Some(analysis) = ct_obs::PipelineAnalysis::from_trace(&trace) else {
        return Gate::CheckFailed(format!(
            "{path} contains no span events — was the run traced? \
             (Recorder::trace() / --trace)"
        ));
    };

    if json_out {
        println!("{}", analysis.to_json());
    } else {
        println!("{path}:");
        print!("{}", analysis.report());
    }

    if let Some(db) = record {
        let mut r = ct_perfdb::RunRecord::new(
            "tracereport",
            ct_obs::clock::unix_millis(),
            ct_perfdb::MachineInfo::detect(),
        );
        r.set_metric("overlap_efficiency", analysis.overlap_efficiency)
            .set_metric("wall_secs", analysis.wall_ns as f64 * 1e-9)
            .set_metric("max_stage_secs", analysis.max_stage_ns as f64 * 1e-9)
            .set_metric(
                "critical_path_secs",
                analysis.critical_path_ns as f64 * 1e-9,
            )
            .set_metric("lanes", analysis.lanes.len() as f64);
        if let Err(e) = ct_perfdb::PerfDb::append(std::path::Path::new(db), &[r]) {
            return Gate::Unreadable(format!("{db}: {e}"));
        }
        eprintln!("recorded overlap run -> {db}");
    }

    if let Some(min) = min_overlap {
        if !analysis.meets_overlap(min) {
            return Gate::CheckFailed(format!(
                "overlap efficiency {:.3} below required {min:.3}",
                analysis.overlap_efficiency
            ));
        }
        if !json_out {
            println!(
                "\noverlap gate: {:.3} >= {min:.3} OK",
                analysis.overlap_efficiency
            );
        }
    }
    Gate::Ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_obs::{Recorder, ThreadRole};

    fn trace_file(name: &str) -> String {
        let rec = Recorder::trace();
        {
            let t = rec.track(0, ThreadRole::Filter);
            let _cur = ct_obs::current::set_current(&t);
            for i in 0..4u64 {
                let _s = t.span("filter").with_index(i);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let json = ct_obs::chrome::to_chrome_json(&rec.collect());
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, json).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn missing_path_is_usage() {
        assert!(matches!(run(&[]), Gate::Usage(_)));
        let args = vec!["--min-overlap".to_string(), "0.5".to_string()];
        assert!(matches!(run(&args), Gate::Usage(_)));
    }

    #[test]
    fn bad_threshold_is_usage() {
        for bad in ["1.5", "-0.1", "zero"] {
            let args = vec![
                "t.json".to_string(),
                "--min-overlap".to_string(),
                bad.to_string(),
            ];
            assert!(matches!(run(&args), Gate::Usage(_)), "{bad}");
        }
    }

    #[test]
    fn missing_file_is_unreadable() {
        let args = vec!["/nonexistent/ifdk-tracereport-test.json".to_string()];
        assert!(matches!(run(&args), Gate::Unreadable(_)));
    }

    #[test]
    fn malformed_trace_fails_the_check() {
        let path = std::env::temp_dir().join("ifdk-tracereport-bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let gate = run(&[path.to_str().unwrap().to_string()]);
        assert!(matches!(gate, Gate::CheckFailed(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_format_still_gates_and_rejects_unknown_formats() {
        let path = trace_file("ifdk-tracereport-json.json");
        let ok = run(&[
            path.clone(),
            "--format".into(),
            "json".into(),
            "--min-overlap".into(),
            "0.5".into(),
        ]);
        assert_eq!(ok, Gate::Ok);
        let bad = run(&[path.clone(), "--format".into(), "yaml".into()]);
        assert!(matches!(bad, Gate::Usage(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_sink_appends_an_overlap_record() {
        let path = trace_file("ifdk-tracereport-record.json");
        let db = std::env::temp_dir().join("ifdk-tracereport-record.jsonl");
        let _ = std::fs::remove_file(&db);
        let gate = run(&[
            path.clone(),
            "--record".into(),
            db.to_str().unwrap().to_string(),
        ]);
        assert_eq!(gate, Gate::Ok);
        let store = ct_perfdb::PerfDb::load(&db).unwrap();
        assert_eq!(store.records.len(), 1);
        let r = &store.records[0];
        assert_eq!(r.source, "tracereport");
        let eff = r.metric("overlap_efficiency").unwrap();
        assert!((0.0..=1.0).contains(&eff), "{eff}");
        assert!(r.metric("wall_secs").unwrap() > 0.0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn single_lane_trace_passes_a_loose_gate_and_fails_an_impossible_one() {
        let path = trace_file("ifdk-tracereport-ok.json");
        // One lane doing all the work: overlap efficiency is ~1.0.
        let ok = run(&[path.clone(), "--min-overlap".into(), "0.5".into()]);
        assert_eq!(ok, Gate::Ok);
        // No trace can beat a 1.0 threshold by definition unless the
        // pipeline is perfectly collapsed; this one is, so probe with a
        // report-only invocation instead and assert Ok.
        assert_eq!(run(std::slice::from_ref(&path)), Gate::Ok);
        let _ = std::fs::remove_file(&path);
    }
}
