//! Query the cross-run perf trajectory store (`ct-perfdb` JSONL).
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin perfscope -- <db.jsonl> trend \
//!     --metric gups_median [--source gups] [--kernel lanes] [--layout transposed] \
//!     [--threads 1] [--problem '96^3 x 96p'] [--machine self|any|<fingerprint>] \
//!     [--last K] [--format text|json]
//! cargo run --release -p ifdk-bench --bin perfscope -- <db.jsonl> check \
//!     --metric gups_median [--window 8] [--nsigma 4] [--floor 0.05] \
//!     [--direction higher|lower] [--min-runs 3] [filters...]
//! cargo run --release -p ifdk-bench --bin perfscope -- <db.jsonl> baseline \
//!     [--out BENCH_gups_baseline.json] [--last 5] [filters...]
//! ```
//!
//! Three views over the records the `--record` sinks append:
//!
//! * **trend** — the filtered series as a markdown table (or `--format
//!   json`, schema `ifdk-perfdb/trend/v1`) with robust median/MAD
//!   statistics and MAD-based change points (level shifts in either
//!   direction).
//! * **check** — a CI regression gate: judge the latest run against the
//!   median of the preceding `--window` runs; beyond `--nsigma` robust
//!   z-units on the bad side fails. Fewer than `--min-runs` matching
//!   runs passes vacuously so a fresh trajectory can bootstrap.
//! * **baseline** — auto-baseline selection for `benchdiff`: per
//!   (kernel, layout, threads) cell, the median of the last `--last`
//!   `gups` runs on the selected machine, emitted as an ordinary
//!   `ifdk-bench/gups/v1` report.
//!
//! `--machine` defaults to `any` for **trend** (you want to *see*
//! cross-machine history) and `self` for **check**/**baseline** (you
//! never want to gate this box against another box's numbers). Exit
//! codes follow `ifdk_bench::check`: 0 ok, 1 check failed (regression,
//! malformed store, empty selection), 2 unreadable file, 3 usage.

use ct_perfdb::{
    analytics, ChangePoint, Direction, Filter, MachineInfo, PerfDb, RegressionPolicy, RunRecord,
    Verdict,
};
use ifdk_bench::check::Gate;
use ifdk_bench::gups::{GupsCell, GupsReport};
use std::process::ExitCode;

const USAGE: &str = "usage: perfscope <db.jsonl> <trend|check|baseline> [options]\n\
  filters:  --source S --kernel K --layout L --threads N --problem P\n\
            --machine self|any|<fingerprint>\n\
  trend:    --metric NAME [--last K] [--format text|json]\n\
  check:    --metric NAME [--window 8] [--nsigma 4] [--floor 0.05]\n\
            [--direction higher|lower] [--min-runs 3]\n\
  baseline: [--out PATH] [--last 5]";

/// Machine selection: this box, all boxes, or an explicit fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MachineSel {
    SelfMachine,
    Any,
    Fingerprint(String),
}

#[derive(Debug, Clone)]
struct Opts {
    db: String,
    command: String,
    source: Option<String>,
    kernel: Option<String>,
    layout: Option<String>,
    threads: Option<u64>,
    problem: Option<String>,
    machine: Option<MachineSel>,
    metric: Option<String>,
    last: Option<usize>,
    window: usize,
    nsigma: f64,
    floor: f64,
    direction: Direction,
    min_runs: usize,
    json_out: bool,
    out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Opts, Gate> {
    let mut positionals: Vec<&str> = Vec::new();
    let mut opts = Opts {
        db: String::new(),
        command: String::new(),
        source: None,
        kernel: None,
        layout: None,
        threads: None,
        problem: None,
        machine: None,
        metric: None,
        last: None,
        window: 8,
        nsigma: 4.0,
        floor: 0.05,
        direction: Direction::Higher,
        min_runs: 3,
        json_out: false,
        out: None,
    };
    let usage = |msg: String| Gate::Usage(format!("{msg}\n{USAGE}"));
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(flag) = a.strip_prefix("--") {
            let Some(v) = args.get(i + 1) else {
                return Err(usage(format!("--{flag} needs a value")));
            };
            match flag {
                "source" => opts.source = Some(v.clone()),
                "kernel" => opts.kernel = Some(v.clone()),
                "layout" => opts.layout = Some(v.clone()),
                "problem" => opts.problem = Some(v.clone()),
                "metric" => opts.metric = Some(v.clone()),
                "out" => opts.out = Some(v.clone()),
                "threads" => {
                    opts.threads =
                        Some(v.parse::<u64>().map_err(|_| {
                            usage(format!("--threads must be an integer, got {v:?}"))
                        })?)
                }
                "machine" => {
                    opts.machine = Some(match v.as_str() {
                        "self" => MachineSel::SelfMachine,
                        "any" => MachineSel::Any,
                        fp if fp.len() == 16 && fp.chars().all(|c| c.is_ascii_hexdigit()) => {
                            MachineSel::Fingerprint(fp.to_string())
                        }
                        other => {
                            return Err(usage(format!(
                                "--machine must be self, any or a 16-hex fingerprint, got {other:?}"
                            )))
                        }
                    })
                }
                "last" => {
                    let n = v
                        .parse::<usize>()
                        .map_err(|_| usage(format!("--last must be an integer, got {v:?}")))?;
                    if n == 0 {
                        return Err(usage("--last must be at least 1".into()));
                    }
                    opts.last = Some(n);
                }
                "window" => {
                    let n = v
                        .parse::<usize>()
                        .map_err(|_| usage(format!("--window must be an integer, got {v:?}")))?;
                    if n == 0 {
                        return Err(usage("--window must be at least 1".into()));
                    }
                    opts.window = n;
                }
                "min-runs" => {
                    opts.min_runs = v
                        .parse::<usize>()
                        .map_err(|_| usage(format!("--min-runs must be an integer, got {v:?}")))?
                }
                "nsigma" => match v.parse::<f64>() {
                    Ok(f) if f > 0.0 && f.is_finite() => opts.nsigma = f,
                    _ => {
                        return Err(usage(format!(
                            "--nsigma must be a positive number, got {v:?}"
                        )))
                    }
                },
                "floor" => match v.parse::<f64>() {
                    Ok(f) if f >= 0.0 && f.is_finite() => opts.floor = f,
                    _ => {
                        return Err(usage(format!(
                            "--floor must be a non-negative number, got {v:?}"
                        )))
                    }
                },
                "direction" => opts.direction = Direction::parse(v).map_err(usage)?,
                "format" => match v.as_str() {
                    "text" => opts.json_out = false,
                    "json" => opts.json_out = true,
                    other => {
                        return Err(usage(format!(
                            "--format must be text or json, got {other:?}"
                        )))
                    }
                },
                other => return Err(usage(format!("unknown flag --{other}"))),
            }
            i += 2;
        } else {
            positionals.push(a);
            i += 1;
        }
    }
    match positionals.as_slice() {
        [db, cmd] => {
            opts.db = db.to_string();
            opts.command = cmd.to_string();
        }
        _ => return Err(Gate::Usage(USAGE.into())),
    }
    if !matches!(opts.command.as_str(), "trend" | "check" | "baseline") {
        return Err(usage(format!(
            "unknown command {:?} (expected trend, check or baseline)",
            opts.command
        )));
    }
    Ok(opts)
}

/// Resolve the machine selector to a concrete fingerprint filter.
/// `default_self` is the per-command default when `--machine` is absent.
fn resolve_machine(sel: &Option<MachineSel>, default_self: bool) -> Option<String> {
    let sel = sel.clone().unwrap_or(if default_self {
        MachineSel::SelfMachine
    } else {
        MachineSel::Any
    });
    match sel {
        MachineSel::Any => None,
        MachineSel::SelfMachine => Some(MachineInfo::detect().fingerprint()),
        MachineSel::Fingerprint(fp) => Some(fp),
    }
}

fn filter_from(opts: &Opts, default_self: bool) -> Filter {
    Filter {
        source: opts.source.clone(),
        fingerprint: resolve_machine(&opts.machine, default_self),
        kernel: opts.kernel.clone(),
        layout: opts.layout.clone(),
        threads: opts.threads,
        problem: opts.problem.clone(),
    }
}

/// Select, sort chronologically (stable: append order breaks timestamp
/// ties) and optionally truncate to the last K records.
fn select_series<'a>(db: &'a PerfDb, filter: &Filter, last: Option<usize>) -> Vec<&'a RunRecord> {
    let mut recs = db.select(filter);
    recs.sort_by_key(|r| r.t_unix_ms);
    if let Some(k) = last {
        let skip = recs.len().saturating_sub(k);
        recs.drain(..skip);
    }
    recs
}

fn policy_from(opts: &Opts) -> RegressionPolicy {
    RegressionPolicy {
        window: opts.window,
        nsigma: opts.nsigma,
        rel_floor: opts.floor,
        direction: opts.direction,
    }
}

fn cmd_trend(db: &PerfDb, opts: &Opts) -> Gate {
    let Some(metric) = &opts.metric else {
        return Gate::Usage(format!("trend needs --metric\n{USAGE}"));
    };
    let filter = filter_from(opts, false);
    let recs = select_series(db, &filter, opts.last);
    let points: Vec<(&RunRecord, f64)> = recs
        .iter()
        .filter_map(|r| r.metric(metric).map(|v| (*r, v)))
        .collect();
    if points.is_empty() {
        return Gate::CheckFailed(format!(
            "no records matching the filter carry metric {metric:?} \
             ({} records matched the filter)",
            recs.len()
        ));
    }
    let values: Vec<f64> = points.iter().map(|(_, v)| *v).collect();
    let med = analytics::median(&values).unwrap_or(0.0);
    let dev = analytics::mad(&values).unwrap_or(0.0);
    let latest = *values.last().unwrap_or(&0.0);
    let cps = analytics::change_points(&values, &policy_from(opts));

    if opts.json_out {
        println!("{}", trend_json(metric, &points, med, dev, latest, &cps));
        return Gate::Ok;
    }

    println!("## perf trend: {metric}\n");
    println!("| # | t_unix_ms | machine | config | {metric} |");
    println!("|---|-----------|---------|--------|----------|");
    for (i, (r, v)) in points.iter().enumerate() {
        let shift = cps.iter().find(|c| c.index == i);
        let mark = match shift {
            Some(c) if c.z > 0.0 => " ▲",
            Some(_) => " ▼",
            None => "",
        };
        println!(
            "| {i} | {} | {} | {} | {v}{mark} |",
            r.t_unix_ms,
            r.fingerprint(),
            config_key(r),
        );
    }
    println!(
        "\nn={} median={med} mad={dev} latest={latest} change_points={}",
        points.len(),
        cps.len()
    );
    for c in &cps {
        println!(
            "  shift at #{}: {} (baseline {}, z {:+.1})",
            c.index, c.value, c.baseline, c.z
        );
    }
    Gate::Ok
}

fn config_key(r: &RunRecord) -> String {
    let c = &r.config;
    let mut key = String::new();
    if !c.kernel.is_empty() || !c.layout.is_empty() {
        key.push_str(&format!("{}/{}", c.kernel, c.layout));
    }
    if c.threads > 0 {
        key.push_str(&format!("@{}", c.threads));
    }
    if !c.problem.is_empty() {
        if !key.is_empty() {
            key.push(' ');
        }
        key.push_str(&c.problem);
    }
    if key.is_empty() {
        key.push_str(&r.source);
    }
    key
}

fn trend_json(
    metric: &str,
    points: &[(&RunRecord, f64)],
    median: f64,
    mad: f64,
    latest: f64,
    cps: &[ChangePoint],
) -> String {
    use ct_obs::jsonw::{arr, Obj};
    let pts = arr(points.iter().map(|(r, v)| {
        let mut o = Obj::new();
        o.field_u64("t_unix_ms", r.t_unix_ms)
            .field_str("fingerprint", &r.fingerprint())
            .field_str("config", &config_key(r))
            .field_f64("value", *v);
        o.finish()
    }));
    let shifts = arr(cps.iter().map(|c| {
        let mut o = Obj::new();
        o.field_u64("index", c.index as u64)
            .field_f64("value", c.value)
            .field_f64("baseline", c.baseline)
            .field_f64("z", c.z);
        o.finish()
    }));
    let mut o = Obj::new();
    o.field_str("schema", "ifdk-perfdb/trend/v1")
        .field_str("metric", metric)
        .field_u64("n", points.len() as u64)
        .field_f64("median", median)
        .field_f64("mad", mad)
        .field_f64("latest", latest)
        .field_raw("points", &pts)
        .field_raw("change_points", &shifts);
    o.finish()
}

fn cmd_check(db: &PerfDb, opts: &Opts) -> Gate {
    let Some(metric) = &opts.metric else {
        return Gate::Usage(format!("check needs --metric\n{USAGE}"));
    };
    let filter = filter_from(opts, true);
    let recs = select_series(db, &filter, None);
    let values: Vec<f64> = recs.iter().filter_map(|r| r.metric(metric)).collect();
    if values.len() < opts.min_runs {
        println!(
            "perfscope check: only {} run(s) with {metric:?} on this selection \
             (< --min-runs {}): passing vacuously while the trajectory bootstraps",
            values.len(),
            opts.min_runs
        );
        return Gate::Ok;
    }
    let policy = policy_from(opts);
    let Some(v) = analytics::check_latest(&values, &policy) else {
        println!("perfscope check: series too short to judge; passing");
        return Gate::Ok;
    };
    print_verdict(metric, &v, &policy);
    if v.regressed {
        Gate::CheckFailed(format!(
            "{metric} regressed: latest {} vs baseline {} over {} run(s) \
             (bound {}, {:.1} robust sigma)",
            v.latest, v.baseline, v.n, v.bound, opts.nsigma
        ))
    } else {
        Gate::Ok
    }
}

fn print_verdict(metric: &str, v: &Verdict, policy: &RegressionPolicy) {
    let dir = match policy.direction {
        Direction::Higher => "higher-is-better",
        Direction::Lower => "lower-is-better",
    };
    println!(
        "perfscope check: {metric} ({dir}) latest {} vs baseline {} \
         (window {}, mad {}, scale {}, bound {}) -> {}",
        v.latest,
        v.baseline,
        v.n,
        v.mad,
        v.scale,
        v.bound,
        if v.regressed { "REGRESSED" } else { "ok" }
    );
}

fn cmd_baseline(db: &PerfDb, opts: &Opts) -> Gate {
    let filter = Filter {
        // Auto-baselines are always built from gups sweep records.
        source: Some("gups".to_string()),
        ..filter_from(opts, true)
    };
    let recs = select_series(db, &filter, None);
    if recs.is_empty() {
        return Gate::CheckFailed(
            "no gups records match the filter — run `gups --record <db>` first \
             (or widen --machine)"
                .into(),
        );
    }
    // Pin the problem size to the latest record's unless the caller
    // filtered explicitly: baselining mixed problem sizes would compare
    // incomparable GUPS.
    let problem = match &opts.problem {
        Some(p) => p.clone(),
        None => recs
            .last()
            .map(|r| r.config.problem.clone())
            .unwrap_or_default(),
    };
    let recs: Vec<&RunRecord> = recs
        .into_iter()
        .filter(|r| r.config.problem == problem)
        .collect();

    let last_k = opts.last.unwrap_or(5);
    // Group by cell coordinates, preserving first-seen order so the
    // emitted report is deterministic.
    let mut keys: Vec<(String, String, u64)> = Vec::new();
    for r in &recs {
        let k = (
            r.config.kernel.clone(),
            r.config.layout.clone(),
            r.config.threads,
        );
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let mut cells = Vec::new();
    let mut updates_all: Vec<f64> = Vec::new();
    for (kernel, layout, threads) in keys {
        let group: Vec<&&RunRecord> = recs
            .iter()
            .filter(|r| {
                r.config.kernel == kernel
                    && r.config.layout == layout
                    && r.config.threads == threads
            })
            .collect();
        let tail = &group[group.len().saturating_sub(last_k)..];
        let col = |name: &str| -> Vec<f64> { tail.iter().filter_map(|r| r.metric(name)).collect() };
        let gups_median = match analytics::median(&col("gups_median")) {
            Some(m) => m,
            None => continue,
        };
        updates_all.extend(col("updates"));
        cells.push(GupsCell {
            kernel,
            layout,
            threads: threads as usize,
            repeats: analytics::median(&col("repeats")).unwrap_or(0.0) as usize,
            gups_median,
            gups_mad: analytics::median(&col("gups_mad")).unwrap_or(0.0),
            secs_median: analytics::median(&col("secs_median")).unwrap_or(0.0),
        });
    }
    if cells.is_empty() {
        return Gate::CheckFailed(format!(
            "matching gups records for problem {problem:?} carry no gups_median metric"
        ));
    }
    let report = GupsReport {
        problem,
        updates: analytics::median(&updates_all).unwrap_or(0.0) as u128,
        machine: recs.last().map(|r| r.machine.clone()),
        cells,
    };
    let json = report.to_json();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                return Gate::Unreadable(format!("{path}: {e}"));
            }
            eprintln!(
                "perfscope baseline: {} cell(s) (median of last {last_k} per cell) -> {path}",
                report.cells.len()
            );
        }
        None => print!("{json}"),
    }
    Gate::Ok
}

fn run(args: &[String]) -> Gate {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(g) => return g,
    };
    if !std::path::Path::new(&opts.db).exists() {
        return Gate::Unreadable(format!("{}: no such file", opts.db));
    }
    // The store is the artifact under test: unreadable bytes are I/O
    // (exit 2), a malformed record is a failed check (exit 1).
    let text = match ifdk_bench::check::read_input(&opts.db) {
        Ok(t) => t,
        Err(g) => return g,
    };
    let db = match PerfDb::from_jsonl(&text) {
        Ok(db) => db,
        Err(e) => return Gate::CheckFailed(format!("{}: {e}", opts.db)),
    };
    match opts.command.as_str() {
        "trend" => cmd_trend(&db, &opts),
        "check" => cmd_check(&db, &opts),
        "baseline" => cmd_baseline(&db, &opts),
        _ => Gate::Usage(USAGE.into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_perfdb::RunConfig;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn record(t: u64, kernel: &str, threads: u64, gups: f64) -> RunRecord {
        let mut r = RunRecord::new("gups", t, MachineInfo::detect());
        r.config = RunConfig {
            kernel: kernel.into(),
            layout: "transposed".into(),
            threads,
            problem: "16^3 x 8p".into(),
            ..RunConfig::default()
        };
        r.set_metric("gups_median", gups)
            .set_metric("gups_mad", 0.002)
            .set_metric("secs_median", 0.5)
            .set_metric("repeats", 3.0)
            .set_metric("updates", 32768.0);
        r
    }

    fn write_db(name: &str, records: &[RunRecord]) -> String {
        let path = std::env::temp_dir().join(name);
        let _ = std::fs::remove_file(&path);
        PerfDb::append(&path, records).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&args(&[])), Gate::Usage(_)));
        assert!(matches!(run(&args(&["db.jsonl"])), Gate::Usage(_)));
        assert!(matches!(
            run(&args(&["db.jsonl", "frobnicate"])),
            Gate::Usage(_)
        ));
        assert!(matches!(
            run(&args(&["db.jsonl", "trend", "--machine", "bogus!"])),
            Gate::Usage(_)
        ));
        assert!(matches!(
            run(&args(&["db.jsonl", "check", "--direction", "sideways"])),
            Gate::Usage(_)
        ));
        assert!(matches!(
            run(&args(&["db.jsonl", "trend", "--last", "0"])),
            Gate::Usage(_)
        ));
    }

    #[test]
    fn missing_db_is_unreadable_malformed_db_fails_check() {
        let gate = run(&args(&[
            "/nonexistent/ifdk-perfscope.jsonl",
            "trend",
            "--metric",
            "gups_median",
        ]));
        assert!(matches!(gate, Gate::Unreadable(_)));

        let path = std::env::temp_dir().join("ifdk-perfscope-malformed.jsonl");
        std::fs::write(&path, "{not a record\n").unwrap();
        let gate = run(&args(&[
            path.to_str().unwrap(),
            "trend",
            "--metric",
            "gups_median",
        ]));
        assert!(matches!(gate, Gate::CheckFailed(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_passes_clean_flags_regression_bootstraps_when_short() {
        let mut recs: Vec<RunRecord> = (0..6)
            .map(|i| record(1000 + i, "lanes", 1, 0.20 + 0.002 * (i % 3) as f64))
            .collect();
        let db = write_db("ifdk-perfscope-clean.jsonl", &recs);
        let ok = run(&args(&[&db, "check", "--metric", "gups_median"]));
        assert_eq!(ok, Gate::Ok);

        // Inject a collapse as the latest run.
        recs.push(record(2000, "lanes", 1, 0.09));
        let db = write_db("ifdk-perfscope-regressed.jsonl", &recs);
        let bad = run(&args(&[&db, "check", "--metric", "gups_median"]));
        assert!(matches!(bad, Gate::CheckFailed(_)), "{bad:?}");

        // Two runs < --min-runs 3: vacuous pass for bootstrapping.
        let db = write_db("ifdk-perfscope-short.jsonl", &recs[..2]);
        let ok = run(&args(&[&db, "check", "--metric", "gups_median"]));
        assert_eq!(ok, Gate::Ok);
    }

    #[test]
    fn check_filters_out_other_kernels() {
        // The warp series collapses; the lanes series (the one under
        // check) is steady — the filter must keep them apart.
        let mut recs: Vec<RunRecord> = (0..5).map(|i| record(1000 + i, "lanes", 1, 0.20)).collect();
        recs.extend((0..5).map(|i| record(1000 + i, "warp", 1, if i == 4 { 0.01 } else { 0.15 })));
        let db = write_db("ifdk-perfscope-filtered.jsonl", &recs);
        let ok = run(&args(&[
            &db,
            "check",
            "--metric",
            "gups_median",
            "--kernel",
            "lanes",
        ]));
        assert_eq!(ok, Gate::Ok);
        let bad = run(&args(&[
            &db,
            "check",
            "--metric",
            "gups_median",
            "--kernel",
            "warp",
        ]));
        assert!(matches!(bad, Gate::CheckFailed(_)));
    }

    #[test]
    fn trend_reports_and_fails_on_empty_selection() {
        let recs: Vec<RunRecord> = (0..4)
            .map(|i| record(1000 + i, "lanes", 1, 0.2 + i as f64 * 0.001))
            .collect();
        let db = write_db("ifdk-perfscope-trend.jsonl", &recs);
        let ok = run(&args(&[
            &db,
            "trend",
            "--metric",
            "gups_median",
            "--format",
            "json",
        ]));
        assert_eq!(ok, Gate::Ok);
        let none = run(&args(&[&db, "trend", "--metric", "no_such_metric"]));
        assert!(matches!(none, Gate::CheckFailed(_)));
    }

    #[test]
    fn trend_json_shape() {
        let recs: Vec<(&RunRecord, f64)> = vec![];
        // Shape check goes through the real path: build a series and
        // parse the writer's output.
        drop(recs);
        let r1 = record(1, "lanes", 1, 0.2);
        let r2 = record(2, "lanes", 1, 0.21);
        let pts = vec![(&r1, 0.2), (&r2, 0.21)];
        let j = trend_json("gups_median", &pts, 0.205, 0.005, 0.21, &[]);
        let v = ct_obs::chrome::json::parse(&j).unwrap();
        assert_eq!(
            v.get("schema").and_then(|x| x.as_str()),
            Some("ifdk-perfdb/trend/v1")
        );
        assert_eq!(v.get("n").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(
            v.get("points").and_then(|x| x.as_array()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn baseline_emits_a_gups_report_benchdiff_can_parse() {
        let mut recs: Vec<RunRecord> = Vec::new();
        for t in 0..7u64 {
            // Early noisy era, then a steady level the median should pick.
            let g = if t < 2 { 0.10 } else { 0.20 };
            recs.push(record(1000 + t, "lanes", 1, g));
            recs.push(record(1000 + t, "warp", 1, 0.15));
        }
        let db = write_db("ifdk-perfscope-baseline.jsonl", &recs);
        let out = std::env::temp_dir().join("ifdk-perfscope-baseline-out.json");
        let _ = std::fs::remove_file(&out);
        let gate = run(&args(&[
            &db,
            "baseline",
            "--out",
            out.to_str().unwrap(),
            "--last",
            "5",
        ]));
        assert_eq!(gate, Gate::Ok);
        let report = GupsReport::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(report.problem, "16^3 x 8p");
        assert_eq!(report.cells.len(), 2);
        let lanes = report.find("lanes", "transposed", 1).unwrap();
        // Median of the last 5 (0.20 x5): the noisy bootstrap era aged out.
        assert_eq!(lanes.gups_median, 0.20);
        assert!(report.machine.is_some());
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn baseline_with_no_records_fails_check() {
        let db = write_db("ifdk-perfscope-empty.jsonl", &[]);
        let gate = run(&args(&[&db, "baseline"]));
        assert!(matches!(gate, Gate::CheckFailed(_)));
    }
}
