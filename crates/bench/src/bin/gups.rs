//! GUPS sweep over kernel x layout x thread count.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin gups -- \
//!     [--quick] [--size N] [--np N] [--repeats R] [--json BENCH_gups.json] \
//!     [--record perf_trajectory.jsonl]
//! ```
//!
//! Back-projects a synthetic stack with every kernel (`standard`,
//! `proposed`, `warp`, `lanes`, `lanes-fma`, `tiled`), every projection
//! layout the kernel supports (`rowmajor`, `transposed`, `blocked`) and
//! pool widths 1/2/4, reporting median and median-absolute-deviation
//! GUPS over warmed-up repeats (Section 5.3.3's metric). `--json`
//! writes the machine-readable report `benchdiff` consumes (with
//! machine provenance in the header); `--record` appends one
//! `ifdk-run/v1` record per cell to the perf trajectory store
//! (`perfscope` queries it); `--quick` shrinks the problem and the
//! layout sweep for CI smoke runs.

use ct_bp::lanes::{backproject_lanes_with, LaneMode, LaneSampler, LanesBlocking};
use ct_bp::tiled::{backproject_tiled_with, TileConfig};
use ct_bp::warp::{backproject_warp_with, WARP_BATCH};
use ct_bp::{backproject_proposed, backproject_standard};
use ct_core::geometry::ProjectionMatrix;
use ct_core::metrics::gups;
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_core::volume::Volume;
use ct_par::Pool;
use ifdk_bench::gups::{mad, median, GupsCell, GupsReport, MachineInfo};
use ifdk_bench::{arg_usize, geometry_for, print_table, synthetic_stack};
use std::time::Instant;

/// A named back-projection run the sweep can time on any pool width.
type KernelRun<'a> = (&'a str, &'a dyn Fn(&Pool) -> Volume);

/// Time one kernel closure: one discarded warmup, then `repeats` measured
/// runs, folded into a [`GupsCell`].
fn measure<F: FnMut() -> Volume>(
    kernel: &str,
    layout: &str,
    threads: usize,
    repeats: usize,
    updates: u128,
    mut run: F,
    sink: &mut f64,
) -> GupsCell {
    let mut secs = Vec::with_capacity(repeats + 1);
    for rep in 0..=repeats {
        let t0 = Instant::now();
        let vol = run();
        let dt = t0.elapsed().as_secs_f64();
        *sink += vol.data()[0] as f64;
        if rep > 0 {
            secs.push(dt);
        }
    }
    let secs_median = median(&secs);
    let rates: Vec<f64> = secs.iter().map(|&s| gups(updates, s)).collect();
    let gups_median = median(&rates);
    GupsCell {
        kernel: kernel.into(),
        layout: layout.into(),
        threads,
        repeats,
        gups_median,
        gups_mad: mad(&rates, gups_median),
        secs_median,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let size = arg_usize(&args, "size", if quick { 48 } else { 96 });
    let np = arg_usize(&args, "np", size);
    let repeats = arg_usize(&args, "repeats", if quick { 3 } else { 5 });
    let thread_counts = [1usize, 2, 4];

    let problem = ReconProblem::new(Dims2::new(2 * size, 2 * size), np, Dims3::cube(size))
        .expect("valid benchmark dims");
    let geo = geometry_for(&problem);
    let stack = synthetic_stack(geo.detector, np);
    let mats: Vec<ProjectionMatrix> = geo.projection_matrices();
    let dims = geo.volume;
    let nv = geo.detector.nv;
    let updates = problem.updates();

    // Pre-build every projection layout once; the sweep only times kernels.
    let rowmajor: Vec<_> = stack.iter().cloned().collect();
    let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
    let blocked: Vec<_> = stack.iter().map(|p| p.blocked()).collect();

    eprintln!(
        "gups: problem {} ({updates} updates/run), repeats {repeats}+1 warmup",
        problem.label()
    );

    let mut cells: Vec<GupsCell> = Vec::new();
    let mut sink = 0.0f64;
    for &t in &thread_counts {
        let pool = Pool::new(t);
        cells.push(measure(
            "standard",
            "rowmajor",
            t,
            repeats,
            updates,
            || backproject_standard(&pool, &mats, &stack, dims),
            &mut sink,
        ));
        cells.push(measure(
            "proposed",
            "transposed",
            t,
            repeats,
            updates,
            || backproject_proposed(&pool, &mats, &stack, dims),
            &mut sink,
        ));
        let mut batched: Vec<KernelRun> = vec![];
        let warp_t = |p: &Pool| backproject_warp_with(p, &mats, &transposed, nv, dims, WARP_BATCH);
        let tiled_t = |p: &Pool| {
            backproject_tiled_with(
                p,
                &mats,
                &transposed,
                nv,
                dims,
                WARP_BATCH,
                TileConfig::AUTO,
            )
        };
        let lane_strict: Vec<LaneSampler> = transposed
            .iter()
            .map(|q| LaneSampler::new(q, LaneMode::Strict))
            .collect();
        let lane_fma: Vec<LaneSampler> = transposed
            .iter()
            .map(|q| LaneSampler::new(q, LaneMode::Fma))
            .collect();
        let lanes_t = |p: &Pool| {
            backproject_lanes_with(
                p,
                &mats,
                &lane_strict,
                nv,
                dims,
                WARP_BATCH,
                LanesBlocking::default(),
            )
        };
        let lanes_f = |p: &Pool| {
            backproject_lanes_with(
                p,
                &mats,
                &lane_fma,
                nv,
                dims,
                WARP_BATCH,
                LanesBlocking::default(),
            )
        };
        batched.push(("warp/transposed", &warp_t));
        batched.push(("lanes/transposed", &lanes_t));
        batched.push(("lanes-fma/transposed", &lanes_f));
        batched.push(("tiled/transposed", &tiled_t));
        // The full sweep also covers the layouts the paper rejects
        // (Table 3's untransposed and texture-blocked accesses).
        let warp_r = |p: &Pool| backproject_warp_with(p, &mats, &rowmajor, nv, dims, WARP_BATCH);
        let warp_b = |p: &Pool| backproject_warp_with(p, &mats, &blocked, nv, dims, WARP_BATCH);
        let tiled_r = |p: &Pool| {
            backproject_tiled_with(p, &mats, &rowmajor, nv, dims, WARP_BATCH, TileConfig::AUTO)
        };
        let tiled_b = |p: &Pool| {
            backproject_tiled_with(p, &mats, &blocked, nv, dims, WARP_BATCH, TileConfig::AUTO)
        };
        if !quick {
            batched.push(("warp/rowmajor", &warp_r));
            batched.push(("warp/blocked", &warp_b));
            batched.push(("tiled/rowmajor", &tiled_r));
            batched.push(("tiled/blocked", &tiled_b));
        }
        for (key, run) in batched {
            let (kernel, layout) = key.split_once('/').expect("kernel/layout key");
            cells.push(measure(
                kernel,
                layout,
                t,
                repeats,
                updates,
                || run(&pool),
                &mut sink,
            ));
        }
    }

    let report = GupsReport {
        problem: problem.label(),
        updates,
        machine: Some(MachineInfo::detect()),
        cells,
    };

    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.kernel.clone(),
                c.layout.clone(),
                c.threads.to_string(),
                format!("{:.4}", c.gups_median),
                format!("{:.4}", c.gups_mad),
                format!("{:.4}", c.secs_median),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "layout",
            "threads",
            "GUPS(med)",
            "GUPS(mad)",
            "secs(med)",
        ],
        &rows,
    );

    // The headline comparison: blocked parallel driver vs the serial
    // Algorithm 2 baseline.
    if let (Some(tiled), Some(base)) = (
        report.find("tiled", "transposed", 4),
        report.find("standard", "rowmajor", 1),
    ) {
        eprintln!(
            "tiled/transposed@4 vs standard/rowmajor@1: {:.2}x",
            tiled.gups_median / base.gups_median
        );
    }
    // The kernel-generation comparison: lane-array vs scalar warp,
    // single thread (no scheduler noise).
    if let (Some(lanes), Some(warp)) = (
        report.find("lanes", "transposed", 1),
        report.find("warp", "transposed", 1),
    ) {
        eprintln!(
            "lanes/transposed@1 vs warp/transposed@1: {:+.1}%",
            (lanes.gups_median / warp.gups_median - 1.0) * 100.0
        );
    }
    eprintln!("(checksum {sink:.3e})");

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            std::fs::write(path, report.to_json()).expect("write gups json");
            eprintln!("wrote {path}");
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "--record") {
        if let Some(path) = args.get(pos + 1) {
            let records = report.run_records(ct_obs::clock::unix_millis());
            ct_perfdb::PerfDb::append(std::path::Path::new(path), &records)
                .expect("append perf trajectory");
            eprintln!("recorded {} run(s) -> {path}", records.len());
        }
    }
}
