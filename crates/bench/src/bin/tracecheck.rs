//! Validate a Chrome trace-event capture produced by `ct-obs`.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin tracecheck -- trace.json \
//!     [--threads filter,main,backprojection] [--spans load,allgather]
//! ```
//!
//! Parses the file with `ct_obs`'s own JSON reader, checks the
//! trace-event invariants (every `X` event carries `ph`/`ts`/`dur`/
//! `pid`/`tid`/`name`), and optionally requires named thread lanes and
//! span names to be present. Exit codes follow `ifdk_bench::check`:
//! 0 valid, 1 invalid/incomplete trace, 2 unreadable file, 3 usage.

use ifdk_bench::check::{read_input, Gate};
use std::process::ExitCode;

fn csv_arg(args: &[String], key: &str) -> Vec<String> {
    args.windows(2)
        .find(|w| w[0] == format!("--{key}"))
        .map(|w| w[1].split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default()
}

fn run(args: &[String]) -> Gate {
    let Some(path) = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || !args[i - 1].starts_with("--")))
        .map(|(_, a)| a.clone())
    else {
        return Gate::Usage("usage: tracecheck <trace.json> [--threads a,b] [--spans x,y]".into());
    };

    let json = match read_input(&path) {
        Ok(s) => s,
        Err(g) => return g,
    };
    // The JSON itself is the artifact under test here, so a parse failure
    // is a failed check, not an unreadable input.
    let check = match ct_obs::chrome::validate(&json) {
        Ok(c) => c,
        Err(e) => return Gate::CheckFailed(format!("{path} is not a valid trace: {e}")),
    };

    println!(
        "{path}: {} span events, {} ranks, thread lanes [{}], {} span names",
        check.span_events,
        check.ranks.len(),
        check.thread_names.join(", "),
        check.span_names.len()
    );

    let mut problems: Vec<String> = Vec::new();
    for t in csv_arg(args, "threads") {
        if !check.has_thread(&t) {
            problems.push(format!("required thread lane {t:?} missing"));
        }
    }
    for s in csv_arg(args, "spans") {
        if !check.has_span(&s) {
            problems.push(format!("required span {s:?} missing"));
        }
    }
    if check.span_events == 0 {
        problems.push("trace contains no span events".into());
    }
    if problems.is_empty() {
        println!("OK");
        Gate::Ok
    } else {
        for p in &problems {
            eprintln!("tracecheck: {p}");
        }
        Gate::CheckFailed(format!("{} problems in {path}", problems.len()))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}
