//! Validate a Chrome trace-event capture produced by `ct-obs`.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin tracecheck -- trace.json \
//!     [--threads filter,main,backprojection] [--spans load,allgather]
//! ```
//!
//! Parses the file with `ct_obs`'s own JSON reader, checks the
//! trace-event invariants (every `X` event carries `ph`/`ts`/`dur`/
//! `pid`/`tid`/`name`), and optionally requires named thread lanes and
//! span names to be present. Exits nonzero on any violation, so CI can
//! smoke-test the distributed example's `--trace` output.

use std::process::ExitCode;

fn csv_arg(args: &[String], key: &str) -> Vec<String> {
    args.windows(2)
        .find(|w| w[0] == format!("--{key}"))
        .map(|w| w[1].split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || !args[i - 1].starts_with("--")))
        .map(|(_, a)| a.clone())
    else {
        eprintln!("usage: tracecheck <trace.json> [--threads a,b] [--spans x,y]");
        return ExitCode::from(2);
    };

    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let check = match ct_obs::chrome::validate(&json) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tracecheck: {path} is not a valid trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{path}: {} span events, {} ranks, thread lanes [{}], {} span names",
        check.span_events,
        check.ranks.len(),
        check.thread_names.join(", "),
        check.span_names.len()
    );

    let mut ok = true;
    for t in csv_arg(&args, "threads") {
        if !check.has_thread(&t) {
            eprintln!("tracecheck: required thread lane {t:?} missing");
            ok = false;
        }
    }
    for s in csv_arg(&args, "spans") {
        if !check.has_span(&s) {
            eprintln!("tracecheck: required span {s:?} missing");
            ok = false;
        }
    }
    if check.span_events == 0 {
        eprintln!("tracecheck: trace contains no span events");
        ok = false;
    }
    if ok {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
