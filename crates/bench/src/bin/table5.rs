//! Regenerates the paper's **Table 5**: breakdown of `T_compute`
//! (`T_flt`, `T_AllGather`, `T_bp`, `delta`) for the 4K and 8K strong
//! scaling, from the calibrated performance model + pipeline simulator.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin table5 [-- --json table5.json]
//! ```

use ct_perfmodel::des::{simulate_pipeline, Overheads};
use ct_perfmodel::ModelInput;
use ifdk::report::RunReport;
use ifdk_bench::{maybe_write_json, print_table};

// Paper Table 5, measured on ABCI (volume, gpus, t_flt, t_ag, t_bp, t_compute, delta).
const PAPER: [(&str, usize, f64, f64, f64, f64, f64); 8] = [
    ("4096^3", 32, 1.4, 31.4, 54.8, 70.2, 1.2),
    ("4096^3", 64, 0.8, 20.7, 27.5, 35.6, 1.4),
    ("4096^3", 128, 0.7, 15.2, 14.0, 18.9, 1.6),
    ("4096^3", 256, 0.7, 7.4, 7.0, 10.2, 1.5),
    ("8192^3", 256, 0.7, 46.9, 83.0, 101.3, 1.3),
    ("8192^3", 512, 0.7, 26.9, 41.5, 53.1, 1.3),
    ("8192^3", 1024, 0.7, 17.0, 20.8, 29.7, 1.3),
    ("8192^3", 2048, 0.7, 8.6, 10.4, 17.2, 1.2),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ov = Overheads::default();
    println!("Table 5: T_compute breakdown — paper (measured) vs this reproduction (simulated)\n");

    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for (vol, gpus, p_flt, p_ag, p_bp, p_tc, p_delta) in PAPER {
        let input = if vol == "4096^3" {
            ModelInput::paper_4k(gpus)
        } else {
            ModelInput::paper_8k(gpus)
        };
        let sim = simulate_pipeline(&input, &ov);
        rows.push(vec![
            vol.to_string(),
            gpus.to_string(),
            format!("{p_flt:.1} / {:.1}", sim.t_flt),
            format!("{p_ag:.1} / {:.1}", sim.t_allgather),
            format!("{p_bp:.1} / {:.1}", sim.t_bp),
            format!("{p_tc:.1} / {:.1}", sim.t_compute),
            format!("{p_delta:.1} / {:.1}", sim.delta),
        ]);
        let mut r = RunReport::new("table5", &format!("{vol}@{gpus}"));
        r.set("paper_t_compute", p_tc);
        r.set("sim_t_compute", sim.t_compute);
        r.set("paper_t_bp", p_bp);
        r.set("sim_t_bp", sim.t_bp);
        r.set("paper_t_allgather", p_ag);
        r.set("sim_t_allgather", sim.t_allgather);
        r.set("paper_delta", p_delta);
        r.set("sim_delta", sim.delta);
        reports.push(r);
    }
    print_table(
        &[
            "volume",
            "GPUs",
            "T_flt (p/s)",
            "T_AllGather (p/s)",
            "T_bp (p/s)",
            "T_compute (p/s)",
            "delta (p/s)",
        ],
        &rows,
    );
    println!("\n(p = paper measured, s = this simulator; delta > 1 means the overlap pays off)");
    maybe_write_json(&args, &reports);
}
