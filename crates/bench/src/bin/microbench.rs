//! The Section 4.2.1 micro-benchmarks, run against *this* machine's
//! substrates: filtering throughput (`TH_flt`), back-projection
//! throughput (`TH_bp`), AllGather and Reduce throughput, and PFS
//! bandwidth — the constants a `MachineConfig` for this host would use.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin microbench [-- --size 64]
//! ```

use ct_bp::{backproject, BpConfig};
use ct_core::metrics::gups;
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_filter::{FilterConfig, Filterer};
use ct_par::Pool;
use ct_pfs::PfsStore;
use ifdk::report::RunReport;
use ifdk_bench::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 64);
    let pool = Pool::auto();
    println!(
        "micro-benchmarks on this host ({} threads) — the paper's Section 4.2.1 table\n",
        pool.threads()
    );
    let mut rows = Vec::new();
    let mut reports = Vec::new();

    // TH_flt: projections filtered per second (detector 2n x 2n).
    let det = Dims2::new(2 * n, 2 * n);
    let np = 64;
    let geo = ct_core::CbctGeometry::standard(det, np, Dims3::cube(n));
    let stack = synthetic_stack(det, np);
    let filterer = Filterer::new(&geo, FilterConfig::default());
    let t = Instant::now();
    let filtered = filterer.filter_stack(&pool, &stack);
    let secs = t.elapsed().as_secs_f64();
    let th_flt = np as f64 / secs;
    rows.push(vec![
        "TH_flt".into(),
        format!("{th_flt:.1} proj/s"),
        format!("{}x{} detector", det.nu, det.nv),
    ]);
    reports.push(RunReport::new("microbench", "th_flt").with("value", th_flt));

    // TH_bp: kernel GUPS on an n^3 volume (the paper's ~200 GUPS row).
    let problem = ReconProblem::new(det, np, Dims3::cube(n)).unwrap();
    let mats = geo.projection_matrices();
    let t = Instant::now();
    let _vol = backproject(&pool, BpConfig::default(), &mats, &filtered, problem.volume);
    let secs = t.elapsed().as_secs_f64();
    let th_bp = gups(problem.updates(), secs);
    rows.push(vec![
        "TH_bp".into(),
        format!("{th_bp:.2} GUPS"),
        format!("{} (L1-Tran)", problem.label()),
    ]);
    reports.push(RunReport::new("microbench", "th_bp").with("value", th_bp));

    // AllGather throughput: one projection circulating an 8-rank ring.
    let block = vec![0.5f32; det.len()];
    let reps = 20;
    let out = ct_comm::Universe::run(8, |c| {
        let t = Instant::now();
        for _ in 0..reps {
            let _ = c.all_gather(&block);
        }
        t.elapsed().as_secs_f64() / reps as f64
    })
    .unwrap();
    let per_op = out.iter().cloned().fold(0.0f64, f64::max);
    let ag_bw = 7.0 * det.len() as f64 * 4.0 / per_op;
    rows.push(vec![
        "TH_AllGather".into(),
        format!("{:.2} GB/s ring", ag_bw / 1e9),
        "8 ranks, 1 projection/op".into(),
    ]);
    reports.push(RunReport::new("microbench", "allgather_bw").with("value", ag_bw));

    // Reduce throughput: an n^3/8-float buffer over 8 ranks.
    let buf = vec![1.0f32; n * n * n / 8];
    let out = ct_comm::Universe::run(8, |c| {
        let t = Instant::now();
        for _ in 0..reps {
            let _ = c.reduce_sum_f32(0, &buf);
        }
        t.elapsed().as_secs_f64() / reps as f64
    })
    .unwrap();
    let per_op = out.iter().cloned().fold(0.0f64, f64::max);
    let red_bw = buf.len() as f64 * 4.0 / per_op;
    rows.push(vec![
        "TH_Reduce".into(),
        format!("{:.2} GB/s", red_bw / 1e9),
        format!("{} floats, 8 ranks", buf.len()),
    ]);
    reports.push(RunReport::new("microbench", "reduce_bw").with("value", red_bw));

    // PFS bandwidth (memory backend: upper bound of the substrate).
    let store = PfsStore::memory();
    let payload = vec![0.25f32; det.len()];
    let t = Instant::now();
    for i in 0..np {
        store
            .write_f32(&PfsStore::projection_name(i), &payload)
            .unwrap();
    }
    let w_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for i in 0..np {
        let _ = store.read_f32(&PfsStore::projection_name(i)).unwrap();
    }
    let r_secs = t.elapsed().as_secs_f64();
    let bytes = (np * det.len() * 4) as f64;
    rows.push(vec![
        "BW_store".into(),
        format!("{:.2} GB/s", bytes / w_secs / 1e9),
        "memory-backend PFS".into(),
    ]);
    rows.push(vec![
        "BW_load".into(),
        format!("{:.2} GB/s", bytes / r_secs / 1e9),
        "memory-backend PFS".into(),
    ]);
    reports.push(RunReport::new("microbench", "bw_store").with("value", bytes / w_secs));
    reports.push(RunReport::new("microbench", "bw_load").with("value", bytes / r_secs));

    print_table(&["constant", "measured", "workload"], &rows);
    println!(
        "\npaper's ABCI values: TH_flt 366 proj/s/node, TH_bp ~200 GUPS (V100),\n\
         AllGather ring ~2.1 GB/s, TH_Reduce ~3.2 GB/s, GPFS 28.5 GB/s"
    );
    maybe_write_json(&args, &reports);
}
