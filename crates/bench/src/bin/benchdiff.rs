//! Compare two `gups` sweep reports and fail on perf regression.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin benchdiff -- \
//!     baseline.json candidate.json [--threshold 0.4] \
//!     [--min-speedup 25 --improve cand_key=base_key ...] [--format json]
//! ```
//!
//! Every cell of the baseline must exist in the candidate with a median
//! GUPS of at least `baseline * (1 - threshold)`; the generous default
//! threshold absorbs shared-runner noise while still catching order-of-
//! magnitude regressions.
//!
//! `--improve` adds *improvement* gates on top of the regression floor:
//! each `cand_key=base_key` pair (keys are `kernel/layout@threads`;
//! `=base_key` defaults to the candidate key) requires the candidate
//! cell to beat the baseline cell by at least `--min-speedup` percent
//! (default 25). This is how CI pins the lane-array kernel at a
//! minimum advantage over the checked-in scalar warp baseline rather
//! than merely "not regressed".
//!
//! `--format json` prints the comparison as a machine-readable JSON
//! object on stdout (the human-readable lines move to stderr), for
//! upload as a CI artifact. Exit codes follow `ifdk_bench::check`
//! either way: 0 pass, 1 regression/missing cell/failed improvement,
//! 2 unreadable input, 3 usage.

use ifdk_bench::check::{read_input, Gate};
use ifdk_bench::gups::{check_improvements, compare, GupsReport, ImprovePair};
use std::process::ExitCode;

const USAGE: &str = "usage: benchdiff <baseline.json> <candidate.json> [--threshold 0.4] \
[--min-speedup PCT] [--improve cand_key=base_key ...] [--format text|json]";

/// Flags that consume the following argument (the positional-path
/// filter must skip their values).
const VALUE_FLAGS: [&str; 4] = ["--threshold", "--min-speedup", "--improve", "--format"];

fn parse_threshold(args: &[String]) -> Result<f64, Gate> {
    let Some(pos) = args.iter().position(|a| a == "--threshold") else {
        return Ok(0.4);
    };
    args.get(pos + 1)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .ok_or_else(|| Gate::Usage(format!("--threshold needs a value in [0, 1)\n{USAGE}")))
}

/// `--min-speedup` is given in percent (25 = +25%); returned as a
/// fraction.
fn parse_min_speedup(args: &[String]) -> Result<f64, Gate> {
    let Some(pos) = args.iter().position(|a| a == "--min-speedup") else {
        return Ok(0.25);
    };
    args.get(pos + 1)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .map(|pct| pct / 100.0)
        .ok_or_else(|| Gate::Usage(format!("--min-speedup needs a percentage >= 0\n{USAGE}")))
}

fn parse_improves(args: &[String]) -> Result<Vec<ImprovePair>, Gate> {
    let mut pairs = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--improve" {
            let spec = args.get(i + 1).ok_or_else(|| {
                Gate::Usage(format!("--improve needs cand_key=base_key\n{USAGE}"))
            })?;
            pairs.push(ImprovePair::parse(spec).map_err(|e| Gate::Usage(format!("{e}\n{USAGE}")))?);
        }
    }
    Ok(pairs)
}

fn parse_format(args: &[String]) -> Result<bool, Gate> {
    let Some(pos) = args.iter().position(|a| a == "--format") else {
        return Ok(false);
    };
    match args.get(pos + 1).map(String::as_str) {
        Some("json") => Ok(true),
        Some("text") => Ok(false),
        _ => Err(Gate::Usage(format!("--format needs text or json\n{USAGE}"))),
    }
}

fn load(path: &str) -> Result<GupsReport, Gate> {
    let text = read_input(path)?;
    GupsReport::from_json(&text).map_err(|e| Gate::Unreadable(format!("{path}: {e}")))
}

fn run(args: &[String]) -> Gate {
    let paths: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || !VALUE_FLAGS.contains(&args[i - 1].as_str()))
        })
        .map(|(_, a)| a)
        .collect();
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Gate::Usage(USAGE.into());
    };
    let threshold = match parse_threshold(args) {
        Ok(t) => t,
        Err(g) => return g,
    };
    let min_speedup = match parse_min_speedup(args) {
        Ok(t) => t,
        Err(g) => return g,
    };
    let improves = match parse_improves(args) {
        Ok(p) => p,
        Err(g) => return g,
    };
    let json = match parse_format(args) {
        Ok(j) => j,
        Err(g) => return g,
    };
    let baseline = match load(baseline_path) {
        Ok(r) => r,
        Err(g) => return g,
    };
    let candidate = match load(candidate_path) {
        Ok(r) => r,
        Err(g) => return g,
    };

    // Cross-machine comparisons are legal (CI runners rotate) but worth
    // a loud note: the thresholds assume comparable hardware. The
    // fingerprint is the same one the perf trajectory store keys by.
    if let (Some(b), Some(c)) = (&baseline.machine, &candidate.machine) {
        let (bfp, cfp) = (b.fingerprint(), c.fingerprint());
        if bfp != cfp {
            eprintln!(
                "benchdiff: WARNING machine fingerprint mismatch: baseline {bfp} \
                 ({}) vs candidate {cfp} ({}) — thresholds assume comparable hardware",
                b.cpu_model, c.cpu_model
            );
        }
    }

    let mut rep = compare(&baseline, &candidate, threshold);
    check_improvements(&mut rep, &baseline, &candidate, &improves, min_speedup);
    eprintln!(
        "benchdiff: {} cells checked against {} ({}), threshold {:.0}%",
        rep.checked,
        baseline_path,
        baseline.problem,
        threshold * 100.0
    );
    for m in &rep.missing {
        eprintln!("benchdiff: baseline cell {m} missing from candidate");
    }
    for r in &rep.regressions {
        eprintln!("benchdiff: regression {r}");
    }
    for i in &rep.improvements {
        eprintln!("benchdiff: improvement held {i}");
    }
    for f in &rep.improvement_failures {
        eprintln!("benchdiff: improvement gate FAILED {f}");
    }
    if json {
        println!("{}", rep.to_json());
    }
    if rep.passed() {
        if !json {
            println!("OK");
        }
        Gate::Ok
    } else {
        Gate::CheckFailed(format!(
            "{} regressions, {} missing cells, {} failed improvement gates",
            rep.regressions.len(),
            rep.missing.len(),
            rep.improvement_failures.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}
