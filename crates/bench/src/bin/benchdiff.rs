//! Compare two `gups` sweep reports and fail on perf regression.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin benchdiff -- \
//!     baseline.json candidate.json [--threshold 0.4]
//! ```
//!
//! Every cell of the baseline must exist in the candidate with a median
//! GUPS of at least `baseline * (1 - threshold)`; the generous default
//! threshold absorbs shared-runner noise while still catching order-of-
//! magnitude regressions. Exit codes follow `ifdk_bench::check`: 0 pass,
//! 1 regression/missing cell, 2 unreadable input, 3 usage.

use ifdk_bench::check::{read_input, Gate};
use ifdk_bench::gups::{compare, GupsReport};
use std::process::ExitCode;

const USAGE: &str = "usage: benchdiff <baseline.json> <candidate.json> [--threshold 0.4]";

fn parse_threshold(args: &[String]) -> Result<f64, Gate> {
    let Some(pos) = args.iter().position(|a| a == "--threshold") else {
        return Ok(0.4);
    };
    args.get(pos + 1)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .ok_or_else(|| Gate::Usage(format!("--threshold needs a value in [0, 1)\n{USAGE}")))
}

fn load(path: &str) -> Result<GupsReport, Gate> {
    let text = read_input(path)?;
    GupsReport::from_json(&text).map_err(|e| Gate::Unreadable(format!("{path}: {e}")))
}

fn run(args: &[String]) -> Gate {
    let paths: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--threshold"))
        .map(|(_, a)| a)
        .collect();
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Gate::Usage(USAGE.into());
    };
    let threshold = match parse_threshold(args) {
        Ok(t) => t,
        Err(g) => return g,
    };
    let baseline = match load(baseline_path) {
        Ok(r) => r,
        Err(g) => return g,
    };
    let candidate = match load(candidate_path) {
        Ok(r) => r,
        Err(g) => return g,
    };

    let rep = compare(&baseline, &candidate, threshold);
    println!(
        "benchdiff: {} cells checked against {} ({}), threshold {:.0}%",
        rep.checked,
        baseline_path,
        baseline.problem,
        threshold * 100.0
    );
    for m in &rep.missing {
        eprintln!("benchdiff: baseline cell {m} missing from candidate");
    }
    for r in &rep.regressions {
        eprintln!("benchdiff: regression {r}");
    }
    if rep.passed() {
        println!("OK");
        Gate::Ok
    } else {
        Gate::CheckFailed(format!(
            "{} regressions, {} missing cells",
            rep.regressions.len(),
            rep.missing.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}
