//! Kernel equivalence gate: every back-projection variant must agree
//! with the serial `standard` kernel (Algorithm 2) on randomized
//! geometries, the tiled driver must be bit-identical across thread
//! counts, and the lane-array kernel must match its scalar oracle —
//! bit-identical in strict mode, within the documented FMA tolerance
//! otherwise.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin equivalence -- \
//!     [--trials 3] [--seed 42]
//! ```
//!
//! Each trial draws a random (even-`Nz`) volume shape and projection
//! count, back-projects a synthetic stack with all five Table 3 variants
//! plus the tiled driver at 1/2/4 threads, and requires normalised RMSE
//! against `standard` below 1e-5 plus exact equality of the tiled
//! outputs across pool widths. The lane-array checks then run the
//! strict lane kernel at 1/2/4 threads, tiled and untiled, requiring
//! bitwise equality with the scalar warp kernel, and the FMA lane
//! kernel requiring NRMSE below [`ct_bp::lanes::FMA_NRMSE_BOUND`]. The
//! seed is printed so any failure replays with `--seed`. Exit codes
//! follow `ifdk_bench::check`.

use ct_bp::lanes::{backproject_batch, KernelImpl, LaneMode, FMA_NRMSE_BOUND};
use ct_bp::tiled::{backproject_tiled_with, TileConfig};
use ct_bp::warp::WARP_BATCH;
use ct_bp::{backproject, backproject_standard, BpConfig, KernelVariant};
use ct_core::metrics::nrmse;
use ct_core::volume::VolumeLayout;
use ifdk_bench::check::Gate;
use ifdk_bench::{arg_usize, synthetic_stack};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

const TOLERANCE: f64 = 1e-5;

fn pick(rng: &mut StdRng, choices: &[usize]) -> usize {
    choices[rng.gen::<u64>() as usize % choices.len()]
}

fn run(args: &[String]) -> Gate {
    let trials = arg_usize(args, "trials", 3);
    let seed = arg_usize(
        args,
        "seed",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as usize ^ d.as_secs() as usize)
            .unwrap_or(0x5EED),
    ) as u64;
    println!("equivalence: {trials} trials, seed {seed} (rerun with --seed {seed})");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures: Vec<String> = Vec::new();

    for trial in 0..trials {
        let nx = pick(&mut rng, &[12, 16, 20, 24]);
        let ny = pick(&mut rng, &[12, 16, 20, 24]);
        let nz = pick(&mut rng, &[12, 16, 20, 24]);
        let np = pick(&mut rng, &[8, 16, 24, 40]);
        let side = 2 * nx.max(ny).max(nz);
        let geo = ct_core::geometry::CbctGeometry::standard(
            ct_core::problem::Dims2::new(side, side),
            np,
            ct_core::problem::Dims3::new(nx, ny, nz),
        );
        if let Err(e) = geo.validate() {
            return Gate::CheckFailed(format!("trial {trial}: invalid geometry: {e}"));
        }
        let stack = synthetic_stack(geo.detector, np);
        let mats = geo.projection_matrices();
        let dims = geo.volume;
        println!("  trial {trial}: {nx}x{ny}x{nz} volume, {np} projections");

        let serial = ct_par::Pool::new(1);
        let reference =
            backproject_standard(&serial, &mats, &stack, dims).into_layout(VolumeLayout::IMajor);

        // Every Table 3 variant, tiled and untiled, vs the reference.
        for variant in KernelVariant::ALL {
            for tile in [None, Some(TileConfig::AUTO)] {
                let cfg = BpConfig {
                    variant,
                    batch: WARP_BATCH,
                    tile,
                    kernel: KernelImpl::Scalar,
                };
                let v = backproject(&serial, cfg, &mats, &stack, dims)
                    .into_layout(VolumeLayout::IMajor);
                let e = nrmse(reference.data(), v.data()).expect("same shape");
                let tag = if tile.is_some() { "tiled" } else { "untiled" };
                if e >= TOLERANCE {
                    failures.push(format!(
                        "trial {trial}: {} ({tag}) vs standard: nrmse {e:.3e} >= {TOLERANCE:.0e}",
                        variant.name()
                    ));
                }
            }
        }

        // The tiled driver must not depend on pool width: bit-identical
        // at 1, 2 and 4 threads.
        let transposed: Vec<_> = stack.iter().map(|p| p.transposed()).collect();
        let nv = geo.detector.nv;
        let t1 = backproject_tiled_with(
            &serial,
            &mats,
            &transposed,
            nv,
            dims,
            WARP_BATCH,
            TileConfig::AUTO,
        );
        for threads in [2usize, 4] {
            let pool = ct_par::Pool::new(threads);
            let tn = backproject_tiled_with(
                &pool,
                &mats,
                &transposed,
                nv,
                dims,
                WARP_BATCH,
                TileConfig::AUTO,
            );
            if t1.data() != tn.data() {
                failures.push(format!(
                    "trial {trial}: tiled output differs between 1 and {threads} threads"
                ));
            }
        }

        // Lane-array kernel vs its scalar oracle: strict mode must be
        // bit-identical on every dispatch route and thread count; FMA
        // mode must stay inside the documented tolerance.
        let refs: Vec<&ct_core::projection::TransposedProjection> = transposed.iter().collect();
        let scalar = backproject_batch(
            &serial,
            KernelImpl::Scalar,
            &mats,
            &refs,
            nv,
            dims,
            WARP_BATCH,
            None,
        );
        for tile in [None, Some(TileConfig::AUTO)] {
            let tag = if tile.is_some() { "tiled" } else { "untiled" };
            for threads in [1usize, 2, 4] {
                let pool = ct_par::Pool::new(threads);
                let lanes = backproject_batch(
                    &pool,
                    KernelImpl::Lanes(LaneMode::Strict),
                    &mats,
                    &refs,
                    nv,
                    dims,
                    WARP_BATCH,
                    tile,
                );
                if lanes.data() != scalar.data() {
                    failures.push(format!(
                        "trial {trial}: strict lanes ({tag}, {threads} threads) \
                         not bit-identical to scalar warp"
                    ));
                }
            }
        }
        let fma = backproject_batch(
            &serial,
            KernelImpl::Lanes(LaneMode::Fma),
            &mats,
            &refs,
            nv,
            dims,
            WARP_BATCH,
            None,
        );
        let e = nrmse(scalar.data(), fma.data()).expect("same shape");
        if e >= FMA_NRMSE_BOUND {
            failures.push(format!(
                "trial {trial}: lanes-fma vs scalar: nrmse {e:.3e} >= {FMA_NRMSE_BOUND:.0e}"
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "OK: all variants agree with standard (nrmse < {TOLERANCE:.0e}); \
             strict lanes bit-identical to scalar; lanes-fma nrmse < {FMA_NRMSE_BOUND:.0e}"
        );
        Gate::Ok
    } else {
        for f in &failures {
            eprintln!("equivalence: {f}");
        }
        Gate::CheckFailed(format!("{} kernel mismatches", failures.len()))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}
