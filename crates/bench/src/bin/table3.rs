//! Regenerates the paper's **Table 3**: back-projection kernel
//! characteristics (texture/L1 access path, projection/volume transposes).

use ct_bp::KernelVariant;
use ifdk_bench::print_table;

fn main() {
    println!("Table 3: back-projection kernel characteristics\n");
    let yes_no = |b: bool| if b { "yes" } else { "no" }.to_string();
    let rows: Vec<Vec<String>> = KernelVariant::ALL
        .iter()
        .map(|v| {
            let (tex, l1, tp, tv) = v.characteristics();
            vec![
                v.name().to_string(),
                yes_no(tex),
                yes_no(l1),
                yes_no(tp),
                yes_no(tv),
                format!("{:?}", v.output_layout()),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "texture cache",
            "L1 cache",
            "transpose projection",
            "transpose volume",
            "volume layout",
        ],
        &rows,
    );
    println!(
        "\nCPU mapping: \"texture\" = 8x8 blocked layout, \"L1\" = contiguous\n\
         transposed access; see DESIGN.md (Table 3 row of the experiment index)."
    );
}
