//! Regenerates the paper's **Table 4**: back-projection kernel
//! performance (GUPS) across 15 problem shapes x 5 kernel variants.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin table4 [-- --scale 8 --reps 3 --json table4.json]
//! ```
//!
//! The paper's problems are scaled down by `--scale` (default 8), which
//! preserves every `alpha` (input/output ratio) class; absolute GUPS are
//! CPU numbers, but the *shape* under test is the paper's: the proposed
//! `L1-Tran` kernel wins at small alpha (large outputs) and the advantage
//! shrinks/reverses at very large alpha, and RTK-32 cannot run the
//! largest outputs (its dual-buffer 8 GB limit, scaled accordingly).

use ct_bp::{backproject, BpConfig, KernelVariant};
use ct_core::metrics::{gups, nrmse};
use ct_core::volume::VolumeLayout;
use ct_par::Pool;
use ifdk::report::RunReport;
use ifdk_bench::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_usize(&args, "scale", 8);
    let reps = arg_usize(&args, "reps", 1);
    let pool = Pool::auto();
    println!(
        "Table 4: back-projection kernel GUPS (paper problems / {scale}, {} threads, best of {reps})\n",
        pool.threads()
    );

    // The paper's RTK dual-buffer limit: outputs over 8 GB are N/A. Scaled
    // by scale^3 that is 8 GB / scale^3.
    let rtk_limit_bytes = (8u64 << 30) / (scale as u64).pow(3);

    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let mut wins_small_alpha = 0usize;
    let mut small_alpha_rows = 0usize;

    for problem in table4_problems(scale) {
        let geo = geometry_for(&problem);
        let mats = geo.projection_matrices();
        let stack = synthetic_stack(problem.detector, problem.num_projections);
        let alpha = problem.alpha();
        let alpha_str = if alpha >= 1.0 {
            format!("{alpha:.0}")
        } else {
            format!("1/{:.0}", 1.0 / alpha)
        };
        let mut row = vec![problem.label(), alpha_str];
        let mut report = RunReport::new("table4", &problem.label());
        report.set("alpha", problem.alpha());

        let mut best: Option<(KernelVariant, f64)> = None;
        for variant in KernelVariant::ALL {
            if variant == KernelVariant::Rtk32
                && problem.volume.bytes_f32() as u64 > rtk_limit_bytes
            {
                row.push("N/A".into());
                continue;
            }
            let cfg = BpConfig {
                variant,
                ..BpConfig::default()
            };
            let mut best_secs = f64::INFINITY;
            let mut out = None;
            for _ in 0..reps.max(1) {
                let t = Instant::now();
                let vol = backproject(&pool, cfg, &mats, &stack, problem.volume);
                best_secs = best_secs.min(t.elapsed().as_secs_f64());
                out = Some(vol);
            }
            // Verify each variant against the reference on the fly (the
            // paper's RMSE < 1e-5 bar) for the smallest problems.
            if problem.output_len() <= 32 * 32 * 32 {
                let reference = ct_bp::backproject_standard(&pool, &mats, &stack, problem.volume);
                let v = out.unwrap().into_layout(VolumeLayout::IMajor);
                let e = nrmse(reference.data(), v.data()).unwrap();
                assert!(e < 1e-5, "{}: NRMSE {e}", variant.name());
            }
            let g = gups(problem.updates(), best_secs);
            row.push(format!("{g:.2}"));
            report.set(variant.name(), g);
            if best.map(|(_, bg)| g > bg).unwrap_or(true) {
                best = Some((variant, g));
            }
        }
        if problem.alpha() <= 1.0 {
            small_alpha_rows += 1;
            if matches!(best, Some((KernelVariant::L1Tran, _))) {
                wins_small_alpha += 1;
            }
        }
        rows.push(row);
        reports.push(report);
    }

    let mut headers = vec!["problem (pixel -> voxel)", "alpha"];
    headers.extend(KernelVariant::ALL.iter().map(|v| v.name()));
    print_table(&headers, &rows);
    println!(
        "\nshape check: L1-Tran is fastest on {wins_small_alpha}/{small_alpha_rows} problems with alpha <= 1 \
         (paper: L1-Tran dominates small alpha)"
    );
    maybe_write_json(&args, &reports);
}
