//! Live-metrics monitor and CI gate over a `ct_obs::live` JSONL stream.
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin monitor -- live_metrics.jsonl \
//!     [--format text|json|prom] [--max-stall-ms <ms>] [--max-trips <n>] \
//!     [--follow [--idle-timeout-secs <s>]] [--record <trajectory.jsonl>]
//! ```
//!
//! Reads the frames a live run streamed (`--live` on the distributed
//! example, or `LiveConfig::jsonl_path`), pretty-prints the latest one —
//! progress/ETA, per-stage completion and latency quantiles, ring
//! occupancy and stall attribution — and optionally *gates*:
//!
//! * `--max-stall-ms <ms>` fails if any ring's worst observed wait
//!   (completed-stall maxima or an in-flight wait captured in a frame)
//!   exceeds the bound;
//! * `--max-trips <n>` fails if the run recorded more than `n`
//!   watchdog trips.
//!
//! With `--follow` the file is tailed: each new frame prints a one-line
//! summary as it lands, until the stream has been idle for
//! `--idle-timeout-secs` (default 5). Gates then apply to everything
//! seen. `--record <path>` appends the final frame's stage quantiles,
//! ring stalls and watchdog trips as an `ifdk-run/v1` record to the
//! `ct-perfdb` trajectory store (appended before gating, so failed
//! runs leave trajectory evidence too). Exit codes follow
//! `ifdk_bench::check`: 0 ok, 1 gate failed, 2 unreadable file,
//! 3 usage.

use ct_obs::live::MetricsSnapshot;
use ct_obs::trace::fmt_ns;
use ifdk_bench::check::{read_input, Gate};
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Prom,
}

struct Opts {
    path: String,
    format: Format,
    max_stall_ms: Option<u64>,
    max_trips: Option<u64>,
    follow: bool,
    idle_timeout: Duration,
    record: Option<String>,
}

const USAGE: &str = "usage: monitor <metrics.jsonl> [--format text|json|prom] \
     [--max-stall-ms <ms>] [--max-trips <n>] [--follow] [--idle-timeout-secs <s>] \
     [--record <trajectory.jsonl>]";

fn parse_args(args: &[String]) -> Result<Opts, Gate> {
    let mut path: Option<String> = None;
    let mut format = Format::Text;
    let mut max_stall_ms = None;
    let mut max_trips = None;
    let mut follow = false;
    let mut idle_timeout = Duration::from_secs(5);
    let mut record = None;
    let mut i = 0;
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, Gate> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| Gate::Usage(format!("{flag} needs a value\n{USAGE}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                format = match need(args, i, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "prom" => Format::Prom,
                    other => {
                        return Err(Gate::Usage(format!(
                            "--format must be text, json or prom, got {other:?}\n{USAGE}"
                        )))
                    }
                };
                i += 2;
            }
            "--max-stall-ms" => {
                let v = need(args, i, "--max-stall-ms")?;
                max_stall_ms = Some(v.parse::<u64>().map_err(|_| {
                    Gate::Usage(format!(
                        "--max-stall-ms must be an integer, got {v:?}\n{USAGE}"
                    ))
                })?);
                i += 2;
            }
            "--max-trips" => {
                let v = need(args, i, "--max-trips")?;
                max_trips = Some(v.parse::<u64>().map_err(|_| {
                    Gate::Usage(format!(
                        "--max-trips must be an integer, got {v:?}\n{USAGE}"
                    ))
                })?);
                i += 2;
            }
            "--follow" => {
                follow = true;
                i += 1;
            }
            "--record" => {
                record = Some(need(args, i, "--record")?);
                i += 2;
            }
            "--idle-timeout-secs" => {
                let v = need(args, i, "--idle-timeout-secs")?;
                idle_timeout = Duration::from_secs(v.parse::<u64>().map_err(|_| {
                    Gate::Usage(format!(
                        "--idle-timeout-secs must be an integer, got {v:?}\n{USAGE}"
                    ))
                })?);
                i += 2;
            }
            a if a.starts_with("--") => {
                return Err(Gate::Usage(format!("unknown flag {a:?}\n{USAGE}")));
            }
            a => {
                if path.is_some() {
                    return Err(Gate::Usage(USAGE.into()));
                }
                path = Some(a.to_string());
                i += 1;
            }
        }
    }
    let path = path.ok_or_else(|| Gate::Usage(USAGE.into()))?;
    Ok(Opts {
        path,
        format,
        max_stall_ms,
        max_trips,
        follow,
        idle_timeout,
        record,
    })
}

/// Parse every non-empty line; a malformed line is a failed check (the
/// stream is the artifact under test), naming the 1-based line.
fn parse_frames(text: &str, path: &str) -> Result<Vec<MetricsSnapshot>, Gate> {
    let mut frames = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match MetricsSnapshot::from_json(line) {
            Ok(f) => frames.push(f),
            Err(e) => {
                return Err(Gate::CheckFailed(format!(
                    "{path}:{}: not a metrics frame: {e}",
                    n + 1
                )))
            }
        }
    }
    Ok(frames)
}

fn one_liner(f: &MetricsSnapshot) -> String {
    let progress = match &f.progress {
        Some(p) if p.eta_ns > 0 => {
            format!("{:5.1}% eta {}", p.frac * 100.0, fmt_ns(p.eta_ns))
        }
        Some(p) => format!("{:5.1}%", p.frac * 100.0),
        None => "  -  ".to_string(),
    };
    let worst = f
        .rings
        .iter()
        .map(|r| r.state.worst_wait_ns())
        .max()
        .unwrap_or(0);
    format!(
        "#{:<4} t={:<10} {} stages={} rings={} worst-stall={} trips={}",
        f.seq,
        fmt_ns(f.t_ns),
        progress,
        f.stages.len(),
        f.rings.len(),
        fmt_ns(worst),
        f.watchdog_trips,
    )
}

fn print_text(f: &MetricsSnapshot) {
    println!(
        "frame #{} (schema v{}) at t={}",
        f.seq,
        f.version,
        fmt_ns(f.t_ns)
    );
    if let Some(p) = &f.progress {
        let eta = if p.eta_ns > 0 {
            format!(", eta {}", fmt_ns(p.eta_ns))
        } else {
            String::new()
        };
        println!("progress: {:.1}%{eta}", p.frac * 100.0);
        for (stage, ratio) in &p.divergence {
            println!("  model divergence {stage}: x{ratio:.2}");
        }
    }
    if !f.stages.is_empty() {
        println!("stages:");
        for s in &f.stages {
            let planned = if s.planned > 0 {
                format!("{}/{}", s.done, s.planned)
            } else {
                format!("{}", s.done)
            };
            println!(
                "  {:<20} {:>12}  busy {:>9}  p50 {:>9}  p95 {:>9}  p99 {:>9}",
                s.name,
                planned,
                fmt_ns(s.busy_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.p99_ns),
            );
        }
    }
    if !f.rings.is_empty() {
        println!("rings:");
        for r in &f.rings {
            println!(
                "  {:<24} {:>2}/{:<2} (hw {:>2})  push stalls {} ({})  pop stalls {} ({})  worst {}",
                r.name,
                r.state.len,
                r.state.capacity,
                r.state.high_water,
                r.state.push_stalls,
                fmt_ns(r.state.push_stall_ns),
                r.state.pop_stalls,
                fmt_ns(r.state.pop_stall_ns),
                fmt_ns(r.state.worst_wait_ns()),
            );
        }
    }
    for (name, v) in &f.counters {
        println!("counter {name} = {v}");
    }
    for (name, v) in &f.gauges {
        println!("gauge {name} = {v}");
    }
    println!("watchdog trips: {}", f.watchdog_trips);
}

/// Apply the `--max-stall-ms` / `--max-trips` gates over every frame.
fn gate_frames(frames: &[MetricsSnapshot], opts: &Opts) -> Gate {
    if let Some(ms) = opts.max_stall_ms {
        let bound_ns = ms.saturating_mul(1_000_000);
        for f in frames {
            for r in &f.rings {
                let worst = r.state.worst_wait_ns();
                if worst > bound_ns {
                    return Gate::CheckFailed(format!(
                        "ring {} stalled {} (frame #{}), over the --max-stall-ms {ms} bound",
                        r.name,
                        fmt_ns(worst),
                        f.seq
                    ));
                }
            }
        }
    }
    if let Some(max) = opts.max_trips {
        let trips = frames.last().map_or(0, |f| f.watchdog_trips);
        if trips > max {
            return Gate::CheckFailed(format!(
                "{trips} watchdog trips recorded, over the --max-trips {max} bound"
            ));
        }
    }
    Gate::Ok
}

/// Fold the final frame into an `ifdk-run/v1` trajectory record.
fn run_record(last: &MetricsSnapshot, t_unix_ms: u64) -> ct_perfdb::RunRecord {
    let mut r = ct_perfdb::RunRecord::new("monitor", t_unix_ms, ct_perfdb::MachineInfo::detect());
    r.set_metric("watchdog_trips", last.watchdog_trips as f64)
        .set_metric("uptime_secs", last.t_ns as f64 * 1e-9);
    if let Some(p) = &last.progress {
        r.set_metric("progress_frac", p.frac);
    }
    for s in &last.stages {
        r.set_metric(&format!("stage.{}.done", s.name), s.done as f64)
            .set_metric(
                &format!("stage.{}.busy_secs", s.name),
                s.busy_ns as f64 * 1e-9,
            )
            .set_metric(
                &format!("stage.{}.p50_secs", s.name),
                s.p50_ns as f64 * 1e-9,
            )
            .set_metric(
                &format!("stage.{}.p95_secs", s.name),
                s.p95_ns as f64 * 1e-9,
            )
            .set_metric(
                &format!("stage.{}.p99_secs", s.name),
                s.p99_ns as f64 * 1e-9,
            );
    }
    for ring in &last.rings {
        r.set_metric(
            &format!("ring.{}.worst_wait_secs", ring.name),
            ring.state.worst_wait_ns() as f64 * 1e-9,
        );
    }
    r
}

fn finish(frames: &[MetricsSnapshot], opts: &Opts) -> Gate {
    let Some(last) = frames.last() else {
        return Gate::CheckFailed(format!("{}: no metrics frames", opts.path));
    };
    match opts.format {
        Format::Text => print_text(last),
        Format::Json => println!("{}", last.to_json()),
        Format::Prom => print!("{}", last.to_prometheus()),
    }
    if let Some(db) = &opts.record {
        let rec = run_record(last, ct_obs::clock::unix_millis());
        if let Err(e) = ct_perfdb::PerfDb::append(std::path::Path::new(db), &[rec]) {
            return Gate::Unreadable(format!("{db}: {e}"));
        }
        eprintln!("recorded monitor run -> {db}");
    }
    gate_frames(frames, opts)
}

fn run_once(opts: &Opts) -> Gate {
    let text = match read_input(&opts.path) {
        Ok(s) => s,
        Err(g) => return g,
    };
    let frames = match parse_frames(&text, &opts.path) {
        Ok(f) => f,
        Err(g) => return g,
    };
    finish(&frames, opts)
}

/// Tail the file: print a line per new frame until it goes idle.
fn run_follow(opts: &Opts) -> Gate {
    let mut seen = 0usize;
    let mut frames: Vec<MetricsSnapshot> = Vec::new();
    let mut last_growth = Instant::now();
    loop {
        let text = match read_input(&opts.path) {
            Ok(s) => s,
            Err(g) => return g,
        };
        let all = match parse_frames(&text, &opts.path) {
            Ok(f) => f,
            Err(g) => return g,
        };
        if all.len() > seen {
            for f in &all[seen..] {
                println!("{}", one_liner(f));
            }
            seen = all.len();
            frames = all;
            last_growth = Instant::now();
        }
        if last_growth.elapsed() >= opts.idle_timeout {
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    finish(&frames, opts)
}

fn run(args: &[String]) -> Gate {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(g) => return g,
    };
    if opts.follow {
        run_follow(&opts)
    } else {
        run_once(&opts)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args).exit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_obs::live::LiveRegistry;

    fn frames_file(name: &str, stall_ns: u64, trips: u64) -> String {
        let reg = LiveRegistry::new();
        let cell = reg.stage("bp");
        reg.plan_stage("bp", 4, None);
        cell.record_batch(2, 1_000_000);
        reg.watch_ring(ct_obs::live::RingProbe::new("ring.test", move || {
            let mut st = ct_obs::live::RingLiveState {
                capacity: 4,
                len: 1,
                high_water: 3,
                ..Default::default()
            };
            st.max_push_stall_ns = stall_ns;
            st
        }));
        let mut lines = String::new();
        for _ in 0..3 {
            let mut f = reg.snapshot();
            f.watchdog_trips = trips;
            lines.push_str(&f.to_json());
            lines.push('\n');
        }
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, lines).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn missing_path_is_usage_and_bad_flags_are_usage() {
        assert!(matches!(run(&[]), Gate::Usage(_)));
        for bad in [
            vec!["--format".to_string()],
            vec![
                "x.jsonl".to_string(),
                "--format".to_string(),
                "yaml".to_string(),
            ],
            vec![
                "x.jsonl".to_string(),
                "--max-stall-ms".to_string(),
                "soon".to_string(),
            ],
            vec!["x.jsonl".to_string(), "--nope".to_string()],
        ] {
            assert!(matches!(run(&bad), Gate::Usage(_)), "{bad:?}");
        }
    }

    #[test]
    fn missing_file_is_unreadable() {
        let args = vec!["/nonexistent/ifdk-monitor-test.jsonl".to_string()];
        assert!(matches!(run(&args), Gate::Unreadable(_)));
    }

    #[test]
    fn malformed_line_fails_the_check_with_its_line_number() {
        let path = std::env::temp_dir().join("ifdk-monitor-bad.jsonl");
        std::fs::write(&path, "{not json}\n").unwrap();
        let gate = run(&[path.to_str().unwrap().to_string()]);
        match gate {
            Gate::CheckFailed(msg) => assert!(msg.contains(":1:"), "{msg}"),
            other => panic!("expected CheckFailed, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clean_stream_passes_the_gates() {
        let path = frames_file("ifdk-monitor-clean.jsonl", 2_000_000, 0);
        let args = vec![
            path.clone(),
            "--max-stall-ms".to_string(),
            "100".to_string(),
            "--max-trips".to_string(),
            "0".to_string(),
        ];
        assert_eq!(run(&args), Gate::Ok);
        // All three output formats render the same stream fine.
        for fmt in ["text", "json", "prom"] {
            let args = vec![path.clone(), "--format".to_string(), fmt.to_string()];
            assert_eq!(run(&args), Gate::Ok, "{fmt}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_sink_captures_stages_rings_and_trips() {
        let path = frames_file("ifdk-monitor-record.jsonl", 250_000_000, 2);
        let db = std::env::temp_dir().join("ifdk-monitor-record-db.jsonl");
        let _ = std::fs::remove_file(&db);
        // Recording happens even when the gate fails — the trajectory
        // must keep evidence of bad runs.
        let gate = run(&[
            path.clone(),
            "--record".to_string(),
            db.to_str().unwrap().to_string(),
            "--max-trips".to_string(),
            "0".to_string(),
        ]);
        assert!(matches!(gate, Gate::CheckFailed(_)));
        let store = ct_perfdb::PerfDb::load(&db).unwrap();
        assert_eq!(store.records.len(), 1);
        let r = &store.records[0];
        assert_eq!(r.source, "monitor");
        assert_eq!(r.metric("watchdog_trips"), Some(2.0));
        assert!(r.metric("stage.bp.p95_secs").is_some());
        assert!(r.metric("ring.ring.test.worst_wait_secs").unwrap() > 0.2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn long_stall_and_trips_fail_their_gates() {
        let path = frames_file("ifdk-monitor-stall.jsonl", 250_000_000, 2);
        let stall = run(&[
            path.clone(),
            "--max-stall-ms".to_string(),
            "100".to_string(),
        ]);
        match stall {
            Gate::CheckFailed(msg) => assert!(msg.contains("ring.test"), "{msg}"),
            other => panic!("expected CheckFailed, got {other:?}"),
        }
        let trips = run(&[path.clone(), "--max-trips".to_string(), "0".to_string()]);
        match trips {
            Gate::CheckFailed(msg) => assert!(msg.contains("watchdog"), "{msg}"),
            other => panic!("expected CheckFailed, got {other:?}"),
        }
        // Loose bounds still pass.
        let ok = run(&[
            path.clone(),
            "--max-stall-ms".to_string(),
            "1000".to_string(),
            "--max-trips".to_string(),
            "2".to_string(),
        ]);
        assert_eq!(ok, Gate::Ok);
        let _ = std::fs::remove_file(&path);
    }
}
