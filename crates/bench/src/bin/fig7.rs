//! Regenerates the paper's **Figure 7**: a real distributed
//! reconstruction on a 4x4 rank grid (R=4, C=4, 16 ranks), showing the
//! per-row sub-volumes combined by MPI-Reduce into the final volume.
//!
//! The paper runs 2048^2x4096 -> 2048^3 on 16 GPUs; here the same grid
//! runs a scaled problem end-to-end (PFS in, PFS out) and is verified
//! against the single-node reconstruction (RMSE < 1e-5, Section 5.1).
//!
//! ```text
//! cargo run --release -p ifdk-bench --bin fig7 [-- --size 64 --np 64]
//! ```

use ct_core::forward::project_all_analytic;
use ct_core::metrics::{gups, nrmse};
use ct_core::phantom::Phantom;
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_core::CbctGeometry;
use ct_pfs::PfsStore;
use ifdk::distributed::{download_volume, upload_projections};
use ifdk::report::RunReport;
use ifdk::{reconstruct, reconstruct_distributed, DistConfig, RankGrid, ReconOptions};
use ifdk_bench::{arg_usize, maybe_write_json, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "size", 64);
    let np = arg_usize(&args, "np", 64);

    let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
    let problem = ReconProblem::new(geo.detector, np, geo.volume).unwrap();
    println!(
        "Figure 7: distributed reconstruction {} on a 4x4 grid (16 ranks)\n",
        problem.label()
    );

    let phantom = Phantom::shepp_logan(0.45 * n as f64);
    let stack = project_all_analytic(&geo, &phantom);
    let input = PfsStore::memory();
    upload_projections(&input, &stack).unwrap();

    let grid = RankGrid::new(4, 4).unwrap();
    let cfg = DistConfig::new(geo.clone(), grid);
    let output = PfsStore::memory();
    let report = reconstruct_distributed(&cfg, &input, &output).expect("distributed run");
    let vol = download_volume(&output, geo.volume).unwrap();

    // Verification against the single-node reference (paper Section 5.1).
    let single = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
    let err = nrmse(single.data(), vol.data()).unwrap();

    let mut rows = Vec::new();
    for stage in [
        "load",
        "filter",
        "allgather",
        "backprojection",
        "reduce",
        "store",
    ] {
        rows.push(vec![
            stage.to_string(),
            format!("{:.3}", report.max_stage_secs(stage)),
        ]);
    }
    print_table(&["stage", "max secs over 16 ranks"], &rows);
    println!(
        "\nend-to-end {:.3} s -> {:.2} GUPS on this machine (paper's 16-GPU run: 1,134 GUPS)",
        report.runtime_secs,
        gups(problem.updates(), report.runtime_secs)
    );
    println!(
        "comm: {} messages, {:.1} MiB | slices stored: {}",
        report.comm_messages,
        report.comm_bytes as f64 / (1 << 20) as f64,
        output.list().len()
    );
    println!(
        "RMSE vs single-node: {err:.3e}  (bar: < 1e-5) {}",
        if err < 1e-5 { "OK" } else { "FAIL" }
    );

    // Row montage: one slice from each row's slab pair, like the figure's
    // per-row sub-volume panels.
    println!("\nper-row sub-volume sample slices (z index in brackets):");
    for row in 0..4 {
        let pair = grid.slab_pair_of_row(row, geo.volume.nz).unwrap();
        let k = pair.k0 + pair.len / 2;
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        let d = vol.dims();
        for j in 0..d.ny {
            for i in 0..d.nx {
                let v = vol.get(i, j, k);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        println!("  row {row} [z={k}]: density range [{lo:.2}, {hi:.2}]");
    }

    let mut r = RunReport::new("fig7", &problem.label());
    r.set("rmse_vs_single", err);
    r.set("runtime_secs", report.runtime_secs);
    r.set("machine_gups", gups(problem.updates(), report.runtime_secs));
    maybe_write_json(&args, &[r]);

    assert!(err < 1e-5);
}
