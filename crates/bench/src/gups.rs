//! GUPS sweep statistics and the `BENCH_gups.json` interchange format.
//!
//! The paper's headline kernel metric is giga-updates per second
//! (Section 2.3); the `gups` binary sweeps kernel x layout x thread
//! count and records warmup/repeat/median+MAD statistics here. The JSON
//! codec is self-contained (hand-written writer, [`ct_obs::chrome::json`]
//! reader) so the gate binaries work without a serde dependency, and the
//! `benchdiff` comparison lives here too so it is unit-testable.

use std::fmt::Write as _;

/// Schema tag stamped into every report, checked on read.
pub const SCHEMA: &str = "ifdk-bench/gups/v1";

/// One measured cell of the kernel x layout x threads sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GupsCell {
    /// Kernel name (`standard`, `proposed`, `warp`, `tiled`).
    pub kernel: String,
    /// Projection access layout (`rowmajor`, `transposed`, `blocked`).
    pub layout: String,
    /// Pool width the cell ran with.
    pub threads: usize,
    /// Measured repeats (after the discarded warmup run).
    pub repeats: usize,
    /// Median GUPS over the repeats.
    pub gups_median: f64,
    /// Median absolute deviation of the per-repeat GUPS.
    pub gups_mad: f64,
    /// Median wall-clock seconds per run.
    pub secs_median: f64,
}

impl GupsCell {
    /// The `kernel/layout@threads` key cells are matched by.
    pub fn key(&self) -> String {
        format!("{}/{}@{}", self.kernel, self.layout, self.threads)
    }
}

/// Machine provenance, stamped into the report header so a checked-in
/// baseline documents what produced it. The probe itself now lives in
/// `ct-perfdb` (one definition shared by `gups`, `perfscope`,
/// `benchdiff` and the trajectory records); this re-export keeps the
/// historical `ifdk_bench::gups::MachineInfo` path working. The field
/// stays optional in the JSON (schema stays `v1`): old reports parse,
/// new gates know their hardware.
pub use ct_perfdb::MachineInfo;

/// A full sweep: one problem, many cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GupsReport {
    /// Human-readable problem label (e.g. `48^3 x 48p`).
    pub problem: String,
    /// Voxel updates per full back-projection (`Nx*Ny*Nz*Np`).
    pub updates: u128,
    /// Where the sweep ran (`None` in reports from before the field
    /// existed).
    pub machine: Option<MachineInfo>,
    /// The measured cells.
    pub cells: Vec<GupsCell>,
}

/// Median of a sample (empty slices return 0).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Median absolute deviation about `center`.
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn num(x: f64) -> String {
    // Rust's shortest-roundtrip float formatting is valid JSON for every
    // finite value; benchmarks never produce non-finite statistics.
    assert!(x.is_finite(), "non-finite statistic {x}");
    format!("{x}")
}

impl GupsReport {
    /// Serialise to pretty JSON (schema [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{}\",", esc(SCHEMA));
        let _ = writeln!(out, "  \"problem\": \"{}\",", esc(&self.problem));
        let _ = writeln!(out, "  \"updates\": {},", self.updates);
        if let Some(m) = &self.machine {
            let flags: Vec<String> = m
                .cpu_flags
                .iter()
                .map(|f| format!("\"{}\"", esc(f)))
                .collect();
            let _ = writeln!(
                out,
                "  \"machine\": {{ \"cpu_model\": \"{}\", \"cpu_flags\": [{}], \"logical_cpus\": {} }},",
                esc(&m.cpu_model),
                flags.join(", "),
                m.logical_cpus,
            );
        }
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"kernel\": \"{}\", \"layout\": \"{}\", \"threads\": {}, \
                 \"repeats\": {}, \"gups_median\": {}, \"gups_mad\": {}, \
                 \"secs_median\": {} }}{comma}",
                esc(&c.kernel),
                esc(&c.layout),
                c.threads,
                c.repeats,
                num(c.gups_median),
                num(c.gups_mad),
                num(c.secs_median),
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }

    /// Parse a report, validating the schema tag.
    pub fn from_json(input: &str) -> Result<Self, String> {
        use ct_obs::chrome::json::{parse, Value};
        let v = parse(input)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let problem = v
            .get("problem")
            .and_then(Value::as_str)
            .ok_or("missing problem label")?
            .to_string();
        let updates = v
            .get("updates")
            .and_then(Value::as_f64)
            .ok_or("missing updates")? as u128;
        let machine = v.get("machine").map(|m| MachineInfo {
            cpu_model: m
                .get("cpu_model")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            cpu_flags: m
                .get("cpu_flags")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|f| f.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
            logical_cpus: m.get("logical_cpus").and_then(Value::as_f64).unwrap_or(0.0) as usize,
        });
        let cells = v
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing cells array")?
            .iter()
            .enumerate()
            .map(|(i, c)| -> Result<GupsCell, String> {
                let s = |k: &str| {
                    c.get(k)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or(format!("cell {i}: missing {k}"))
                };
                let n = |k: &str| {
                    c.get(k)
                        .and_then(Value::as_f64)
                        .ok_or(format!("cell {i}: missing {k}"))
                };
                Ok(GupsCell {
                    kernel: s("kernel")?,
                    layout: s("layout")?,
                    threads: n("threads")? as usize,
                    repeats: n("repeats")? as usize,
                    gups_median: n("gups_median")?,
                    gups_mad: n("gups_mad")?,
                    secs_median: n("secs_median")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GupsReport {
            problem,
            updates,
            machine,
            cells,
        })
    }

    /// Look a cell up by its sweep coordinates.
    pub fn find(&self, kernel: &str, layout: &str, threads: usize) -> Option<&GupsCell> {
        self.cells
            .iter()
            .find(|c| c.kernel == kernel && c.layout == layout && c.threads == threads)
    }

    /// Look a cell up by its `kernel/layout@threads` key.
    pub fn find_key(&self, key: &str) -> Option<&GupsCell> {
        self.cells.iter().find(|c| c.key() == key)
    }

    /// Flatten this sweep into trajectory records (`--record` sink):
    /// one `ifdk-run/v1` record per cell, all stamped `t_unix_ms` and
    /// the report's machine provenance (detected on the spot when the
    /// report predates the field, so the fingerprint is never empty).
    pub fn run_records(&self, t_unix_ms: u64) -> Vec<ct_perfdb::RunRecord> {
        let machine = self
            .machine
            .clone()
            .unwrap_or_else(ct_perfdb::MachineInfo::detect);
        self.cells
            .iter()
            .map(|c| {
                let mut r = ct_perfdb::RunRecord::new("gups", t_unix_ms, machine.clone());
                r.config.kernel = c.kernel.clone();
                r.config.layout = c.layout.clone();
                r.config.threads = c.threads as u64;
                r.config.problem = self.problem.clone();
                r.set_metric("gups_median", c.gups_median)
                    .set_metric("gups_mad", c.gups_mad)
                    .set_metric("secs_median", c.secs_median)
                    .set_metric("repeats", c.repeats as f64)
                    .set_metric("updates", self.updates as f64);
                r
            })
            .collect()
    }
}

/// Outcome of comparing a candidate sweep against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareReport {
    /// Cells present in both reports.
    pub checked: usize,
    /// Human-readable regression lines (`key: base -> cand GUPS`).
    pub regressions: Vec<String>,
    /// Baseline cells the candidate is missing.
    pub missing: Vec<String>,
    /// Improvement-gate pairs that held (`cand >= base * (1 + min)`),
    /// as human-readable lines.
    pub improvements: Vec<String>,
    /// Improvement-gate pairs that failed (too slow, or either cell
    /// absent), as human-readable lines.
    pub improvement_failures: Vec<String>,
}

impl CompareReport {
    /// True when no regression, no missing cell, and no failed
    /// improvement gate was found.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
            && self.missing.is_empty()
            && self.improvement_failures.is_empty()
    }

    /// Machine-readable rendering for CI artifacts: the same facts the
    /// text output states, as one JSON object.
    pub fn to_json(&self) -> String {
        let list = |xs: &[String]| -> String {
            let items: Vec<String> = xs.iter().map(|x| format!("\"{}\"", esc(x))).collect();
            format!("[{}]", items.join(", "))
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"ifdk-bench/compare/v1\",");
        let _ = writeln!(out, "  \"passed\": {},", self.passed());
        let _ = writeln!(out, "  \"checked\": {},", self.checked);
        let _ = writeln!(out, "  \"regressions\": {},", list(&self.regressions));
        let _ = writeln!(out, "  \"missing\": {},", list(&self.missing));
        let _ = writeln!(out, "  \"improvements\": {},", list(&self.improvements));
        let _ = writeln!(
            out,
            "  \"improvement_failures\": {}",
            list(&self.improvement_failures)
        );
        out.push_str("}\n");
        out
    }
}

/// One improvement-gate requirement: the candidate report's
/// `candidate` cell must beat the baseline report's `baseline` cell by
/// the configured speedup (both are `kernel/layout@threads` keys; a
/// cell may be gated against a *different* cell, e.g. the lane kernel
/// against the scalar warp baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImprovePair {
    /// Key looked up in the candidate report.
    pub candidate: String,
    /// Key looked up in the baseline report.
    pub baseline: String,
}

impl ImprovePair {
    /// Parse `candidate=baseline` (a bare `key` gates a key against
    /// itself).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (cand, base) = s.split_once('=').unwrap_or((s, s));
        if cand.is_empty() || base.is_empty() {
            return Err(format!(
                "bad improve pair {s:?}: expected cand_key=base_key"
            ));
        }
        Ok(Self {
            candidate: cand.to_string(),
            baseline: base.to_string(),
        })
    }
}

/// Check the improvement gates: each pair's candidate cell must reach
/// `baseline * (1 + min_speedup)` median GUPS. A missing cell on either
/// side fails the pair — an improvement gate that silently stops
/// measuring is worse than a red one. Results land in
/// `report.improvements` / `report.improvement_failures`.
pub fn check_improvements(
    report: &mut CompareReport,
    baseline: &GupsReport,
    candidate: &GupsReport,
    pairs: &[ImprovePair],
    min_speedup: f64,
) {
    for p in pairs {
        let Some(b) = baseline.find_key(&p.baseline) else {
            report.improvement_failures.push(format!(
                "{}: baseline cell {} absent",
                p.candidate, p.baseline
            ));
            continue;
        };
        let Some(c) = candidate.find_key(&p.candidate) else {
            report
                .improvement_failures
                .push(format!("{}: candidate cell absent", p.candidate));
            continue;
        };
        let need = b.gups_median * (1.0 + min_speedup);
        let line = format!(
            "{} vs {}: {:.4} vs {:.4} GUPS ({:+.1}%, need {:+.0}%)",
            p.candidate,
            p.baseline,
            c.gups_median,
            b.gups_median,
            (c.gups_median / b.gups_median - 1.0) * 100.0,
            min_speedup * 100.0
        );
        if c.gups_median >= need {
            report.improvements.push(line);
        } else {
            report.improvement_failures.push(line);
        }
    }
}

/// Compare per-cell median GUPS: the candidate fails a cell when its
/// median drops below `baseline * (1 - threshold)`. Cells only the
/// candidate has (new kernels) are ignored; cells only the baseline has
/// are reported as missing.
pub fn compare(baseline: &GupsReport, candidate: &GupsReport, threshold: f64) -> CompareReport {
    let mut rep = CompareReport::default();
    for b in &baseline.cells {
        let Some(c) = candidate.find(&b.kernel, &b.layout, b.threads) else {
            rep.missing.push(b.key());
            continue;
        };
        rep.checked += 1;
        let floor = b.gups_median * (1.0 - threshold);
        if c.gups_median < floor {
            rep.regressions.push(format!(
                "{}: {:.4} -> {:.4} GUPS (floor {:.4} at {:.0}% threshold)",
                b.key(),
                b.gups_median,
                c.gups_median,
                floor,
                threshold * 100.0
            ));
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(kernel: &str, threads: usize, gups: f64) -> GupsCell {
        GupsCell {
            kernel: kernel.into(),
            layout: "transposed".into(),
            threads,
            repeats: 3,
            gups_median: gups,
            gups_mad: 0.01,
            secs_median: 0.5,
        }
    }

    fn report(cells: Vec<GupsCell>) -> GupsReport {
        GupsReport {
            problem: "16^3 x 8p".into(),
            updates: 32768,
            machine: None,
            cells,
        }
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0, 5.0]), 5.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mad(&[1.0, 5.0, 9.0], 5.0), 4.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0], 5.0), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = report(vec![cell("tiled", 4, 1.25), cell("standard", 1, 0.5)]);
        let parsed = GupsReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(
            parsed.find("tiled", "transposed", 4).unwrap().gups_median,
            1.25
        );
        assert!(parsed.find("tiled", "transposed", 2).is_none());
    }

    #[test]
    fn from_json_rejects_bad_input() {
        assert!(GupsReport::from_json("not json").is_err());
        assert!(GupsReport::from_json("{}").is_err());
        assert!(GupsReport::from_json("{\"schema\": \"other/v9\"}").is_err());
        // A cell missing a field is a hard error, not a silent skip.
        let r = report(vec![cell("warp", 1, 1.0)]);
        let broken = r.to_json().replace("\"gups_median\"", "\"zzz\"");
        assert!(GupsReport::from_json(&broken).is_err());
    }

    #[test]
    fn self_compare_passes() {
        let r = report(vec![cell("tiled", 4, 1.25), cell("warp", 1, 0.8)]);
        let c = compare(&r, &r, 0.4);
        assert!(c.passed());
        assert_eq!(c.checked, 2);
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let base = report(vec![cell("tiled", 4, 1.0)]);
        // 30% drop passes a 40% threshold...
        let ok = report(vec![cell("tiled", 4, 0.7)]);
        assert!(compare(&base, &ok, 0.4).passed());
        // ...a 50% drop does not.
        let bad = report(vec![cell("tiled", 4, 0.5)]);
        let c = compare(&base, &bad, 0.4);
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 1);
        assert!(c.regressions[0].contains("tiled/transposed@4"));
    }

    #[test]
    fn machine_provenance_round_trips_and_is_optional() {
        let mut r = report(vec![cell("warp", 1, 1.0)]);
        r.machine = Some(MachineInfo {
            cpu_model: "Example CPU \"X\"".into(),
            cpu_flags: vec!["avx2".into(), "fma".into()],
            logical_cpus: 8,
        });
        let parsed = GupsReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // Reports without the field (pre-provenance baselines) parse.
        let old = report(vec![cell("warp", 1, 1.0)]);
        let parsed = GupsReport::from_json(&old.to_json()).unwrap();
        assert_eq!(parsed.machine, None);
    }

    #[test]
    fn run_records_flatten_every_cell() {
        let mut r = report(vec![cell("lanes", 1, 1.3), cell("warp", 1, 1.0)]);
        r.machine = Some(MachineInfo {
            cpu_model: "Example CPU".into(),
            cpu_flags: vec!["avx2".into()],
            logical_cpus: 8,
        });
        let recs = r.run_records(42);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].source, "gups");
        assert_eq!(recs[0].t_unix_ms, 42);
        assert_eq!(recs[0].config.kernel, "lanes");
        assert_eq!(recs[0].config.layout, "transposed");
        assert_eq!(recs[0].config.threads, 1);
        assert_eq!(recs[0].config.problem, r.problem);
        assert_eq!(recs[0].metric("gups_median"), Some(1.3));
        assert_eq!(recs[0].metric("updates"), Some(32768.0));
        assert_eq!(recs[0].fingerprint(), recs[1].fingerprint());
        // A machine-less (pre-provenance) report still yields a usable
        // fingerprint via on-the-spot detection.
        let old = report(vec![cell("warp", 1, 1.0)]);
        let recs = old.run_records(7);
        assert!(!recs[0].fingerprint().is_empty());
    }

    #[test]
    fn improve_pair_parsing() {
        let p = ImprovePair::parse("lanes/transposed@1=warp/transposed@1").unwrap();
        assert_eq!(p.candidate, "lanes/transposed@1");
        assert_eq!(p.baseline, "warp/transposed@1");
        let p = ImprovePair::parse("warp/transposed@1").unwrap();
        assert_eq!(p.candidate, p.baseline);
        assert!(ImprovePair::parse("=x").is_err());
        assert!(ImprovePair::parse("x=").is_err());
    }

    #[test]
    fn improvement_gate_passes_and_fails() {
        let base = report(vec![cell("warp", 1, 1.0)]);
        let cand = report(vec![cell("warp", 1, 1.0), cell("lanes", 1, 1.3)]);
        let pair = ImprovePair::parse("lanes/transposed@1=warp/transposed@1").unwrap();
        let mut rep = compare(&base, &cand, 0.4);
        check_improvements(&mut rep, &base, &cand, std::slice::from_ref(&pair), 0.25);
        assert!(rep.passed(), "{:?}", rep.improvement_failures);
        assert_eq!(rep.improvements.len(), 1);
        // 30% required beats the 30% measured? 1.3 < 1.0 * 1.35 -> fail.
        let mut rep = compare(&base, &cand, 0.4);
        check_improvements(&mut rep, &base, &cand, std::slice::from_ref(&pair), 0.35);
        assert!(!rep.passed());
        assert_eq!(rep.improvement_failures.len(), 1);
        // A missing candidate cell fails rather than silently passing.
        let mut rep = compare(&base, &base, 0.4);
        check_improvements(&mut rep, &base, &base, &[pair], 0.25);
        assert!(!rep.passed());
    }

    #[test]
    fn compare_json_is_parseable_and_states_outcome() {
        let base = report(vec![cell("warp", 1, 1.0)]);
        let cand = report(vec![cell("warp", 1, 0.4)]);
        let rep = compare(&base, &cand, 0.4);
        let j = rep.to_json();
        let v = ct_obs::chrome::json::parse(&j).unwrap();
        assert_eq!(
            v.get("passed"),
            Some(&ct_obs::chrome::json::Value::Bool(false))
        );
        assert_eq!(v.get("checked").and_then(|x| x.as_f64()), Some(1.0));
        assert_eq!(
            v.get("regressions")
                .and_then(|x| x.as_array())
                .map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn missing_cell_fails_but_extra_cell_is_ignored() {
        let base = report(vec![cell("tiled", 4, 1.0), cell("warp", 1, 1.0)]);
        let cand = report(vec![cell("tiled", 4, 1.0), cell("newkernel", 1, 9.0)]);
        let c = compare(&base, &cand, 0.4);
        assert!(!c.passed());
        assert_eq!(c.missing, vec!["warp/transposed@1".to_string()]);
        // The candidate-only cell costs nothing.
        assert_eq!(c.checked, 1);
    }
}
