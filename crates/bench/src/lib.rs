//! Shared infrastructure for the experiment regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md Section 5 for the index). They print the human-readable
//! table and, with `--json <path>`, also write the datapoints as
//! [`ifdk::report::RunReport`] JSON for EXPERIMENTS.md.

#![forbid(unsafe_code)]

use ct_core::geometry::CbctGeometry;
use ct_core::problem::{Dims2, Dims3, ReconProblem};
use ct_core::projection::{ProjectionImage, ProjectionStack};
use ifdk::report::RunReport;

pub mod check;
pub mod gups;

/// The 15 problem shapes of the paper's Table 4, scaled down by `scale`
/// (8 reproduces every alpha class at laptop size; see DESIGN.md).
pub fn table4_problems(scale: usize) -> Vec<ReconProblem> {
    let k = 1024 / scale;
    let mk = |du: usize, dv: usize, np: usize, x: usize, y: usize, z: usize| {
        ReconProblem::new(Dims2::new(du, dv), np, Dims3::new(x, y, z)).expect("valid dims")
    };
    vec![
        // 512^2 x 1k -> {128^3, 256^3, 512^3, 1k^3, 1k^2 x 2k}
        mk(k / 2, k / 2, k, k / 8, k / 8, k / 8),
        mk(k / 2, k / 2, k, k / 4, k / 4, k / 4),
        mk(k / 2, k / 2, k, k / 2, k / 2, k / 2),
        mk(k / 2, k / 2, k, k, k, k),
        mk(k / 2, k / 2, k, k, k, 2 * k),
        // 1k^3 -> ...
        mk(k, k, k, k / 8, k / 8, k / 8),
        mk(k, k, k, k / 4, k / 4, k / 4),
        mk(k, k, k, k / 2, k / 2, k / 2),
        mk(k, k, k, k, k, k),
        mk(k, k, k, k, k, 2 * k),
        // 2k^2 x 1k -> ...
        mk(2 * k, 2 * k, k, k / 8, k / 8, k / 8),
        mk(2 * k, 2 * k, k, k / 4, k / 4, k / 4),
        mk(2 * k, 2 * k, k, k / 2, k / 2, k / 2),
        mk(2 * k, 2 * k, k, k, k, k),
        mk(2 * k, 2 * k, k, k, k, 2 * k),
    ]
}

/// Synthetic filtered projections for kernel benchmarks: deterministic
/// pseudo-random pixels (the kernel cost is content-independent, as the
/// paper notes in Section 5.1).
pub fn synthetic_stack(detector: Dims2, np: usize) -> ProjectionStack {
    let mut stack = ProjectionStack::new(detector);
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..np {
        let mut img = ProjectionImage::zeros(detector);
        for p in img.data_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *p = ((state >> 40) as f32 / 16777216.0) - 0.5;
        }
        stack.push(img).expect("shape matches");
    }
    stack
}

/// Geometry for a benchmark problem (the standard RabbitCT-style setup).
pub fn geometry_for(problem: &ReconProblem) -> CbctGeometry {
    CbctGeometry::standard(problem.detector, problem.num_projections, problem.volume)
}

/// Column-aligned table printer shared by the regenerators.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write reports to `--json <path>` if requested on the command line.
pub fn maybe_write_json(args: &[String], reports: &[RunReport]) {
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(reports).expect("reports serialise");
            std::fs::write(path, json).expect("write json report");
            eprintln!("wrote {} reports to {path}", reports.len());
        }
    }
}

/// Parse `--key value` integers.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    args.windows(2)
        .find(|w| w[0] == format!("--{key}"))
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_preserves_alpha_classes() {
        let problems = table4_problems(8);
        assert_eq!(problems.len(), 15);
        // Paper's alpha column (strict input/output ratios).
        let alphas: Vec<f64> = problems.iter().map(|p| p.alpha()).collect();
        // First group: 512^2 x 1k inputs.
        assert!((alphas[0] - 128.0).abs() < 1e-9);
        assert!((alphas[3] - 0.25).abs() < 1e-9);
        // alpha is scale-invariant: same at scale 16.
        let problems16 = table4_problems(16);
        for (a, b) in problems.iter().zip(problems16.iter()) {
            assert!((a.alpha() - b.alpha()).abs() < 1e-9);
        }
    }

    #[test]
    fn synthetic_stack_is_deterministic() {
        let a = synthetic_stack(Dims2::new(8, 8), 3);
        let b = synthetic_stack(Dims2::new(8, 8), 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn geometry_for_validates() {
        for p in table4_problems(16) {
            geometry_for(&p).validate().unwrap();
        }
    }
}
