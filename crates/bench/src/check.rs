//! Shared exit-code contract for the CI gate binaries (`tracecheck`,
//! `tracereport`, `benchdiff`).
//!
//! CI needs to tell "the artifact under test failed its check" apart from
//! "the gate itself could not run" — a missing baseline file must not
//! masquerade as a performance regression (or vice versa), so each class
//! gets its own code:
//!
//! | code | meaning |
//! |------|----------------------------------------------------|
//! | 0    | check passed |
//! | 1    | check ran and failed (invalid trace, perf regression) |
//! | 2    | an input file could not be read |
//! | 3    | bad command-line usage |

use std::process::ExitCode;

/// Check passed.
pub const OK: u8 = 0;
/// Check ran to completion and failed.
pub const CHECK_FAILED: u8 = 1;
/// An input file could not be read.
pub const UNREADABLE: u8 = 2;
/// Bad command-line usage.
pub const USAGE: u8 = 3;

/// Outcome of a gate binary, mapping onto the exit codes above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// Check passed.
    Ok,
    /// Check ran and failed; the string says why.
    CheckFailed(String),
    /// An input file could not be read; the string names it.
    Unreadable(String),
    /// Bad command-line usage; the string is the usage text.
    Usage(String),
}

impl Gate {
    /// The process exit code for this outcome.
    pub fn code(&self) -> u8 {
        match self {
            Gate::Ok => OK,
            Gate::CheckFailed(_) => CHECK_FAILED,
            Gate::Unreadable(_) => UNREADABLE,
            Gate::Usage(_) => USAGE,
        }
    }

    /// Print the outcome (stderr for failures) and convert to [`ExitCode`].
    pub fn exit(self) -> ExitCode {
        match &self {
            Gate::Ok => {}
            Gate::CheckFailed(msg) => eprintln!("check failed: {msg}"),
            Gate::Unreadable(msg) => eprintln!("unreadable input: {msg}"),
            Gate::Usage(msg) => eprintln!("{msg}"),
        }
        ExitCode::from(self.code())
    }
}

/// Read a gate input file, classifying I/O failure as [`Gate::Unreadable`].
pub fn read_input(path: &str) -> Result<String, Gate> {
    std::fs::read_to_string(path).map_err(|e| Gate::Unreadable(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let all = [
            Gate::Ok,
            Gate::CheckFailed("x".into()),
            Gate::Unreadable("x".into()),
            Gate::Usage("x".into()),
        ];
        let codes: Vec<u8> = all.iter().map(Gate::code).collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreadable_file_is_not_a_check_failure() {
        let err = read_input("/nonexistent/ifdk-gate-input.json").unwrap_err();
        assert!(matches!(err, Gate::Unreadable(_)));
        // The distinction CI relies on: a missing file exits 2, a failed
        // check exits 1.
        assert_ne!(err.code(), Gate::CheckFailed(String::new()).code());
        assert_eq!(err.code(), UNREADABLE);
    }

    #[test]
    fn readable_file_comes_back_verbatim() {
        let dir = std::env::temp_dir();
        let path = dir.join("ifdk-check-read-input-test.json");
        std::fs::write(&path, "{\"ok\": true}").unwrap();
        let text = read_input(path.to_str().unwrap()).unwrap();
        assert_eq!(text, "{\"ok\": true}");
        let _ = std::fs::remove_file(&path);
    }
}
