//! End-to-end exit-code contract tests for `perfscope`, driving the
//! real binaries (`CARGO_BIN_EXE_*`) the way CI does: a clean fixture
//! trajectory passes the trend gate (exit 0), a synthetic injected
//! regression fails it (exit 1), and a `perfscope`-selected
//! auto-baseline feeds `benchdiff` end to end.

use ct_perfdb::{MachineInfo, PerfDb, RunConfig, RunRecord};
use ifdk_bench::gups::{GupsCell, GupsReport};
use std::path::PathBuf;
use std::process::{Command, Output};

fn perfscope(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perfscope"))
        .args(args)
        .output()
        .expect("spawn perfscope")
}

fn benchdiff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_benchdiff"))
        .args(args)
        .output()
        .expect("spawn benchdiff")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(name)
}

/// A gups-sweep record on *this* machine (perfscope `check`/`baseline`
/// default to `--machine self`; the fixture must match it).
fn gups_record(t: u64, kernel: &str, gups: f64) -> RunRecord {
    let mut r = RunRecord::new("gups", t, MachineInfo::detect());
    r.config = RunConfig {
        kernel: kernel.into(),
        layout: "transposed".into(),
        threads: 1,
        problem: "16^3 x 8p".into(),
        ..RunConfig::default()
    };
    r.set_metric("gups_median", gups)
        .set_metric("gups_mad", 0.002)
        .set_metric("secs_median", 0.5)
        .set_metric("repeats", 3.0)
        .set_metric("updates", 32768.0);
    r
}

fn write_db(name: &str, records: &[RunRecord]) -> PathBuf {
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    PerfDb::append(&path, records).expect("write fixture trajectory");
    path
}

#[test]
fn clean_trajectory_passes_regression_fails() {
    // Eight steady runs: the gate must pass.
    let mut recs: Vec<RunRecord> = (0..8)
        .map(|i| gups_record(1_000 + i, "lanes", 0.20 + 0.002 * (i % 3) as f64))
        .collect();
    let clean = write_db("perfscope-e2e-clean.jsonl", &recs);
    let out = perfscope(&[
        clean.to_str().unwrap(),
        "check",
        "--metric",
        "gups_median",
        "--kernel",
        "lanes",
    ]);
    assert_eq!(code(&out), 0, "clean trajectory must pass: {out:?}");

    // Same trajectory plus one injected collapse as the latest run:
    // the gate must fail with the check-failed code, not a crash.
    recs.push(gups_record(2_000, "lanes", 0.09));
    let bad = write_db("perfscope-e2e-regressed.jsonl", &recs);
    let out = perfscope(&[
        bad.to_str().unwrap(),
        "check",
        "--metric",
        "gups_median",
        "--kernel",
        "lanes",
    ]);
    assert_eq!(code(&out), 1, "injected regression must exit 1: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("regressed"),
        "failure names the regression: {stderr}"
    );
}

#[test]
fn unreadable_and_usage_exit_codes() {
    let out = perfscope(&[
        "/nonexistent/perfscope-e2e.jsonl",
        "check",
        "--metric",
        "gups_median",
    ]);
    assert_eq!(code(&out), 2, "missing store is unreadable: {out:?}");

    let out = perfscope(&["only-a-db-path.jsonl"]);
    assert_eq!(code(&out), 3, "missing command is usage: {out:?}");

    let db = write_db("perfscope-e2e-usage.jsonl", &[gups_record(1, "lanes", 0.2)]);
    let out = perfscope(&[db.to_str().unwrap(), "check"]);
    assert_eq!(code(&out), 3, "check without --metric is usage: {out:?}");
}

#[test]
fn trend_json_is_machine_readable() {
    let recs: Vec<RunRecord> = (0..5)
        .map(|i| gups_record(1_000 + i, "lanes", 0.2 + i as f64 * 0.001))
        .collect();
    let db = write_db("perfscope-e2e-trend.jsonl", &recs);
    let out = perfscope(&[
        db.to_str().unwrap(),
        "trend",
        "--metric",
        "gups_median",
        "--machine",
        "any",
        "--format",
        "json",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = ct_obs::chrome::json::parse(stdout.trim()).expect("trend JSON parses");
    assert_eq!(
        v.get("schema").and_then(|x| x.as_str()),
        Some("ifdk-perfdb/trend/v1")
    );
    assert_eq!(v.get("n").and_then(|x| x.as_f64()), Some(5.0));
}

#[test]
fn auto_baseline_feeds_benchdiff_end_to_end() {
    // Trajectory: steady history for two cells on this machine.
    let mut recs = Vec::new();
    for t in 0..6u64 {
        recs.push(gups_record(1_000 + t, "lanes", 0.20));
        recs.push(gups_record(1_000 + t, "warp", 0.15));
    }
    let db = write_db("perfscope-e2e-baseline.jsonl", &recs);
    let baseline = tmp("perfscope-e2e-baseline-out.json");
    let _ = std::fs::remove_file(&baseline);
    let out = perfscope(&[
        db.to_str().unwrap(),
        "baseline",
        "--out",
        baseline.to_str().unwrap(),
        "--last",
        "5",
    ]);
    assert_eq!(code(&out), 0, "baseline selection must succeed: {out:?}");

    // The emitted baseline is an ordinary gups report benchdiff accepts.
    let report =
        GupsReport::from_json(&std::fs::read_to_string(&baseline).expect("baseline written"))
            .expect("baseline is a valid gups report");
    assert_eq!(
        report.find("lanes", "transposed", 1).unwrap().gups_median,
        0.20
    );

    // Candidate at parity: gate passes.
    let mut candidate = report.clone();
    candidate.machine = Some(MachineInfo::detect());
    let cand_path = tmp("perfscope-e2e-candidate.json");
    std::fs::write(&cand_path, candidate.to_json()).expect("write candidate");
    let out = benchdiff(&[baseline.to_str().unwrap(), cand_path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "parity candidate passes: {out:?}");

    // Candidate with a collapsed lanes cell: gate fails against the
    // trajectory-selected baseline.
    let mut slow = candidate.clone();
    for c in &mut slow.cells {
        if c.kernel == "lanes" {
            c.gups_median = 0.05;
        }
    }
    std::fs::write(&cand_path, slow.to_json()).expect("write slow candidate");
    let out = benchdiff(&[baseline.to_str().unwrap(), cand_path.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "collapsed candidate fails: {out:?}");

    let _ = std::fs::remove_file(&cand_path);
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn fingerprint_mismatch_warns_but_does_not_fail() {
    let other_machine = MachineInfo {
        cpu_model: "Some Other Box".into(),
        cpu_flags: vec!["neon".into()],
        logical_cpus: 2,
    };
    let cell = GupsCell {
        kernel: "lanes".into(),
        layout: "transposed".into(),
        threads: 1,
        repeats: 3,
        gups_median: 0.2,
        gups_mad: 0.002,
        secs_median: 0.5,
    };
    let mut base = GupsReport {
        problem: "16^3 x 8p".into(),
        updates: 32768,
        machine: Some(other_machine),
        cells: vec![cell],
    };
    let base_path = tmp("perfscope-e2e-xmachine-base.json");
    std::fs::write(&base_path, base.to_json()).expect("write baseline");
    base.machine = Some(MachineInfo::detect());
    let cand_path = tmp("perfscope-e2e-xmachine-cand.json");
    std::fs::write(&cand_path, base.to_json()).expect("write candidate");
    let out = benchdiff(&[base_path.to_str().unwrap(), cand_path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "mismatch alone must not fail: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fingerprint mismatch"),
        "cross-machine gate warns: {stderr}"
    );
    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&cand_path);
}
