//! Lightweight timing statistics for pipeline instrumentation.
//!
//! The iFDK framework reports per-stage execution times (paper Table 5,
//! Figure 4c). [`StageTimer`] collects wall-clock samples per named stage
//! from any thread; [`TimingReport`] summarises them.

use ct_obs::clock;
use ct_sync::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Thread-safe accumulator of named stage timings.
#[derive(Debug, Default)]
pub struct StageTimer {
    samples: Mutex<BTreeMap<String, Vec<Duration>>>,
}

impl StageTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample for `stage`.
    pub fn record(&self, stage: &str, d: Duration) {
        self.samples
            .lock()
            .entry(stage.to_string())
            .or_default()
            // analyze: allow(lock, reason = "Vec::push on the map entry owned by this lock; matches the blocking RingBuffer::push only by method-name over-approximation (DESIGN 6c)")
            .push(d);
    }

    /// Time the closure and record the elapsed duration under `stage`,
    /// returning the closure's result.
    pub fn time<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        let t0 = clock::now();
        let r = f();
        self.record(stage, t0.elapsed());
        r
    }

    /// Produce a summary of everything recorded so far.
    pub fn report(&self) -> TimingReport {
        let samples = self.samples.lock();
        let stages = samples
            .iter()
            .map(|(name, ds)| {
                let total: Duration = ds.iter().sum();
                StageSummary {
                    name: name.clone(),
                    count: ds.len(),
                    total,
                    max: ds.iter().max().copied().unwrap_or_default(),
                }
            })
            .collect();
        TimingReport { stages }
    }
}

/// Summary of one stage's samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name.
    pub name: String,
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub total: Duration,
    /// Largest single sample.
    pub max: Duration,
}

impl StageSummary {
    /// Mean sample duration.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Summaries for all stages, ordered by stage name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimingReport {
    /// Per-stage summaries.
    pub stages: Vec<StageSummary>,
}

impl TimingReport {
    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Total time of a stage in seconds (0 if absent).
    pub fn total_secs(&self, name: &str) -> f64 {
        self.stage(name)
            .map(|s| s.total.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Fold another report into this one: stages sharing a name combine
    /// (counts and totals add, maxima take the max), stages unique to
    /// `other` are appended, and the result stays ordered by stage name.
    /// This is how per-rank/per-thread reports aggregate into one
    /// cluster-wide view.
    pub fn merge(&mut self, other: &TimingReport) {
        for o in &other.stages {
            match self.stages.iter_mut().find(|s| s.name == o.name) {
                Some(s) => {
                    s.count += o.count;
                    s.total += o.total;
                    s.max = s.max.max(o.max);
                }
                None => self.stages.push(o.clone()),
            }
        }
        self.stages.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Merge an iterator of reports into one (empty iterator -> empty
    /// report).
    pub fn merged<'a>(reports: impl IntoIterator<Item = &'a TimingReport>) -> TimingReport {
        let mut out = TimingReport::default();
        for r in reports {
            out.merge(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let t = StageTimer::new();
        t.record("filter", Duration::from_millis(10));
        t.record("filter", Duration::from_millis(30));
        t.record("bp", Duration::from_millis(5));
        let r = t.report();
        let f = r.stage("filter").unwrap();
        assert_eq!(f.count, 2);
        assert_eq!(f.total, Duration::from_millis(40));
        assert_eq!(f.max, Duration::from_millis(30));
        assert_eq!(f.mean(), Duration::from_millis(20));
        assert!(r.stage("missing").is_none());
        assert_eq!(r.total_secs("bp"), 0.005);
    }

    #[test]
    fn time_wraps_closure() {
        let t = StageTimer::new();
        let x = t.time("work", || 41 + 1);
        assert_eq!(x, 42);
        assert_eq!(t.report().stage("work").unwrap().count, 1);
    }

    #[test]
    fn concurrent_recording() {
        let t = StageTimer::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.record("x", Duration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(t.report().stage("x").unwrap().count, 800);
    }

    #[test]
    fn merge_combines_overlapping_stage_names() {
        // Rank 0 saw filter + load; rank 1 saw filter + store. The merged
        // report must combine "filter" and keep the disjoint stages.
        let a = {
            let t = StageTimer::new();
            t.record("filter", Duration::from_millis(10));
            t.record("filter", Duration::from_millis(20));
            t.record("load", Duration::from_millis(5));
            t.report()
        };
        let b = {
            let t = StageTimer::new();
            t.record("filter", Duration::from_millis(40));
            t.record("store", Duration::from_millis(7));
            t.report()
        };
        let mut m = a.clone();
        m.merge(&b);
        let f = m.stage("filter").unwrap();
        assert_eq!(f.count, 3);
        assert_eq!(f.total, Duration::from_millis(70));
        assert_eq!(f.max, Duration::from_millis(40));
        assert_eq!(m.stage("load").unwrap().count, 1);
        assert_eq!(m.stage("store").unwrap().count, 1);
        // Order stays name-sorted after appending new stages.
        let names: Vec<_> = m.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["filter", "load", "store"]);
        // merge is commutative on these inputs.
        let mut m2 = b.clone();
        m2.merge(&a);
        assert_eq!(m, m2);
        // merged() over a slice gives the same answer.
        assert_eq!(TimingReport::merged([&a, &b]), m);
        assert_eq!(TimingReport::merged([]), TimingReport::default());
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let t = StageTimer::new();
        t.record("x", Duration::from_millis(3));
        let r = t.report();
        let mut empty = TimingReport::default();
        empty.merge(&r);
        assert_eq!(empty, r);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        let s = StageSummary {
            name: "s".into(),
            count: 0,
            total: Duration::ZERO,
            max: Duration::ZERO,
        };
        assert_eq!(s.mean(), Duration::ZERO);
    }
}
