//! # ct-par — scoped data-parallelism substrate
//!
//! The iFDK paper runs its filtering stage with OpenMP threads inside each
//! MPI rank ("The Filtering-thread launches OpenMP threads ... to load
//! projections and execute the filtering in parallel", Section 4.1.3).
//! This crate is that substrate: a small, dependency-light parallel-for
//! built on `std::thread::scope`, with work distributed by atomic
//! chunk-stealing so irregular iterations balance automatically.
//!
//! Design notes (per the workspace DESIGN.md):
//!
//! * No `unsafe`: scoped threads borrow the data directly, so there is no
//!   lifetime erasure and the compiler proves data-race freedom.
//! * Work-stealing granularity is explicit (`grain`), because callers in
//!   this workspace know their iteration cost precisely (a projection row,
//!   a voxel slab, ...).
//! * The pool is a *configuration*, not a set of live threads: scoped
//!   spawning costs microseconds, invisible next to the millisecond-scale
//!   work items of the FDK pipeline, and it keeps every API safe.
//!
//! ```
//! use ct_par::Pool;
//!
//! let pool = Pool::new(4);
//! // Square 0..100 in parallel, results in index order.
//! let squares = pool.parallel_map(100, 8, |i| i * i);
//! assert_eq!(squares[9], 81);
//! // Parallel reduction.
//! let sum = pool.parallel_reduce(100, 8, 0usize, |i| i, |a, b| a + b);
//! assert_eq!(sum, 4950);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ct_sync::cursor::ChunkCursor;
use std::num::NonZeroUsize;

pub mod stats;

/// Parallel execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: NonZeroUsize,
}

impl Pool {
    /// A pool using `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is nonzero"),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(n)
    }

    /// A serial pool (useful to A/B the parallel code paths in tests).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Number of worker threads this pool will use.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Run `f(i)` for every `i` in `0..n`, in parallel, stealing work in
    /// chunks of `grain` iterations.
    ///
    /// `f` runs concurrently from multiple threads and therefore must be
    /// `Sync`; each index is executed exactly once.
    pub fn parallel_for<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let grain = grain.max(1);
        let workers = self.threads.get().min(n.div_ceil(grain)).max(1);
        if workers == 1 || n <= grain {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let cursor = ChunkCursor::new(n, grain);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some(range) = cursor.claim() {
                        for i in range {
                            f(i);
                        }
                    }
                });
            }
        });
    }

    /// Run `f(start, chunk)` over disjoint mutable chunks of `data`, each of
    /// at most `chunk_len` elements. `start` is the offset of the chunk in
    /// `data`. The chunks partition `data` exactly.
    pub fn parallel_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.parallel_chunks_mut_indexed(data, chunk_len, |_, start, chunk| f(start, chunk));
    }

    /// Like [`Pool::parallel_chunks_mut`], but `f` also receives the chunk
    /// ordinal (`0, 1, 2, ...` in `data` order) — the natural tile index for
    /// callers that attribute per-chunk work to observability spans.
    pub fn parallel_chunks_mut_indexed<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        let n = data.len();
        if n == 0 {
            return;
        }
        let workers = self.threads.get().min(n.div_ceil(chunk_len)).max(1);
        if workers == 1 {
            for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(ci, ci * chunk_len, chunk);
            }
            return;
        }
        // Pre-split the buffer into disjoint chunks, then let workers claim
        // them through a shared cursor. The Option-in-Mutex is only there to
        // move the &mut slice out; it is uncontended (each index is claimed
        // exactly once — the exactly-once handoff is model-checked in
        // crates/ct-sync/tests/loom_cursor.rs).
        type ChunkSlot<'a, T> = ct_sync::Mutex<Option<(usize, &'a mut [T])>>;
        let chunks: Vec<ChunkSlot<'_, T>> = {
            let mut out = Vec::with_capacity(n.div_ceil(chunk_len));
            let mut offset = 0;
            let mut rest = data;
            while !rest.is_empty() {
                let take = chunk_len.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                out.push(ct_sync::Mutex::new(Some((offset, head))));
                offset += take;
                rest = tail;
            }
            out
        };
        let cursor = ChunkCursor::new(chunks.len(), 1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some(idx) = cursor.claim_one() {
                        let Some(slot) = chunks.get(idx) else { break };
                        if let Some((start, chunk)) = slot.lock().take() {
                            f(idx, start, chunk);
                        }
                    }
                });
            }
        });
    }

    /// Map `f` over `0..n` in parallel, collecting results in index order.
    pub fn parallel_map<R, F>(&self, n: usize, grain: usize, f: F) -> Vec<R>
    where
        R: Send + Default + Clone,
        F: Fn(usize) -> R + Sync,
    {
        let mut out = vec![R::default(); n];
        self.parallel_chunks_mut(&mut out, grain.max(1), |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = f(start + off);
            }
        });
        out
    }

    /// Parallel fold: compute `f(i)` for `0..n`, combining per-thread
    /// partials with `combine`, starting from `init` on each thread.
    pub fn parallel_reduce<R, F, C>(&self, n: usize, grain: usize, init: R, f: F, combine: C) -> R
    where
        R: Send + Clone,
        F: Fn(usize) -> R + Sync,
        C: Fn(R, R) -> R + Sync + Send + Copy,
    {
        let grain = grain.max(1);
        let workers = self.threads.get().min(n.div_ceil(grain)).max(1);
        if workers == 1 {
            let mut acc = init;
            for i in 0..n {
                acc = combine(acc, f(i));
            }
            return acc;
        }
        let cursor = ChunkCursor::new(n, grain);
        let partials = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let init = init.clone();
                    s.spawn({
                        let cursor = &cursor;
                        let f = &f;
                        move || {
                            let mut acc = init;
                            while let Some(range) = cursor.claim() {
                                for i in range {
                                    acc = combine(acc, f(i));
                                }
                            }
                            acc
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        partials.into_iter().fold(init, combine)
    }

    /// Run two closures in parallel and return both results (fork-join).
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads.get() == 1 {
            return (a(), b());
        }
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("joined task panicked"))
        })
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn pool_sizes() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(7).threads(), 7);
        assert_eq!(Pool::serial().threads(), 1);
        assert!(Pool::auto().threads() >= 1);
        assert_eq!(Pool::default().threads(), Pool::auto().threads());
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let n = 1000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(n, 7, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
            }
        }
    }

    #[test]
    fn parallel_for_empty_and_tiny() {
        let pool = Pool::new(4);
        pool.parallel_for(0, 1, |_| panic!("must not run"));
        let count = AtomicUsize::new(0);
        pool.parallel_for(1, 100, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn chunks_mut_partitions_exactly() {
        for threads in [1, 3, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0u64; 1003];
            pool.parallel_chunks_mut(&mut data, 64, |start, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x = (start + off) as u64;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i as u64);
            }
        }
    }

    #[test]
    fn chunks_mut_indexed_reports_ordinals() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let mut data = vec![(0usize, 0usize); 53];
            pool.parallel_chunks_mut_indexed(&mut data, 8, |idx, start, chunk| {
                assert_eq!(start, idx * 8);
                for slot in chunk.iter_mut() {
                    *slot = (idx, start);
                }
            });
            for (i, &(idx, start)) in data.iter().enumerate() {
                assert_eq!(idx, i / 8);
                assert_eq!(start, (i / 8) * 8);
            }
        }
    }

    #[test]
    fn chunks_mut_handles_empty() {
        let pool = Pool::new(4);
        let mut data: Vec<u8> = vec![];
        pool.parallel_chunks_mut(&mut data, 8, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn chunks_mut_chunk_len_larger_than_data() {
        let pool = Pool::new(4);
        let mut data = vec![1u32; 5];
        pool.parallel_chunks_mut(&mut data, 100, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 5);
            chunk.iter_mut().for_each(|x| *x += 1);
        });
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let pool = Pool::new(4);
        let out = pool.parallel_map(257, 16, |i| i * i);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn parallel_reduce_sums() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let n = 10_000usize;
            let sum = pool.parallel_reduce(n, 128, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
        }
    }

    #[test]
    fn join_returns_both() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 40, || 2);
        assert_eq!(a + b, 42);
        let pool = Pool::serial();
        let (a, b) = pool.join(|| "x", || "y");
        assert_eq!((a, b), ("x", "y"));
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = 5000;
        let total = AtomicU64::new(0);
        Pool::new(6).parallel_for(n, 13, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }
}
