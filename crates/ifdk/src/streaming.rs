//! Online ("instant") reconstruction: feed projections as the scanner
//! produces them, get the volume the moment the last one lands.
//!
//! This is the API face of the paper's motivation — "generating a volume
//! moments after processing the scanned image projections" (Section 1).
//! Each projection is filtered on arrival; whenever a full batch (the
//! Listing 1 `Nbatch = 32`) accumulates, it is back-projected into the
//! running volume, so the work left at scan end is at most one partial
//! batch plus the final reshape.

use ct_bp::lanes::{backproject_batch, KernelImpl};
use ct_bp::tiled::TileConfig;
use ct_bp::warp::WARP_BATCH;
use ct_bp::{fdk_scale, BpConfig};
use ct_core::error::{CtError, Result};
use ct_core::geometry::{CbctGeometry, ProjectionMatrix};
use ct_core::projection::{ProjectionImage, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_filter::{FilterConfig, Filterer};
use ct_par::Pool;

/// Incremental FDK reconstructor.
pub struct StreamingReconstructor {
    geo: CbctGeometry,
    mats: Vec<ProjectionMatrix>,
    filterer: Filterer,
    pool: Pool,
    batch: usize,
    tile: Option<TileConfig>,
    kernel: KernelImpl,
    apply_scale: bool,
    pending: Vec<(usize, TransposedProjection)>,
    acc: Volume,
    next_index: usize,
}

impl StreamingReconstructor {
    /// Create a reconstructor for a geometry.
    pub fn new(
        geo: CbctGeometry,
        filter: FilterConfig,
        bp: BpConfig,
        pool: Pool,
        apply_scale: bool,
    ) -> Result<Self> {
        geo.validate()?;
        if !geo.volume.nz.is_multiple_of(2) {
            return Err(CtError::InvalidConfig(
                "streaming reconstruction uses the symmetric kernel: Nz must be even".into(),
            ));
        }
        let mats = geo.projection_matrices();
        let filterer = Filterer::new(&geo, filter);
        let acc = Volume::zeros(geo.volume, VolumeLayout::KMajor);
        Ok(Self {
            batch: bp.batch.clamp(1, WARP_BATCH),
            tile: bp.tile,
            kernel: bp.kernel,
            geo,
            mats,
            filterer,
            pool,
            apply_scale,
            pending: Vec::new(),
            acc,
            next_index: 0,
        })
    }

    /// Number of projections consumed so far.
    pub fn fed(&self) -> usize {
        self.next_index
    }

    /// Projections still buffered (not yet back-projected).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Feed the next projection (they must arrive in acquisition order).
    pub fn feed(&mut self, img: &ProjectionImage) -> Result<()> {
        if self.next_index >= self.geo.num_projections {
            return Err(CtError::OutOfBounds {
                what: "projection",
                index: self.next_index,
                bound: self.geo.num_projections,
            });
        }
        if img.dims() != self.geo.detector {
            return Err(CtError::ShapeMismatch {
                expected: format!("{}x{}", self.geo.detector.nu, self.geo.detector.nv),
                actual: format!("{}x{}", img.dims().nu, img.dims().nv),
            });
        }
        let q = self.filterer.filter_indexed(self.next_index, img);
        self.pending.push((self.next_index, q.transposed()));
        self.next_index += 1;
        if self.pending.len() >= self.batch {
            self.flush_pending()?;
        }
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mats: Vec<ProjectionMatrix> = self.pending.iter().map(|(i, _)| self.mats[*i]).collect();
        let samplers: Vec<&TransposedProjection> = self.pending.iter().map(|(_, q)| q).collect();
        let part = backproject_batch(
            &self.pool,
            self.kernel,
            &mats,
            &samplers,
            self.geo.detector.nv,
            self.geo.volume,
            self.batch,
            self.tile,
        );
        self.acc.accumulate(&part)?;
        self.pending.clear();
        Ok(())
    }

    /// Finish the scan: back-project any partial batch and return the
    /// i-major volume. Fails if projections are missing.
    pub fn finish(mut self) -> Result<Volume> {
        if self.next_index != self.geo.num_projections {
            return Err(CtError::InvalidConfig(format!(
                "scan incomplete: fed {} of {} projections",
                self.next_index, self.geo.num_projections
            )));
        }
        self.flush_pending()?;
        let mut vol = self.acc.into_layout(VolumeLayout::IMajor);
        if self.apply_scale {
            vol.scale(fdk_scale(&self.geo));
        }
        Ok(vol)
    }

    /// Snapshot of the partial reconstruction from everything fed so far
    /// (pending projections included) — the "watch the volume appear"
    /// preview.
    pub fn preview(&mut self) -> Result<Volume> {
        self.flush_pending()?;
        let mut vol = self.acc.clone().into_layout(VolumeLayout::IMajor);
        if self.apply_scale {
            vol.scale(fdk_scale(&self.geo));
        }
        Ok(vol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{reconstruct, ReconOptions};
    use ct_core::forward::project_all_analytic;
    use ct_core::metrics::nrmse;
    use ct_core::phantom::Phantom;
    use ct_core::problem::{Dims2, Dims3};

    fn setup(n: usize, np: usize) -> (CbctGeometry, ct_core::projection::ProjectionStack) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let stack = project_all_analytic(&geo, &Phantom::shepp_logan(0.45 * n as f64));
        (geo, stack)
    }

    fn streamer(geo: &CbctGeometry) -> StreamingReconstructor {
        StreamingReconstructor::new(
            geo.clone(),
            FilterConfig::default(),
            BpConfig::default(),
            Pool::new(2),
            true,
        )
        .unwrap()
    }

    #[test]
    fn streaming_matches_batch_reconstruction() {
        let (geo, stack) = setup(16, 40); // 40 = one full batch + a tail
        let mut s = streamer(&geo);
        for img in stack.iter() {
            s.feed(img).unwrap();
        }
        assert_eq!(s.fed(), 40);
        let streamed = s.finish().unwrap();
        let batch = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
        let e = nrmse(batch.data(), streamed.data()).unwrap();
        assert!(e < 1e-5, "NRMSE {e}");
    }

    #[test]
    fn pending_flushes_at_batch_boundary() {
        let (geo, stack) = setup(8, 40);
        let mut s = streamer(&geo);
        for (i, img) in stack.iter().enumerate().take(33) {
            s.feed(img).unwrap();
            if i < 31 {
                assert_eq!(s.pending(), i + 1);
            }
        }
        // Batch of 32 flushed; one projection pending.
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn overfeeding_and_wrong_shape_rejected() {
        let (geo, stack) = setup(8, 8);
        let mut s = streamer(&geo);
        for img in stack.iter() {
            s.feed(img).unwrap();
        }
        assert!(s.feed(stack.get(0)).is_err());

        let mut s = streamer(&geo);
        let wrong = ProjectionImage::zeros(Dims2::new(4, 4));
        assert!(s.feed(&wrong).is_err());
    }

    #[test]
    fn finish_requires_complete_scan() {
        let (geo, stack) = setup(8, 8);
        let mut s = streamer(&geo);
        s.feed(stack.get(0)).unwrap();
        assert!(s.finish().is_err());
    }

    #[test]
    fn preview_converges_to_final() {
        let (geo, stack) = setup(12, 24);
        let full = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
        let mut s = streamer(&geo);
        let mut last_err = f64::INFINITY;
        for (i, img) in stack.iter().enumerate() {
            s.feed(img).unwrap();
            if (i + 1) % 8 == 0 {
                let p = s.preview().unwrap();
                let e = nrmse(full.data(), p.data()).unwrap();
                assert!(
                    e <= last_err * 1.01,
                    "preview error increased: {e} > {last_err}"
                );
                last_err = e;
            }
        }
        let fin = s.finish().unwrap();
        assert!(nrmse(full.data(), fin.data()).unwrap() < 1e-5);
    }

    #[test]
    fn odd_nz_rejected() {
        let geo = CbctGeometry::standard(Dims2::new(16, 16), 4, Dims3::new(8, 8, 7));
        assert!(StreamingReconstructor::new(
            geo,
            FilterConfig::default(),
            BpConfig::default(),
            Pool::serial(),
            true
        )
        .is_err());
    }
}
