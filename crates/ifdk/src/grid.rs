//! The 2D rank-grid decomposition (paper Section 4.1.1, Figure 3).
//!
//! `Nranks = C * R` ranks are arranged as `R` rows by `C` columns:
//!
//! * ranks in one **column** together hold all `Np` projections — each
//!   column loads `Np / C`, each rank `Np / (C*R)` of them — and share
//!   their filtered projections by AllGather;
//! * ranks in one **row** all back-project the *same* symmetric slab pair
//!   of the output volume (from different projection subsets) and combine
//!   by a single Reduce.
//!
//! Rank numbering follows the paper's Figure 3a: rank = `col * R + row`
//! (column-major), so column `C0` is ranks `0..R`.

use ct_bp::SlabPair;
use ct_core::error::{CtError, Result};

/// An `R x C` rank grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RankGrid {
    /// Rows (`R` in the paper): output decomposition factor.
    pub rows: usize,
    /// Columns (`C` in the paper): input decomposition factor.
    pub cols: usize,
}

impl RankGrid {
    /// Construct a grid, validating both factors.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(CtError::InvalidConfig(format!(
                "grid {rows}x{cols} must be nonempty"
            )));
        }
        Ok(Self { rows, cols })
    }

    /// Total ranks (`Nranks = C * R`, Eq. 4).
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.rows * self.cols
    }

    /// Row of a rank (the slab pair it computes).
    #[inline]
    pub fn row_of(&self, rank: usize) -> usize {
        rank % self.rows
    }

    /// Column of a rank (the projection group it loads).
    #[inline]
    pub fn col_of(&self, rank: usize) -> usize {
        rank / self.rows
    }

    /// Rank at `(row, col)`.
    #[inline]
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        col * self.rows + row
    }

    /// The contiguous projection range loaded and filtered by `rank`
    /// (Eq. 5: `Nproj_per_rank = Np / (C*R)`).
    pub fn projections_of_rank(&self, rank: usize, np: usize) -> Result<std::ops::Range<usize>> {
        if !np.is_multiple_of(self.n_ranks()) {
            return Err(CtError::InvalidConfig(format!(
                "Np = {np} must divide by Nranks = {}",
                self.n_ranks()
            )));
        }
        let per_rank = np / self.n_ranks();
        let col = self.col_of(rank);
        let row = self.row_of(rank);
        // Column c owns the contiguous block [c*Np/C, (c+1)*Np/C); within
        // it, row r owns the r-th per-rank sub-block.
        let col_start = col * (np / self.cols);
        let start = col_start + row * per_rank;
        Ok(start..start + per_rank)
    }

    /// The full projection range of `rank`'s column (what it back-projects
    /// after the AllGather).
    pub fn projections_of_column(&self, col: usize, np: usize) -> Result<std::ops::Range<usize>> {
        if !np.is_multiple_of(self.cols) {
            return Err(CtError::InvalidConfig(format!(
                "Np = {np} must divide by C = {}",
                self.cols
            )));
        }
        let per_col = np / self.cols;
        Ok(col * per_col..(col + 1) * per_col)
    }

    /// The symmetric slab pair computed by every rank of `row`
    /// (the `2*R` sub-volumes of Figure 3).
    pub fn slab_pair_of_row(&self, row: usize, nz: usize) -> Result<SlabPair> {
        let pairs = SlabPair::decompose(nz, self.rows)?;
        Ok(pairs[row])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(RankGrid::new(0, 4).is_err());
        assert!(RankGrid::new(4, 0).is_err());
        let g = RankGrid::new(8, 4).unwrap();
        assert_eq!(g.n_ranks(), 32);
    }

    #[test]
    fn paper_figure3_numbering() {
        // Figure 3a: R=8, C=4; column C0 is ranks 0..8, row R0 is ranks
        // {0, 8, 16, 24}.
        let g = RankGrid::new(8, 4).unwrap();
        assert_eq!(g.rank_at(0, 0), 0);
        assert_eq!(g.rank_at(1, 1), 9);
        assert_eq!(g.rank_at(7, 3), 31);
        assert_eq!(g.row_of(9), 1);
        assert_eq!(g.col_of(9), 1);
        for rank in 0..32 {
            assert_eq!(g.rank_at(g.row_of(rank), g.col_of(rank)), rank);
        }
    }

    #[test]
    fn projection_assignment_partitions_np() {
        let g = RankGrid::new(4, 2).unwrap();
        let np = 32;
        let mut seen = vec![false; np];
        for rank in 0..g.n_ranks() {
            let r = g.projections_of_rank(rank, np).unwrap();
            assert_eq!(r.len(), np / 8);
            for s in r {
                assert!(!seen[s], "projection {s} assigned twice");
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn rank_block_is_inside_its_column_block() {
        let g = RankGrid::new(4, 2).unwrap();
        let np = 32;
        for rank in 0..8 {
            let col = g.col_of(rank);
            let cr = g.projections_of_column(col, np).unwrap();
            let rr = g.projections_of_rank(rank, np).unwrap();
            assert!(cr.start <= rr.start && rr.end <= cr.end);
        }
    }

    #[test]
    fn divisibility_errors() {
        let g = RankGrid::new(4, 2).unwrap();
        assert!(g.projections_of_rank(0, 30).is_err());
        assert!(g.projections_of_column(0, 31).is_err());
    }

    #[test]
    fn slab_pairs_by_row() {
        let g = RankGrid::new(4, 2).unwrap();
        let nz = 32;
        for row in 0..4 {
            let p = g.slab_pair_of_row(row, nz).unwrap();
            assert_eq!(p.len, 4);
            assert_eq!(p.k0, row * 4);
        }
        // nz must split into 2*R half-slabs.
        assert!(g.slab_pair_of_row(0, 20).is_err());
    }
}
