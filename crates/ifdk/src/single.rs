//! Single-node FDK reconstruction — the paper's pipeline on one machine.
//!
//! [`reconstruct`] runs the two stages back to back; it is the reference
//! everything else is validated against. [`reconstruct_pipelined`]
//! overlaps them through a circular buffer exactly like one iFDK rank
//! does (filtering thread feeding a back-projection thread), which is the
//! paper's Section 3.1 heterogeneity argument in miniature: the filter
//! latency hides behind the much heavier back-projection.

use crate::ring::RingBuffer;
use ct_bp::lanes::backproject_batch;
use ct_bp::warp::WARP_BATCH;
use ct_bp::{backproject, fdk_scale, BpConfig};
use ct_core::error::{CtError, Result};
use ct_core::geometry::CbctGeometry;
use ct_core::projection::{ProjectionStack, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_filter::{FilterConfig, Filterer};
use ct_obs::clock;
use ct_obs::live::LiveRegistry;
use ct_par::Pool;

/// Options for single-node reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct ReconOptions {
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Filtering-stage configuration.
    pub filter: FilterConfig,
    /// Back-projection kernel configuration.
    pub bp: BpConfig,
    /// Apply the global FDK constant (`delta_beta * d^2 / 2`) so voxels
    /// carry absolute attenuation values. Disable to get the raw
    /// accumulator the paper's kernels produce.
    pub apply_scale: bool,
    /// Circular-buffer capacity for [`reconstruct_pipelined`].
    pub ring_capacity: usize,
}

impl Default for ReconOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            filter: FilterConfig::default(),
            bp: BpConfig::default(),
            apply_scale: true,
            ring_capacity: 2 * WARP_BATCH,
        }
    }
}

impl ReconOptions {
    fn pool(&self) -> Pool {
        if self.threads == 0 {
            Pool::auto()
        } else {
            Pool::new(self.threads)
        }
    }
}

fn check_inputs(geo: &CbctGeometry, projections: &ProjectionStack) -> Result<()> {
    geo.validate()?;
    if projections.dims() != geo.detector {
        return Err(CtError::ShapeMismatch {
            expected: format!("{}x{}", geo.detector.nu, geo.detector.nv),
            actual: format!("{}x{}", projections.dims().nu, projections.dims().nv),
        });
    }
    if projections.len() != geo.num_projections {
        return Err(CtError::ShapeMismatch {
            expected: format!("{} projections", geo.num_projections),
            actual: format!("{}", projections.len()),
        });
    }
    Ok(())
}

/// Full FDK reconstruction: filter every projection, back-project with
/// the configured kernel, return the volume in i-major layout.
pub fn reconstruct(
    geo: &CbctGeometry,
    projections: &ProjectionStack,
    opts: &ReconOptions,
) -> Result<Volume> {
    check_inputs(geo, projections)?;
    let pool = opts.pool();
    let filterer = Filterer::new(geo, opts.filter);
    // filter_stack applies Parker short-scan weights internally when the
    // geometry is a short scan (full scans use the global 1/2 in
    // fdk_scale).
    let filtered = filterer.filter_stack(&pool, projections);
    let mats = geo.projection_matrices();
    let mut vol =
        backproject(&pool, opts.bp, &mats, &filtered, geo.volume).into_layout(VolumeLayout::IMajor);
    if opts.apply_scale {
        vol.scale(fdk_scale(geo));
    }
    Ok(vol)
}

/// Pipelined FDK: a filtering thread streams filtered projections through
/// a circular buffer to a back-projection thread that consumes them in
/// 32-projection batches — one iFDK rank without the communication.
pub fn reconstruct_pipelined(
    geo: &CbctGeometry,
    projections: &ProjectionStack,
    opts: &ReconOptions,
) -> Result<Volume> {
    reconstruct_pipelined_impl(geo, projections, opts, None)
}

/// [`reconstruct_pipelined`] with live telemetry: per-stage completion
/// counters (`filter`, `backprojection`, both planned at `Np`
/// projections) land in `live`, and the circular buffer registers a
/// `ring.single` probe so a sampler ([`ct_obs::live::LiveSession`]) can
/// watch occupancy, in-flight stalls and progress/ETA while the
/// reconstruction runs. Identical output to the plain call.
pub fn reconstruct_pipelined_live(
    geo: &CbctGeometry,
    projections: &ProjectionStack,
    opts: &ReconOptions,
    live: &LiveRegistry,
) -> Result<Volume> {
    reconstruct_pipelined_impl(geo, projections, opts, Some(live))
}

fn reconstruct_pipelined_impl(
    geo: &CbctGeometry,
    projections: &ProjectionStack,
    opts: &ReconOptions,
    live: Option<&LiveRegistry>,
) -> Result<Volume> {
    check_inputs(geo, projections)?;
    if !geo.volume.nz.is_multiple_of(2) {
        return Err(CtError::InvalidConfig(
            "pipelined reconstruction uses the symmetric kernel: Nz must be even".into(),
        ));
    }
    let pool = opts.pool();
    let filterer = Filterer::new(geo, opts.filter);
    let mats = geo.projection_matrices();
    let ring: RingBuffer<(usize, TransposedProjection)> = RingBuffer::new(opts.ring_capacity);
    let batch = opts.bp.batch.clamp(1, WARP_BATCH);
    let nv = geo.detector.nv;
    let dims = geo.volume;

    // Live telemetry: both stages process Np projections; the ring's
    // occupancy and in-flight stall waits go out through a named probe.
    if let Some(reg) = live {
        let np = projections.len() as u64;
        reg.plan_stage("filter", np, None);
        reg.plan_stage("backprojection", np, None);
        reg.watch_ring(ring.live_probe("ring.single"));
    }
    let filter_cell = live.map(|r| r.stage("filter"));
    let bp_cell = live.map(|r| r.stage("backprojection"));

    let vol = std::thread::scope(|s| -> Result<Volume> {
        // Filtering thread: filter + transpose, in projection order.
        let producer = ring.clone();
        let filterer = &filterer;
        let flt = s.spawn(move || {
            for (i, img) in projections.iter().enumerate() {
                let q = match &filter_cell {
                    Some(cell) => {
                        let t = clock::now();
                        let q = filterer.filter_indexed(i, img);
                        cell.record(t.elapsed().as_nanos() as u64);
                        q
                    }
                    None => filterer.filter_indexed(i, img),
                };
                if producer.push((i, q.transposed())).is_err() {
                    return; // consumer gone
                }
            }
            producer.close();
        });

        // Back-projection thread role (run on this thread): consume fixed
        // `batch`-sized groups so results are batch-deterministic.
        let mut acc = Volume::zeros(dims, VolumeLayout::KMajor);
        loop {
            let mut batch_items: Vec<(usize, TransposedProjection)> = Vec::with_capacity(batch);
            while batch_items.len() < batch {
                match ring.pop() {
                    Some(item) => batch_items.push(item),
                    None => break,
                }
            }
            if batch_items.is_empty() {
                break;
            }
            let batch_mats: Vec<_> = batch_items.iter().map(|(i, _)| mats[*i]).collect();
            let samplers: Vec<&TransposedProjection> = batch_items.iter().map(|(_, q)| q).collect();
            // All dispatch routes (tiled/untiled x scalar/strict-lanes)
            // are bit-identical; the config only changes scheduling and
            // instruction mix, not arithmetic.
            let started = bp_cell.as_ref().map(|_| clock::now());
            let part = backproject_batch(
                &pool,
                opts.bp.kernel,
                &batch_mats,
                &samplers,
                nv,
                dims,
                batch,
                opts.bp.tile,
            );
            acc.accumulate(&part)?;
            if let (Some(cell), Some(started)) = (&bp_cell, started) {
                cell.record_batch(
                    batch_items.len() as u64,
                    started.elapsed().as_nanos() as u64,
                );
            }
        }
        flt.join().expect("filter thread panicked");
        Ok(acc)
    })?;

    let mut vol = vol.into_layout(VolumeLayout::IMajor);
    if opts.apply_scale {
        vol.scale(fdk_scale(geo));
    }
    Ok(vol)
}

/// Convenience: forward-project a phantom and reconstruct it, returning
/// `(reconstruction, voxelised ground truth)` — the standard evaluation
/// loop of Section 5.1 (RTK forward projector + reconstruction + compare).
pub fn reconstruct_phantom(
    geo: &CbctGeometry,
    phantom: &ct_core::phantom::Phantom,
    opts: &ReconOptions,
) -> Result<(Volume, Volume)> {
    let projections = ct_core::forward::project_all_analytic(geo, phantom);
    let recon = reconstruct(geo, &projections, opts)?;
    let truth = phantom.voxelize(geo.volume, VolumeLayout::IMajor, |i, j, k| {
        geo.voxel_position(i, j, k)
    });
    Ok((recon, truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::metrics::nrmse;
    use ct_core::phantom::Phantom;
    use ct_core::problem::{Dims2, Dims3};

    fn geo(n: usize, np: usize) -> CbctGeometry {
        CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n))
    }

    #[test]
    fn input_validation() {
        let g = geo(16, 8);
        let wrong_shape = ProjectionStack::zeros(Dims2::new(8, 8), 8);
        assert!(reconstruct(&g, &wrong_shape, &ReconOptions::default()).is_err());
        let wrong_count = ProjectionStack::zeros(g.detector, 7);
        assert!(reconstruct(&g, &wrong_count, &ReconOptions::default()).is_err());
    }

    #[test]
    fn uniform_sphere_reconstructs_to_unit_density() {
        // The end-to-end scaling check: a density-1 sphere must come back
        // with interior voxels near 1.0 (this pins the cosine weighting,
        // ramp normalisation, 1/z^2 weighting and the global constant all
        // at once).
        let g = geo(32, 64);
        let ph = Phantom::uniform_sphere(10.0);
        let (recon, _) = reconstruct_phantom(&g, &ph, &ReconOptions::default()).unwrap();
        let c = recon.get(16, 16, 16);
        assert!((c - 1.0).abs() < 0.08, "centre density {c}, expected ~1.0");
        // Far outside the sphere: near zero.
        let edge = recon.get(1, 1, 16);
        assert!(edge.abs() < 0.1, "background {edge}");
    }

    #[test]
    fn shepp_logan_reconstruction_quality() {
        let g = geo(32, 64);
        let ph = Phantom::shepp_logan(14.0);
        let (recon, truth) = reconstruct_phantom(&g, &ph, &ReconOptions::default()).unwrap();
        // Global NRMSE on a coarse grid with few projections won't be
        // tiny, but structure must clearly come through.
        let e = nrmse(truth.data(), recon.data()).unwrap();
        assert!(e < 0.25, "nrmse {e}");
        // The bright skull shell must be brighter than the ventricles.
        let skull = recon.get(16, 3, 16);
        let inner = recon.get(16, 16, 16);
        assert!(skull > inner, "skull {skull} vs inner {inner}");
    }

    #[test]
    fn pipelined_matches_plain_reconstruction() {
        let g = geo(16, 40);
        let ph = Phantom::shepp_logan(7.0);
        let projections = ct_core::forward::project_all_analytic(&g, &ph);
        let opts = ReconOptions::default();
        let a = reconstruct(&g, &projections, &opts).unwrap();
        let b = reconstruct_pipelined(&g, &projections, &opts).unwrap();
        let e = nrmse(a.data(), b.data()).unwrap();
        assert!(e < 1e-5, "nrmse {e}");
    }

    #[test]
    fn pipelined_is_deterministic() {
        let g = geo(16, 24);
        let ph = Phantom::uniform_sphere(5.0);
        let projections = ct_core::forward::project_all_analytic(&g, &ph);
        let opts = ReconOptions::default();
        let a = reconstruct_pipelined(&g, &projections, &opts).unwrap();
        let b = reconstruct_pipelined(&g, &projections, &opts).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn pipelined_live_counts_progress_and_matches_plain() {
        let g = geo(16, 24);
        let ph = Phantom::uniform_sphere(5.0);
        let projections = ct_core::forward::project_all_analytic(&g, &ph);
        let opts = ReconOptions::default();
        let reg = LiveRegistry::new();
        let a = reconstruct_pipelined_live(&g, &projections, &opts, &reg).unwrap();
        let b = reconstruct_pipelined(&g, &projections, &opts).unwrap();
        assert_eq!(a.data(), b.data(), "telemetry must not change bits");
        // Both stages completed all Np projections.
        assert_eq!(reg.stage("filter").done(), 24);
        assert_eq!(reg.stage("filter").planned(), 24);
        assert_eq!(reg.stage("backprojection").done(), 24);
        assert!(reg.stage("backprojection").busy_ns() > 0);
        // A snapshot taken now shows the finished run: full progress,
        // one registered ring.
        let snap = reg.snapshot();
        let progress = snap.progress.expect("planned stages yield progress");
        assert!((progress.frac - 1.0).abs() < 1e-9, "frac {}", progress.frac);
        assert_eq!(progress.eta_ns, 0);
        assert_eq!(snap.rings.len(), 1);
        assert_eq!(snap.rings[0].name, "ring.single");
    }

    #[test]
    fn kernel_variants_agree_end_to_end() {
        use ct_bp::KernelVariant;
        let g = geo(16, 36);
        let ph = Phantom::uniform_sphere(5.0);
        let projections = ct_core::forward::project_all_analytic(&g, &ph);
        let reference = reconstruct(&g, &projections, &ReconOptions::default()).unwrap();
        for variant in KernelVariant::ALL {
            let opts = ReconOptions {
                bp: BpConfig {
                    variant,
                    ..BpConfig::default()
                },
                ..ReconOptions::default()
            };
            let v = reconstruct(&g, &projections, &opts).unwrap();
            let e = nrmse(reference.data(), v.data()).unwrap();
            assert!(e < 1e-5, "{}: {e}", variant.name());
        }
    }

    #[test]
    fn scale_flag_controls_absolute_values() {
        let g = geo(16, 24);
        let ph = Phantom::uniform_sphere(5.0);
        let projections = ct_core::forward::project_all_analytic(&g, &ph);
        let scaled = reconstruct(&g, &projections, &ReconOptions::default()).unwrap();
        let raw = reconstruct(
            &g,
            &projections,
            &ReconOptions {
                apply_scale: false,
                ..ReconOptions::default()
            },
        )
        .unwrap();
        let s = ct_bp::fdk_scale(&g);
        let a = scaled.get(8, 8, 8);
        let b = raw.get(8, 8, 8) * s;
        assert!((a - b).abs() < 1e-5 * a.abs().max(1.0));
    }
}
