//! Grid planning — the paper's Section 4.1.5 policy applied to runnable
//! configurations: *minimise `R`, maximise `C`* subject to the per-rank
//! memory budget and the divisibility constraints of the decomposition.
//!
//! The paper's Eq. 7 sizes `R` from the sub-volume budget
//! (`R = sizeof(float) * Nx*Ny*Nz / N_sub_vol`, rounded to a power of
//! two); `C = Nranks / R` then scales the per-rank projection load down,
//! which is where the runtime lives (Section 4.1.5's three reasons).

use crate::grid::RankGrid;
use ct_bp::tiled::TileConfig;
use ct_core::error::{CtError, Result};
use ct_core::geometry::CbctGeometry;

/// A planned grid plus the budget arithmetic behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridChoice {
    /// The chosen grid.
    pub grid: RankGrid,
    /// Bytes of sub-volume each rank holds (`2 * len` slices).
    pub sub_volume_bytes: u64,
    /// Projections each rank loads and filters (Eq. 5).
    pub projections_per_rank: usize,
}

/// Choose `R x C` for `n_ranks` following the paper's policy.
///
/// `mem_per_rank` is the budget for one rank's sub-volume (the paper uses
/// 8 GiB on 16 GiB GPUs); pass `u64::MAX` when memory is no object (the
/// in-process substrate).
pub fn plan_rank_grid(geo: &CbctGeometry, n_ranks: usize, mem_per_rank: u64) -> Result<GridChoice> {
    geo.validate()?;
    if n_ranks == 0 {
        return Err(CtError::InvalidConfig("need at least one rank".into()));
    }
    let vol_bytes = geo.volume.bytes_f32() as u64;
    let np = geo.num_projections;
    let nz = geo.volume.nz;

    // Candidate R values: divisors of n_ranks, smallest first (minimise
    // R / maximise C), subject to:
    //   * nz splits into 2*R half-slabs,
    //   * Np divides by R*C = n_ranks (independent of R, checked once),
    //   * the sub-volume fits the per-rank budget.
    if !np.is_multiple_of(n_ranks) {
        return Err(CtError::InvalidConfig(format!(
            "Np = {np} must divide by Nranks = {n_ranks}"
        )));
    }
    for r in 1..=n_ranks {
        if !n_ranks.is_multiple_of(r) {
            continue;
        }
        if !nz.is_multiple_of(2 * r) {
            continue;
        }
        let sub = vol_bytes / r as u64;
        if sub > mem_per_rank {
            continue;
        }
        let grid = RankGrid::new(r, n_ranks / r)?;
        return Ok(GridChoice {
            grid,
            sub_volume_bytes: sub,
            projections_per_rank: np / n_ranks,
        });
    }
    Err(CtError::InvalidConfig(format!(
        "no feasible R for Nz = {nz}, Nranks = {n_ranks}, budget {mem_per_rank} B"
    )))
}

/// Plan a concrete tile shape for each rank's back-projection: resolve
/// [`TileConfig::AUTO`] against the per-rank slab pair (every row owns
/// the same pair length) and the rank's worker-thread count, returning a
/// fully pinned config that can be logged, compared across runs and
/// replayed exactly — unlike `AUTO`, whose resolution happens inside the
/// kernel call.
pub fn plan_tiling(
    geo: &CbctGeometry,
    grid: RankGrid,
    threads_per_rank: usize,
) -> Result<TileConfig> {
    geo.validate()?;
    let pair = grid.slab_pair_of_row(0, geo.volume.nz)?;
    let (i_block, slab_pairs) = TileConfig::AUTO.resolve(geo.volume, pair, threads_per_rank.max(1));
    Ok(TileConfig {
        i_block,
        slab_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::problem::{Dims2, Dims3};

    fn geo(nz: usize, np: usize) -> CbctGeometry {
        CbctGeometry::standard(Dims2::new(64, 64), np, Dims3::new(32, 32, nz))
    }

    #[test]
    fn unlimited_memory_minimises_r() {
        let g = geo(32, 64);
        let c = plan_rank_grid(&g, 8, u64::MAX).unwrap();
        assert_eq!(c.grid.rows, 1);
        assert_eq!(c.grid.cols, 8);
        assert_eq!(c.projections_per_rank, 8);
        assert_eq!(c.sub_volume_bytes, (32 * 32 * 32 * 4) as u64);
    }

    #[test]
    fn memory_budget_forces_larger_r() {
        let g = geo(32, 64);
        let vol = (32 * 32 * 32 * 4) as u64;
        // Budget for a quarter volume -> R = 4.
        let c = plan_rank_grid(&g, 8, vol / 4).unwrap();
        assert_eq!(c.grid.rows, 4);
        assert_eq!(c.grid.cols, 2);
        assert_eq!(c.sub_volume_bytes, vol / 4);
    }

    #[test]
    fn r_respects_half_slab_divisibility() {
        // nz = 8 cannot split into 2*8 half-slabs, so R = 8 is skipped
        // even when memory would demand it -> error.
        let g = geo(8, 64);
        let vol = (32 * 32 * 8 * 4) as u64;
        assert!(plan_rank_grid(&g, 8, vol / 8).is_err());
        // But R = 4 splits fine when the budget allows it.
        let c = plan_rank_grid(&g, 8, vol / 4).unwrap();
        assert_eq!(c.grid.rows, 4);
    }

    #[test]
    fn projection_divisibility_enforced() {
        let g = geo(32, 60); // 60 doesn't divide by 8
        assert!(plan_rank_grid(&g, 8, u64::MAX).is_err());
    }

    #[test]
    fn planned_tiling_is_pinned_and_valid() {
        let g = geo(32, 64);
        let grid = RankGrid::new(2, 2).unwrap();
        let tc = plan_tiling(&g, grid, 4).unwrap();
        // Fully resolved: no auto fields left.
        assert!(tc.i_block >= 1 && tc.slab_pairs >= 1);
        // Resolving the pinned config is a fixed point.
        let pair = grid.slab_pair_of_row(0, g.volume.nz).unwrap();
        assert_eq!(tc.resolve(g.volume, pair, 4), (tc.i_block, tc.slab_pairs));
    }

    #[test]
    fn planned_grid_runs() {
        use crate::distributed::{reconstruct_distributed, upload_projections, DistConfig};
        use ct_core::forward::project_all_analytic;
        use ct_core::phantom::Phantom;
        use ct_pfs::PfsStore;

        let g = geo(16, 16);
        let choice = plan_rank_grid(&g, 4, u64::MAX).unwrap();
        let stack = project_all_analytic(&g, &Phantom::uniform_sphere(6.0));
        let input = PfsStore::memory();
        upload_projections(&input, &stack).unwrap();
        let cfg = DistConfig::new(g.clone(), choice.grid);
        let out = PfsStore::memory();
        reconstruct_distributed(&cfg, &input, &out).unwrap();
        assert_eq!(out.list().len(), g.volume.nz);
    }
}
